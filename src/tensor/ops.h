#ifndef FKD_TENSOR_OPS_H_
#define FKD_TENSOR_OPS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace fkd {

/// Raw (non-differentiable) numeric kernels on rank-2 tensors. These are the
/// primitives the autograd layer (`tensor/autograd.h`) builds its
/// forward/backward passes from. All functions FKD_CHECK dimension
/// agreement; outputs must be pre-shaped by the caller (GEMM style) or are
/// returned by value where cheap.

/// General matrix multiply: C = alpha * op(A) * op(B) + beta * C where
/// op(X) = X or X^T. Implemented as a cache-friendly ikj loop.
void Gemm(bool trans_a, bool trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c);

/// C = A * B convenience wrapper (no transposes, overwrite).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// y = alpha * op(A) * x + beta * y for a rank-1 x and y (matrix-vector
/// product; op(A) = A or A^T).
void Gemv(bool trans_a, float alpha, const Tensor& a, const Tensor& x,
          float beta, Tensor* y);

/// y += alpha * x (same shape).
void AxpyInPlace(float alpha, const Tensor& x, Tensor* y);

/// y = y * scale.
void ScaleInPlace(float scale, Tensor* y);

/// Element-wise out[i] = f(a[i]).
Tensor Map(const Tensor& a, const std::function<float(float)>& f);

/// Element-wise out[i] = f(a[i], b[i]) (same shape).
Tensor ZipMap(const Tensor& a, const Tensor& b,
              const std::function<float(float, float)>& f);

/// Element-wise sum / difference / Hadamard product.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

/// Adds a [1 x d] (or rank-1 length-d) bias row to every row of a [n x d]
/// matrix.
Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row);

/// Stable sigmoid / tanh applied element-wise.
Tensor Sigmoid(const Tensor& a);
Tensor TanhT(const Tensor& a);
Tensor Relu(const Tensor& a);

/// Row-wise softmax of a [n x k] matrix (numerically stable).
Tensor SoftmaxRows(const Tensor& logits);

/// Column-wise sum of a [n x d] matrix -> [1 x d].
Tensor SumRowsTo(const Tensor& matrix);

/// Concatenates rank-2 tensors with equal row counts along columns.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Activation fused into the GemmBiasAct epilogue. The fused forms apply
/// exactly the per-element formulas of the standalone Sigmoid / TanhT /
/// Relu kernels, so a fused call is bitwise-identical to the unfused
/// Gemm + AddRowBroadcast + activation chain it replaces.
enum class EpilogueAct { kNone, kSigmoid, kTanh, kRelu };

class PackedBPanels;

/// Packs op(B) into the blocked GEMM driver's contiguous 16-column panels
/// once, for reuse across many GemmBiasAct calls against the same weights
/// (the serving hot path re-scores against frozen matrices every request —
/// re-packing per call was pure overhead).
PackedBPanels PackGemmB(const Tensor& b, bool trans_b = false);

/// Fused C = act(A * B + bias): the bias row add and activation run inside
/// the GEMM's row-chunk dispatch while the freshly written C rows are still
/// cache-hot, instead of three full passes over C. `bias` may be null
/// (skipped); it must otherwise be a length-n row. C is overwritten.
void GemmBiasAct(const Tensor& a, const PackedBPanels& b, const Tensor* bias,
                 EpilogueAct act, Tensor* c);

/// Convenience overload packing `b` on the fly (single-shot callers).
void GemmBiasAct(const Tensor& a, const Tensor& b, const Tensor* bias,
                 EpilogueAct act, Tensor* c);

/// An opaque panel-packed GEMM B operand (see PackGemmB). Move-friendly
/// value type; the layout is owned by the GEMM kernels in ops.cc.
class PackedBPanels {
 public:
  PackedBPanels() = default;

  size_t k() const { return k_; }
  size_t n() const { return n_; }
  bool empty() const { return k_ == 0 || n_ == 0; }

 private:
  friend PackedBPanels PackGemmB(const Tensor& b, bool trans_b);
  friend void GemmBiasAct(const Tensor& a, const PackedBPanels& b,
                          const Tensor* bias, EpilogueAct act, Tensor* c);

  std::vector<float> data_;  ///< Panel-packed, zero-padded to 16-wide.
  size_t k_ = 0;             ///< Inner (reduction) dimension.
  size_t n_ = 0;             ///< Logical output columns.
};

}  // namespace fkd

#endif  // FKD_TENSOR_OPS_H_
