#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace fkd {

namespace {

size_t ShapeSize(const std::vector<size_t>& shape) {
  size_t total = 1;
  for (size_t dim : shape) total *= dim;
  return shape.empty() ? 0 : total;
}

}  // namespace

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(ShapeSize(shape_), 0.0f) {}

Tensor Tensor::Full(size_t rows, size_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  Tensor t(std::vector<size_t>{values.size()});
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::FromRows(
    std::initializer_list<std::initializer_list<float>> rows) {
  const size_t n_rows = rows.size();
  FKD_CHECK_GT(n_rows, 0u);
  const size_t n_cols = rows.begin()->size();
  Tensor t(n_rows, n_cols);
  size_t r = 0;
  for (const auto& row : rows) {
    FKD_CHECK_EQ(row.size(), n_cols);
    std::copy(row.begin(), row.end(), t.Row(r));
    ++r;
  }
  return t;
}

Tensor Tensor::Randn(size_t rows, size_t cols, Rng* rng, float mean,
                     float stddev) {
  FKD_CHECK(rng != nullptr);
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::Rand(size_t rows, size_t cols, Rng* rng, float lo, float hi) {
  FKD_CHECK(rng != nullptr);
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

size_t Tensor::rows() const {
  FKD_CHECK_EQ(rank(), 2u);
  return shape_[0];
}

size_t Tensor::cols() const {
  FKD_CHECK_EQ(rank(), 2u);
  return shape_[1];
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::Reshape(std::vector<size_t> new_shape) const {
  FKD_CHECK_EQ(ShapeSize(new_shape), size());
  Tensor t(std::move(new_shape));
  std::copy(data_.begin(), data_.end(), t.data());
  return t;
}

Tensor Tensor::Transposed() const {
  FKD_CHECK_EQ(rank(), 2u);
  Tensor t(cols(), rows());
  for (size_t r = 0; r < rows(); ++r) {
    for (size_t c = 0; c < cols(); ++c) {
      t.At(c, r) = At(r, c);
    }
  }
  return t;
}

float Tensor::Sum() const {
  double total = 0.0;
  for (float v : data_) total += v;
  return static_cast<float>(total);
}

float Tensor::Mean() const {
  FKD_CHECK_GT(size(), 0u);
  return Sum() / static_cast<float>(size());
}

float Tensor::MaxAbs() const {
  float max_abs = 0.0f;
  for (float v : data_) max_abs = std::max(max_abs, std::fabs(v));
  return max_abs;
}

float Tensor::Norm() const {
  double total = 0.0;
  for (float v : data_) total += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(total));
}

bool Tensor::AllClose(const Tensor& other, float tolerance) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tolerance) return false;
  }
  return true;
}

std::string Tensor::ToString(size_t max_entries) const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << "x";
    os << shape_[i];
  }
  os << "]{";
  const size_t shown = std::min(max_entries, size());
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) os << ((rank() == 2 && i % cols() == 0) ? "; " : ", ");
    os << data_[i];
  }
  if (shown < size()) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace fkd
