#ifndef FKD_TENSOR_AUTOGRAD_H_
#define FKD_TENSOR_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace fkd {
namespace autograd {

/// A node in the dynamic computation graph. Holds the forward value, the
/// accumulated gradient, edges to the input nodes and the closure that
/// back-propagates this node's gradient into its inputs.
///
/// Users interact through `Variable` (a shared handle); nodes are created by
/// the op functions below and freed when the last Variable referencing the
/// (sub)graph is dropped.
class Node {
 public:
  Node(Tensor value, bool requires_grad, std::string op_name)
      : value_(std::move(value)),
        requires_grad_(requires_grad),
        op_name_(std::move(op_name)) {}

  const Tensor& value() const { return value_; }
  Tensor& mutable_value() { return value_; }

  bool requires_grad() const { return requires_grad_; }
  const std::string& op_name() const { return op_name_; }

  /// The accumulated gradient; zero-shaped until the first accumulation.
  const Tensor& grad() const { return grad_; }

  /// Mutable gradient access (optimisers scale/clip in place).
  Tensor* mutable_grad() { return &grad_; }

  /// Adds `g` (same shape as value) into the gradient buffer.
  void AccumulateGrad(const Tensor& g);

  /// Clears the gradient buffer (used between optimisation steps for
  /// persistent parameter nodes).
  void ZeroGrad();

  const std::vector<std::shared_ptr<Node>>& inputs() const { return inputs_; }

 private:
  friend class GraphBuilder;
  friend void Backward(const class Variable& root);

  Tensor value_;
  Tensor grad_;
  bool requires_grad_;
  std::string op_name_;
  std::vector<std::shared_ptr<Node>> inputs_;
  /// Propagates grad_ into inputs' grads. Null for leaves.
  std::function<void(Node&)> backward_fn_;
};

/// Shared handle to a graph node; the public currency of the autograd API.
///
/// A default-constructed Variable is "empty" (no node); ops FKD_CHECK
/// non-emptiness. Variables are cheap to copy (shared_ptr).
class Variable {
 public:
  Variable() = default;

  /// Wraps a tensor as a leaf. `requires_grad = true` marks a trainable
  /// parameter whose gradient survives Backward().
  explicit Variable(Tensor value, bool requires_grad = false,
                    std::string name = "leaf")
      : node_(std::make_shared<Node>(std::move(value), requires_grad,
                                     std::move(name))) {}

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const {
    FKD_CHECK(defined());
    return node_->value();
  }
  Tensor& mutable_value() {
    FKD_CHECK(defined());
    return node_->mutable_value();
  }
  const Tensor& grad() const {
    FKD_CHECK(defined());
    return node_->grad();
  }
  bool requires_grad() const { return defined() && node_->requires_grad(); }

  void ZeroGrad() {
    FKD_CHECK(defined());
    node_->ZeroGrad();
  }

  std::shared_ptr<Node> node() const { return node_; }

  /// Scalar convenience: value of a [1x1] (or single-element) variable.
  float scalar() const {
    FKD_CHECK(defined());
    FKD_CHECK_EQ(node_->value().size(), 1u);
    return node_->value()[0];
  }

 private:
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}
  friend class GraphBuilder;

  std::shared_ptr<Node> node_;
};

/// RAII switch for tape-free (inference) forward passes on the current
/// thread. While a guard is alive, every op below produces a plain leaf:
/// requires_grad() is false, no input edges are retained and no backward
/// closure is allocated, so intermediates free eagerly and Backward() on the
/// result is a programmer error. Guards nest; each restores the previous
/// mode. The flag is thread-local, so serving workers can run tape-free
/// while a trainer thread keeps building graphs.
class InferenceModeGuard {
 public:
  InferenceModeGuard();
  ~InferenceModeGuard();

  InferenceModeGuard(const InferenceModeGuard&) = delete;
  InferenceModeGuard& operator=(const InferenceModeGuard&) = delete;

 private:
  bool previous_;
};

/// True while an InferenceModeGuard is alive on this thread.
bool InInferenceMode();

/// Process-wide count of tape nodes built so far (nodes that retained a
/// backward closure because an input requires gradients). Monotone;
/// tests diff it around a forward pass to prove the pass allocated no
/// gradient state.
uint64_t TapeNodesCreated();

/// Runs reverse-mode differentiation from `root`, which must hold exactly
/// one element (a scalar loss). Gradients accumulate into every node with
/// requires_grad() on a path to `root`; parameter leaves keep their grads
/// until ZeroGrad().
void Backward(const Variable& root);

/// ---- Differentiable operations -------------------------------------------
///
/// All operate on rank-2 tensors unless noted. Shapes are FKD_CHECKed.

/// C = A x B ([m,k] x [k,n] -> [m,n]).
Variable MatMul(const Variable& a, const Variable& b);

/// Element-wise sum / difference / Hadamard product (same shape).
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);

/// out = scale * a.
Variable Scale(const Variable& a, float scale);

/// out = 1 - a (the GDU "1 ⊖ g" construct).
Variable OneMinus(const Variable& a);

/// Adds a [1 x d] bias row to each row of a [n x d] matrix.
Variable AddRowBroadcast(const Variable& matrix, const Variable& row);

/// Point-wise nonlinearities.
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);

/// Inverted dropout; identity when `training` is false or p == 0.
Variable Dropout(const Variable& a, float p, Rng* rng, bool training);

/// Concatenates along columns; all parts share the row count.
Variable ConcatCols(const std::vector<Variable>& parts);

/// out = a[:, start : start + width]. Gradient scatters back into the
/// sliced column range. Used to unpack packed recurrent state (e.g. the
/// LSTM's [h, c]).
Variable SliceCols(const Variable& a, size_t start, size_t width);

/// out[i, :] = a[indices[i], :]. Gradient scatters (accumulates) back, so
/// repeated indices are fine. Used for embedding lookup and selecting the
/// labelled training rows of a hidden-state matrix.
Variable GatherRows(const Variable& a, const std::vector<int32_t>& indices);

/// out[g, :] = mean over r in groups[g] of a[r, :]; an empty group yields a
/// zero row (the paper's "default value 0" for missing GDU input ports).
/// This is the neighbour-aggregation primitive of the diffusive network.
Variable GroupMeanRows(const Variable& a,
                       const std::vector<std::vector<int32_t>>& groups);

/// out[i, :] = row_scales[i] * a[i, :], with constant (non-differentiated)
/// scales. Used for padding masks in sequence models.
Variable ScaleRows(const Variable& a, const std::vector<float>& row_scales);

/// Mean softmax cross-entropy of [n x k] logits against integer labels in
/// [0, k). Returns a [1 x 1] scalar. When `probs_out` is non-null it
/// receives the row-wise softmax probabilities (for metrics).
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int32_t>& labels,
                             Tensor* probs_out = nullptr);

/// Sum of squared entries, as a [1 x 1] scalar (L2 regularisation term).
Variable SumSquares(const Variable& a);

/// Sum of a list of [1 x 1] scalars.
Variable AddN(const std::vector<Variable>& scalars);

/// Extension point: builds a differentiable node with an arbitrary forward
/// value and backward closure. `backward` receives the output node (read
/// node.grad(), node.inputs()) and must AccumulateGrad into every input
/// that requires it. Used by ops living outside this translation unit
/// (e.g. the sparse-dense product in tensor/sparse.h).
Variable MakeCustomOp(Tensor value, const std::vector<Variable>& inputs,
                      std::string op_name,
                      std::function<void(Node&)> backward);

}  // namespace autograd
}  // namespace fkd

#endif  // FKD_TENSOR_AUTOGRAD_H_
