#include "tensor/autograd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>

#include "tensor/compute.h"
#include "tensor/ops.h"

namespace fkd {
namespace autograd {

void Node::AccumulateGrad(const Tensor& g) {
  FKD_CHECK(g.shape() == value_.shape());
  if (grad_.size() == 0) grad_ = Tensor(value_.shape());
  AxpyInPlace(1.0f, g, &grad_);
}

void Node::ZeroGrad() {
  if (grad_.size() != 0) grad_.SetZero();
}

namespace {

thread_local bool t_inference_mode = false;
std::atomic<uint64_t> g_tape_nodes_created{0};

}  // namespace

InferenceModeGuard::InferenceModeGuard() : previous_(t_inference_mode) {
  t_inference_mode = true;
}

InferenceModeGuard::~InferenceModeGuard() { t_inference_mode = previous_; }

bool InInferenceMode() { return t_inference_mode; }

uint64_t TapeNodesCreated() {
  return g_tape_nodes_created.load(std::memory_order_relaxed);
}

/// Internal factory: wires inputs and the backward closure into a new node.
class GraphBuilder {
 public:
  static Variable MakeOp(Tensor value, const std::vector<Variable>& inputs,
                         std::string op_name,
                         std::function<void(Node&)> backward_fn) {
    if (t_inference_mode) {
      // Tape-free path: the result is a detached leaf. Input edges and the
      // backward closure are dropped, so upstream intermediates free as
      // soon as the last Variable referencing them goes out of scope.
      for (const Variable& input : inputs) {
        FKD_CHECK(input.defined()) << "undefined input to op " << op_name;
      }
      return Variable(std::make_shared<Node>(
          std::move(value), /*requires_grad=*/false, std::move(op_name)));
    }
    bool requires_grad = false;
    for (const Variable& input : inputs) {
      FKD_CHECK(input.defined()) << "undefined input to op " << op_name;
      requires_grad = requires_grad || input.requires_grad();
    }
    auto node = std::make_shared<Node>(std::move(value), requires_grad,
                                       std::move(op_name));
    for (const Variable& input : inputs) node->inputs_.push_back(input.node());
    if (requires_grad) {
      node->backward_fn_ = std::move(backward_fn);
      g_tape_nodes_created.fetch_add(1, std::memory_order_relaxed);
    }
    return Variable(std::move(node));
  }
};

namespace {

Variable MakeOp(Tensor value, const std::vector<Variable>& inputs,
                std::string op_name, std::function<void(Node&)> backward_fn) {
  return GraphBuilder::MakeOp(std::move(value), inputs, std::move(op_name),
                              std::move(backward_fn));
}

}  // namespace

void Backward(const Variable& root) {
  FKD_CHECK(root.defined());
  FKD_CHECK_EQ(root.value().size(), 1u) << "Backward() needs a scalar root";
  FKD_CHECK(root.requires_grad())
      << "Backward() on a graph with no trainable parameters";

  // Iterative post-order DFS to get a topological order of the subgraph
  // that requires gradients.
  std::vector<Node*> topo_order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  stack.push_back({root.node().get(), 0});
  visited.insert(root.node().get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_input < frame.node->inputs().size()) {
      Node* input = frame.node->inputs()[frame.next_input++].get();
      if (input->requires_grad() && visited.insert(input).second) {
        stack.push_back({input, 0});
      }
    } else {
      topo_order.push_back(frame.node);
      stack.pop_back();
    }
  }

  Tensor seed(root.value().shape());
  seed.Fill(1.0f);
  root.node()->AccumulateGrad(seed);

  // Nodes run strictly in reverse topological order: gradient accumulation
  // into shared inputs happens in a fixed order, which keeps backward
  // passes bitwise-reproducible. Intra-op parallelism comes from the
  // kernels each backward closure calls (Gemm, elementwise, ZipMap, ...),
  // which fan out over the shared compute pool.
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn_) node->backward_fn_(*node);
  }
}

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = fkd::MatMul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(std::move(out), {a, b}, "matmul", [an, bn](Node& node) {
    const Tensor& dc = node.grad();
    if (an->requires_grad()) {
      Tensor da(an->value().shape());
      Gemm(false, true, 1.0f, dc, bn->value(), 0.0f, &da);
      an->AccumulateGrad(da);
    }
    if (bn->requires_grad()) {
      Tensor db(bn->value().shape());
      Gemm(true, false, 1.0f, an->value(), dc, 0.0f, &db);
      bn->AccumulateGrad(db);
    }
  });
}

Variable Add(const Variable& a, const Variable& b) {
  Tensor out = fkd::Add(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(std::move(out), {a, b}, "add", [an, bn](Node& node) {
    if (an->requires_grad()) an->AccumulateGrad(node.grad());
    if (bn->requires_grad()) bn->AccumulateGrad(node.grad());
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor out = fkd::Sub(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(std::move(out), {a, b}, "sub", [an, bn](Node& node) {
    if (an->requires_grad()) an->AccumulateGrad(node.grad());
    if (bn->requires_grad()) {
      Tensor neg = node.grad();
      ScaleInPlace(-1.0f, &neg);
      bn->AccumulateGrad(neg);
    }
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = fkd::Mul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(std::move(out), {a, b}, "mul", [an, bn](Node& node) {
    if (an->requires_grad()) an->AccumulateGrad(fkd::Mul(node.grad(), bn->value()));
    if (bn->requires_grad()) bn->AccumulateGrad(fkd::Mul(node.grad(), an->value()));
  });
}

Variable Scale(const Variable& a, float scale) {
  Tensor out = a.value();
  ScaleInPlace(scale, &out);
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "scale", [an, scale](Node& node) {
    Tensor da = node.grad();
    ScaleInPlace(scale, &da);
    an->AccumulateGrad(da);
  });
}

Variable OneMinus(const Variable& a) {
  Tensor out = Map(a.value(), [](float x) { return 1.0f - x; });
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "one_minus", [an](Node& node) {
    Tensor da = node.grad();
    ScaleInPlace(-1.0f, &da);
    an->AccumulateGrad(da);
  });
}

Variable AddRowBroadcast(const Variable& matrix, const Variable& row) {
  FKD_CHECK_EQ(row.value().rows(), 1u);
  Tensor out = fkd::AddRowBroadcast(matrix.value(), row.value());
  auto mn = matrix.node();
  auto rn = row.node();
  return MakeOp(std::move(out), {matrix, row}, "add_row", [mn, rn](Node& node) {
    if (mn->requires_grad()) mn->AccumulateGrad(node.grad());
    if (rn->requires_grad()) rn->AccumulateGrad(SumRowsTo(node.grad()));
  });
}

Variable Sigmoid(const Variable& a) {
  Tensor out = fkd::Sigmoid(a.value());
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "sigmoid", [an](Node& node) {
    const Tensor& y = node.value();
    Tensor da = ZipMap(node.grad(), y,
                       [](float g, float s) { return g * s * (1.0f - s); });
    an->AccumulateGrad(da);
  });
}

Variable Tanh(const Variable& a) {
  Tensor out = TanhT(a.value());
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "tanh", [an](Node& node) {
    const Tensor& y = node.value();
    Tensor da = ZipMap(node.grad(), y,
                       [](float g, float t) { return g * (1.0f - t * t); });
    an->AccumulateGrad(da);
  });
}

Variable Relu(const Variable& a) {
  Tensor out = fkd::Relu(a.value());
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "relu", [an](Node& node) {
    Tensor da = ZipMap(node.grad(), an->value(),
                       [](float g, float x) { return x > 0.0f ? g : 0.0f; });
    an->AccumulateGrad(da);
  });
}

Variable Dropout(const Variable& a, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) return a;
  FKD_CHECK(rng != nullptr);
  FKD_CHECK_LT(p, 1.0f);
  // Inverted dropout: the mask carries the 1/(1-p) keep scale.
  Tensor mask(a.value().shape());
  const float keep_scale = 1.0f / (1.0f - p);
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0f : keep_scale;
  }
  Tensor out = fkd::Mul(a.value(), mask);
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "dropout",
                [an, mask = std::move(mask)](Node& node) {
                  an->AccumulateGrad(fkd::Mul(node.grad(), mask));
                });
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  FKD_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<std::shared_ptr<Node>> nodes;
  for (const Variable& part : parts) {
    values.push_back(part.value());
    nodes.push_back(part.node());
  }
  Tensor out = fkd::ConcatCols(values);
  return MakeOp(std::move(out), parts, "concat_cols",
                [nodes = std::move(nodes)](Node& node) {
                  const Tensor& dc = node.grad();
                  size_t offset = 0;
                  for (const auto& input : nodes) {
                    const size_t width = input->value().cols();
                    if (input->requires_grad()) {
                      Tensor slice(input->value().rows(), width);
                      for (size_t r = 0; r < slice.rows(); ++r) {
                        const float* src = dc.Row(r) + offset;
                        std::copy(src, src + width, slice.Row(r));
                      }
                      input->AccumulateGrad(slice);
                    }
                    offset += width;
                  }
                });
}

Variable SliceCols(const Variable& a, size_t start, size_t width) {
  const Tensor& av = a.value();
  FKD_CHECK_LE(start + width, av.cols());
  Tensor out(av.rows(), width);
  for (size_t r = 0; r < av.rows(); ++r) {
    const float* src = av.Row(r) + start;
    std::copy(src, src + width, out.Row(r));
  }
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "slice_cols",
                [an, start, width](Node& node) {
                  const Tensor& dc = node.grad();
                  Tensor da(an->value().shape());
                  for (size_t r = 0; r < da.rows(); ++r) {
                    float* dst = da.Row(r) + start;
                    const float* src = dc.Row(r);
                    for (size_t c = 0; c < width; ++c) dst[c] += src[c];
                  }
                  an->AccumulateGrad(da);
                });
}

Variable GatherRows(const Variable& a, const std::vector<int32_t>& indices) {
  const Tensor& av = a.value();
  const size_t d = av.cols();
  Tensor out(indices.size(), d);
  // Row-parallel gather: output rows are disjoint per index.
  ParallelKernel("autograd/gather_rows", 0, indices.size(),
                 std::max<size_t>(1, 4096 / std::max<size_t>(1, d)),
                 [&](size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     FKD_CHECK_GE(indices[i], 0);
                     FKD_CHECK_LT(static_cast<size_t>(indices[i]), av.rows());
                     std::copy(av.Row(indices[i]), av.Row(indices[i]) + d,
                               out.Row(i));
                   }
                 });
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "gather_rows",
                [an, indices](Node& node) {
                  const Tensor& dc = node.grad();
                  Tensor da(an->value().shape());
                  const size_t d = da.cols();
                  for (size_t i = 0; i < indices.size(); ++i) {
                    float* dst = da.Row(indices[i]);
                    const float* src = dc.Row(i);
                    for (size_t c = 0; c < d; ++c) dst[c] += src[c];
                  }
                  an->AccumulateGrad(da);
                });
}

Variable GroupMeanRows(const Variable& a,
                       const std::vector<std::vector<int32_t>>& groups) {
  const Tensor& av = a.value();
  const size_t d = av.cols();
  Tensor out(groups.size(), d);
  // Group-parallel: each group owns its output row, and its in-group sum
  // keeps the member order of `groups[g]`, so chunking never changes bits.
  ParallelKernel("autograd/group_mean", 0, groups.size(),
                 std::max<size_t>(1, 4096 / std::max<size_t>(1, d)),
                 [&](size_t begin, size_t end) {
                   for (size_t g = begin; g < end; ++g) {
                     if (groups[g].empty()) continue;  // Missing port: stays zero.
                     float* dst = out.Row(g);
                     for (int32_t r : groups[g]) {
                       FKD_CHECK_GE(r, 0);
                       FKD_CHECK_LT(static_cast<size_t>(r), av.rows());
                       const float* src = av.Row(r);
                       for (size_t c = 0; c < d; ++c) dst[c] += src[c];
                     }
                     const float inv =
                         1.0f / static_cast<float>(groups[g].size());
                     for (size_t c = 0; c < d; ++c) dst[c] *= inv;
                   }
                 });
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "group_mean_rows",
                [an, groups](Node& node) {
                  const Tensor& dc = node.grad();
                  Tensor da(an->value().shape());
                  const size_t d = da.cols();
                  for (size_t g = 0; g < groups.size(); ++g) {
                    if (groups[g].empty()) continue;
                    const float inv = 1.0f / static_cast<float>(groups[g].size());
                    const float* src = dc.Row(g);
                    for (int32_t r : groups[g]) {
                      float* dst = da.Row(r);
                      for (size_t c = 0; c < d; ++c) dst[c] += inv * src[c];
                    }
                  }
                  an->AccumulateGrad(da);
                });
}

Variable ScaleRows(const Variable& a, const std::vector<float>& row_scales) {
  const Tensor& av = a.value();
  FKD_CHECK_EQ(row_scales.size(), av.rows());
  Tensor out = av;
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    for (size_t c = 0; c < out.cols(); ++c) row[c] *= row_scales[r];
  }
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "scale_rows",
                [an, row_scales](Node& node) {
                  Tensor da = node.grad();
                  for (size_t r = 0; r < da.rows(); ++r) {
                    float* row = da.Row(r);
                    for (size_t c = 0; c < da.cols(); ++c) {
                      row[c] *= row_scales[r];
                    }
                  }
                  an->AccumulateGrad(da);
                });
}

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int32_t>& labels,
                             Tensor* probs_out) {
  const Tensor& lv = logits.value();
  FKD_CHECK_EQ(labels.size(), lv.rows());
  FKD_CHECK_GT(labels.size(), 0u);
  Tensor probs = SoftmaxRows(lv);
  if (probs_out != nullptr) *probs_out = probs;
  double total_nll = 0.0;
  for (size_t r = 0; r < lv.rows(); ++r) {
    const int32_t label = labels[r];
    FKD_CHECK_GE(label, 0);
    FKD_CHECK_LT(static_cast<size_t>(label), lv.cols());
    total_nll += -std::log(std::max(probs.At(r, label), 1e-12f));
  }
  Tensor out(1, 1);
  out[0] = static_cast<float>(total_nll / static_cast<double>(lv.rows()));
  auto ln = logits.node();
  return MakeOp(std::move(out), {logits}, "softmax_xent",
                [ln, labels, probs = std::move(probs)](Node& node) {
                  const float upstream = node.grad()[0];
                  const float inv_n =
                      upstream / static_cast<float>(probs.rows());
                  Tensor da = probs;
                  for (size_t r = 0; r < da.rows(); ++r) {
                    da.At(r, labels[r]) -= 1.0f;
                  }
                  ScaleInPlace(inv_n, &da);
                  ln->AccumulateGrad(da);
                });
}

Variable SumSquares(const Variable& a) {
  double total = 0.0;
  const Tensor& av = a.value();
  for (size_t i = 0; i < av.size(); ++i) {
    total += static_cast<double>(av[i]) * av[i];
  }
  Tensor out(1, 1);
  out[0] = static_cast<float>(total);
  auto an = a.node();
  return MakeOp(std::move(out), {a}, "sum_squares", [an](Node& node) {
    const float upstream = node.grad()[0];
    Tensor da = an->value();
    ScaleInPlace(2.0f * upstream, &da);
    an->AccumulateGrad(da);
  });
}

Variable AddN(const std::vector<Variable>& scalars) {
  FKD_CHECK(!scalars.empty());
  Tensor out(1, 1);
  std::vector<std::shared_ptr<Node>> nodes;
  for (const Variable& s : scalars) {
    FKD_CHECK_EQ(s.value().size(), 1u);
    out[0] += s.value()[0];
    nodes.push_back(s.node());
  }
  return MakeOp(std::move(out), scalars, "add_n",
                [nodes = std::move(nodes)](Node& node) {
                  for (const auto& input : nodes) {
                    if (input->requires_grad()) input->AccumulateGrad(node.grad());
                  }
                });
}

Variable MakeCustomOp(Tensor value, const std::vector<Variable>& inputs,
                      std::string op_name,
                      std::function<void(Node&)> backward) {
  return GraphBuilder::MakeOp(std::move(value), inputs, std::move(op_name),
                              std::move(backward));
}

}  // namespace autograd
}  // namespace fkd
