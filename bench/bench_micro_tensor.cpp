// Microbenchmarks of the tensor/autograd engine kernels that dominate
// FakeDetector training time.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace fkd {
namespace {

void BM_Gemm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::Randn(n, n, &rng);
  const Tensor b = Tensor::Randn(n, n, &rng);
  Tensor c(n, n);
  for (auto _ : state) {
    Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransposedB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  const Tensor a = Tensor::Randn(n, n, &rng);
  const Tensor b = Tensor::Randn(n, n, &rng);
  Tensor c(n, n);
  for (auto _ : state) {
    Gemm(false, true, 1.0f, a, b, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransposedB)->Arg(64)->Arg(128);

void BM_Sigmoid(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  const Tensor x = Tensor::Randn(n, n, &rng);
  for (auto _ : state) {
    Tensor y = Sigmoid(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Sigmoid)->Arg(64)->Arg(256);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(4);
  const Tensor logits = Tensor::Randn(static_cast<size_t>(state.range(0)), 6, &rng);
  for (auto _ : state) {
    Tensor probs = SoftmaxRows(logits);
    benchmark::DoNotOptimize(probs.data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(1000)->Arg(10000);

void BM_AutogradMatMulForwardBackward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  autograd::Variable a(Tensor::Randn(n, n, &rng), true);
  autograd::Variable b(Tensor::Randn(n, n, &rng), true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    autograd::Variable loss = autograd::SumSquares(autograd::MatMul(a, b));
    autograd::Backward(loss);
    benchmark::DoNotOptimize(a.grad().data());
  }
}
BENCHMARK(BM_AutogradMatMulForwardBackward)->Arg(32)->Arg(64)->Arg(128);

void BM_GroupMeanRows(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  autograd::Variable h(Tensor::Randn(n, 48, &rng), false);
  // ~3.5 members per group, like article-subject fan-in.
  std::vector<std::vector<int32_t>> groups(n);
  for (auto& group : groups) {
    const size_t size = 1 + rng.UniformInt(5u);
    for (size_t i = 0; i < size; ++i) {
      group.push_back(static_cast<int32_t>(rng.UniformInt(n)));
    }
  }
  for (auto _ : state) {
    autograd::Variable out = autograd::GroupMeanRows(h, groups);
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_GroupMeanRows)->Arg(1000)->Arg(14055);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  autograd::Variable logits(Tensor::Randn(n, 6, &rng), true);
  std::vector<int32_t> labels(n);
  for (auto& label : labels) label = static_cast<int32_t>(rng.UniformInt(6u));
  for (auto _ : state) {
    logits.ZeroGrad();
    autograd::Variable loss = autograd::SoftmaxCrossEntropy(logits, labels);
    autograd::Backward(loss);
    benchmark::DoNotOptimize(loss.scalar());
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy)->Arg(1000)->Arg(14055);

void BM_SparseVsDenseMatMul(benchmark::State& state) {
  // BoW-like sparsity: 5000 x 150 explicit features, ~20 nonzeros per row.
  const bool use_sparse = state.range(0) == 1;
  Rng rng(8);
  Tensor features(5000, 150);
  for (size_t r = 0; r < features.rows(); ++r) {
    for (int k = 0; k < 20; ++k) {
      features.At(r, rng.UniformInt(150u)) += 1.0f;
    }
  }
  const CsrMatrix sparse = CsrMatrix::FromDense(features);
  const Tensor weights = Tensor::Randn(150, 48, &rng);
  for (auto _ : state) {
    if (use_sparse) {
      Tensor out = sparse.MatMul(weights);
      benchmark::DoNotOptimize(out.data());
    } else {
      Tensor out = MatMul(features, weights);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetLabel(use_sparse ? "sparse" : "dense");
}
BENCHMARK(BM_SparseVsDenseMatMul)->Arg(0)->Arg(1);

}  // namespace
}  // namespace fkd

BENCHMARK_MAIN();
