#ifndef FKD_BENCH_BENCH_HARDWARE_H_
#define FKD_BENCH_BENCH_HARDWARE_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

namespace fkd {
namespace bench {

/// Raw FKD_NUM_THREADS value ("" when unset) — recorded next to every
/// measurement so a committed artifact is interpretable without knowing the
/// environment it ran in.
inline std::string FkdNumThreadsEnv() {
  const char* env = std::getenv("FKD_NUM_THREADS");
  return env != nullptr ? env : "";
}

/// JSON fragment (no surrounding braces/comma) recording the host context
/// of a measurement row:
///   "hardware_concurrency":8,"fkd_num_threads":"4"
inline std::string HardwareContextJsonFields() {
  return "\"hardware_concurrency\":" +
         std::to_string(std::thread::hardware_concurrency()) +
         ",\"fkd_num_threads\":\"" + FkdNumThreadsEnv() + "\"";
}

/// True — after printing a loud, unmissable warning — when the host cannot
/// support a parallel-speedup expectation. Speedup gates must consult this
/// and skip (not fail, and not silently pass) on 1-core CI boxes: the
/// committed BENCH artifacts from such hosts record timings only.
inline bool SkipSpeedupGateOnSmallHost(const char* bench, const char* gate,
                                       unsigned needed_cores = 2) {
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= needed_cores) return false;
  std::fprintf(
      stderr,
      "============================================================\n"
      "%s: SKIPPED: 1-core host\n"
      "  hardware_concurrency=%u < %u required by gate \"%s\".\n"
      "  Timings were recorded but no speedup is asserted; rerun on\n"
      "  a multi-core host to exercise the parallel contract.\n"
      "============================================================\n",
      bench, cores, needed_cores, gate);
  return true;
}

}  // namespace bench
}  // namespace fkd

#endif  // FKD_BENCH_BENCH_HARDWARE_H_
