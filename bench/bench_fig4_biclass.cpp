// Reproduces Figure 4: bi-class credibility inference of news articles
// (4a-4d), creators (4e-4h) and subjects (4i-4l) — Accuracy / F1 /
// Precision / Recall versus training sample ratio theta, for FakeDetector
// and the five baselines (lp, deepwalk, line, svm, rnn).
//
// Default scale finishes in minutes; run with --full or
// FKD_BENCH_SCALE=full for the paper's protocol (14,055 articles, theta
// 0.1..1.0, 10-fold CV).
//
// Expected shape (paper §5.2.1): FakeDetector has the best Accuracy, F1
// and Precision on all three node types at every theta (e.g. article
// accuracy 0.63 at theta = 0.1, >14.5% above every baseline), while its
// Recall is slightly below some baselines (it predicts "True" less often).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/generator.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddBool("full", false, "paper-scale protocol (slow)");
  flags.AddInt("articles", 0, "override corpus size (0 = scale default)");
  flags.AddInt("folds", 0, "override folds to run (0 = scale default)");
  flags.AddInt("seed", 7, "random seed");
  flags.AddString("csv", "", "optional CSV output path");
  flags.AddString("jsonl", "", "optional metrics JSONL output path");
  flags.AddBool("verbose", false, "log each completed run");
  flags.AddBool("progress", false, "log each completed (method, theta) cell");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  fkd::bench::BenchScale scale = flags.GetBool("full")
                                     ? fkd::bench::BenchScale::Full()
                                     : fkd::bench::BenchScale::FromEnvironment();
  if (flags.GetInt("articles") > 0) scale.articles = flags.GetInt("articles");
  if (flags.GetInt("folds") > 0) scale.folds_to_run = flags.GetInt("folds");

  auto dataset_result = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(scale.articles,
                                          static_cast<uint64_t>(flags.GetInt("seed"))));
  FKD_CHECK_OK(dataset_result.status());
  const fkd::data::Dataset& dataset = dataset_result.value();
  std::printf("Figure 4 (bi-class) on %s\n\n",
              fkd::data::DescribeDataset(dataset).c_str());

  fkd::eval::ExperimentOptions options;
  options.k_folds = scale.k_folds;
  options.folds_to_run = scale.folds_to_run;
  options.sample_ratios = scale.sample_ratios;
  options.granularity = fkd::eval::LabelGranularity::kBinary;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.verbose = flags.GetBool("verbose");
  options.progress = flags.GetBool("progress");
  options.metrics_jsonl_path = flags.GetString("jsonl");

  fkd::eval::ExperimentRunner runner(dataset, options);
  fkd::bench::RegisterAllMethods(&runner, scale);

  fkd::bench::SweepTimer timer("fig4_biclass");
  auto results = runner.Run();
  FKD_CHECK_OK(results.status());
  std::printf("sweep finished in %.1fs (%zu methods x %zu ratios x %zu folds)\n\n",
              timer.ElapsedSeconds(), static_cast<size_t>(6),
              options.sample_ratios.size(), scale.folds_to_run);

  for (const auto kind :
       {fkd::eval::EntityKind::kArticle, fkd::eval::EntityKind::kCreator,
        fkd::eval::EntityKind::kSubject}) {
    std::printf("==== Fig 4: bi-class %s panels ====\n\n%s",
                fkd::eval::EntityKindName(kind),
                fkd::eval::FormatFigureSeries(
                    results.value(), kind,
                    fkd::eval::LabelGranularity::kBinary)
                    .c_str());
  }

  const std::string csv = flags.GetString("csv");
  if (!csv.empty()) {
    FKD_CHECK_OK(fkd::eval::WriteSweepCsv(results.value(), csv));
    std::printf("wrote %s\n", csv.c_str());
  }
  const std::string jsonl = flags.GetString("jsonl");
  if (!jsonl.empty()) std::printf("wrote %s\n", jsonl.c_str());
  return 0;
}
