// Reproduces Table 1 ("Properties of the Heterogeneous Networks"): node and
// link counts of the PolitiFact News-HSN, paper values printed alongside.
//
// Default runs the paper-scale generator (cheap — no training involved).

#include <cstdio>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "data/generator.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 14055, "corpus size (14055 = paper scale)");
  flags.AddInt("seed", 42, "random seed");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  fkd::data::GeneratorOptions options;
  if (static_cast<size_t>(flags.GetInt("articles")) != options.num_articles) {
    options = fkd::data::GeneratorOptions::Scaled(
        flags.GetInt("articles"), static_cast<uint64_t>(flags.GetInt("seed")));
  } else {
    options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  }
  auto dataset_result = fkd::data::GeneratePolitiFact(options);
  FKD_CHECK_OK(dataset_result.status());
  const fkd::data::Dataset& dataset = dataset_result.value();

  auto graph_result = dataset.BuildGraph();
  FKD_CHECK_OK(graph_result.status());
  const auto& graph = graph_result.value();

  std::printf("Table 1: properties of the heterogeneous network\n\n");
  fkd::eval::TextTable table({"property", "measured", "paper"});
  table.AddRow({"# articles",
                fkd::StrFormat("%zu", graph.NumNodes(fkd::graph::NodeType::kArticle)),
                "14055"});
  table.AddRow({"# creators",
                fkd::StrFormat("%zu", graph.NumNodes(fkd::graph::NodeType::kCreator)),
                "3634"});
  table.AddRow({"# subjects",
                fkd::StrFormat("%zu", graph.NumNodes(fkd::graph::NodeType::kSubject)),
                "152"});
  table.AddRow({"# creator-article links",
                fkd::StrFormat("%zu", graph.NumEdges(fkd::graph::EdgeType::kAuthorship)),
                "14055"});
  table.AddRow({"# article-subject links",
                fkd::StrFormat("%zu",
                               graph.NumEdges(fkd::graph::EdgeType::kSubjectIndication)),
                "48756"});
  const double mean_articles =
      static_cast<double>(dataset.articles.size()) /
      static_cast<double>(dataset.creators.size());
  table.AddRow({"articles per creator (mean)",
                fkd::StrFormat("%.2f", mean_articles), "3.86"});
  const double mean_subjects =
      static_cast<double>(dataset.NumSubjectLinks()) /
      static_cast<double>(dataset.articles.size());
  table.AddRow({"subjects per article (mean)",
                fkd::StrFormat("%.2f", mean_subjects), "3.5"});
  std::printf("%s", table.Render().c_str());
  return 0;
}
