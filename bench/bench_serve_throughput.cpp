// Serving throughput sweep: trains a small detector once, exports and
// reloads a snapshot, then drives an InferenceEngine with an open-loop load
// generator across worker-count x batch-size configurations. Each config
// prints achieved req/s and latency percentiles, and optionally appends a
// JSONL record per config for offline aggregation.
//
//   ./bench_serve_throughput [--articles=120] [--requests=400]
//                            [--rate=0] [--jsonl=/path/out.jsonl]
//
// --rate caps offered load in req/s (0 = as fast as possible). The sweep is
// the scaling story of the serving engine: with batching enabled, workers
// amortise one forward over many queued requests, so req/s grows with the
// pool until the queue (or the core count) is the bottleneck.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_hardware.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/generator.h"
#include "data/split.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace {

using Clock = std::chrono::steady_clock;

struct ConfigResult {
  size_t workers = 0;
  size_t batch = 0;
  double wall_seconds = 0.0;
  double req_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  /// Intra-op pool shape during this config, so serving numbers are
  /// comparable across kernel-parallelism settings (FKD_NUM_THREADS).
  size_t pool_threads = 0;
  uint64_t pool_tasks = 0;    ///< Kernel chunks run by the pool this config.
  uint64_t pool_regions = 0;  ///< Parallel regions dispatched this config.
};

ConfigResult RunConfig(const std::shared_ptr<const fkd::serve::Snapshot>& snapshot,
                       const std::vector<std::string>& texts, size_t workers,
                       size_t batch, double rate) {
  fkd::serve::EngineOptions options;
  options.num_workers = workers;
  options.max_batch_size = batch;
  options.max_batch_delay_us = batch > 1 ? 500 : 0;
  options.max_queue_depth = 4096;
  fkd::serve::InferenceEngine engine(snapshot, options);
  const fkd::ThreadPool& pool = fkd::ThreadPool::Global();
  const uint64_t tasks_before = pool.tasks();
  const uint64_t regions_before = pool.regions();
  FKD_CHECK_OK(engine.Start());

  // Open-loop generator: submissions are paced by the offered rate, not by
  // completions, so queueing behaviour under overload is visible.
  std::vector<fkd::serve::ClassificationFuture> futures;
  futures.reserve(texts.size());
  std::vector<double> latencies;
  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < texts.size(); ++i) {
    if (rate > 0.0) {
      const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(i / rate));
      std::this_thread::sleep_until(due);
    }
    fkd::serve::ArticleRequest request;
    request.text = texts[i];
    auto submitted = engine.Submit(std::move(request));
    if (submitted.ok()) futures.push_back(std::move(submitted).value());
  }
  double batch_sum = 0.0;
  for (auto& future : futures) {
    auto result = future.get();
    if (!result.ok()) continue;
    latencies.push_back(result.value().total_us);
    batch_sum += static_cast<double>(result.value().batch_size);
  }
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  engine.Stop();

  ConfigResult out;
  out.workers = workers;
  out.batch = batch;
  out.wall_seconds = wall;
  out.pool_threads = pool.num_threads();
  out.pool_tasks = pool.tasks() - tasks_before;
  out.pool_regions = pool.regions() - regions_before;
  out.completed = engine.Stats().completed;
  out.rejected = engine.Stats().rejected;
  out.req_per_s = wall > 0.0 ? static_cast<double>(latencies.size()) / wall : 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    out.p50_us = latencies[latencies.size() / 2];
    out.p99_us = latencies[(latencies.size() * 99) / 100];
    out.mean_batch = batch_sum / static_cast<double>(latencies.size());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 120, "synthetic training corpus size");
  flags.AddInt("train-epochs", 6, "training epochs before export");
  flags.AddInt("requests", 400, "requests per configuration");
  flags.AddDouble("rate", 0.0, "offered load in req/s (0 = unpaced)");
  flags.AddString("jsonl", "", "append one JSON line per config to this file");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // Train once, snapshot, reload: the bench measures the serving path that a
  // production restart would take, not the in-memory trained object.
  auto dataset = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(
          static_cast<size_t>(flags.GetInt("articles")), 55));
  FKD_CHECK_OK(dataset.status());
  auto graph = dataset.value().BuildGraph();
  FKD_CHECK_OK(graph.status());

  fkd::Rng rng(77);
  auto splits = fkd::data::KFoldTriSplits(dataset.value().articles.size(),
                                          dataset.value().creators.size(),
                                          dataset.value().subjects.size(), 5,
                                          &rng);
  FKD_CHECK_OK(splits.status());

  fkd::core::FakeDetectorConfig config;
  config.epochs = static_cast<size_t>(flags.GetInt("train-epochs"));
  config.explicit_words = 60;
  config.latent_vocabulary = 200;
  config.hflu.max_sequence_length = 12;
  config.hflu.gru_hidden = 16;
  config.hflu.latent_dim = 12;
  config.hflu.embed_dim = 12;
  config.gdu_hidden = 24;
  config.verbose = false;

  fkd::eval::TrainContext context;
  context.dataset = &dataset.value();
  context.graph = &graph.value();
  context.train_articles = splits.value()[0].articles.train;
  context.train_creators = splits.value()[0].creators.train;
  context.train_subjects = splits.value()[0].subjects.train;
  context.granularity = fkd::eval::LabelGranularity::kBinary;
  context.seed = 7;

  fkd::core::FakeDetector detector(config);
  FKD_CHECK_OK(detector.Train(context));

  const std::string snapshot_dir =
      (std::filesystem::temp_directory_path() / "fkd_bench_serve_snapshot")
          .string();
  FKD_CHECK_OK(fkd::serve::ExportSnapshot(detector, snapshot_dir));
  auto loaded = fkd::serve::LoadSnapshot(snapshot_dir);
  FKD_CHECK_OK(loaded.status());
  auto snapshot = std::make_shared<const fkd::serve::Snapshot>(
      std::move(loaded).value());

  const size_t num_requests = static_cast<size_t>(flags.GetInt("requests"));
  std::vector<std::string> texts;
  texts.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    texts.push_back(
        dataset.value().articles[i % dataset.value().articles.size()].text);
  }

  std::ofstream jsonl;
  const std::string jsonl_path = flags.GetString("jsonl");
  if (!jsonl_path.empty()) {
    jsonl.open(jsonl_path, std::ios::app);
    FKD_CHECK(jsonl.good()) << "cannot open " << jsonl_path;
  }

  std::printf("%u hardware threads; %zu requests per config\n\n",
              std::thread::hardware_concurrency(), num_requests);
  std::printf("%8s %6s %10s %10s %10s %10s %8s\n", "workers", "batch",
              "req/s", "p50_us", "p99_us", "mean_bs", "rejected");
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    for (size_t batch : {1u, 32u}) {
      const ConfigResult r =
          RunConfig(snapshot, texts, workers, batch, flags.GetDouble("rate"));
      std::printf("%8zu %6zu %10.1f %10.0f %10.0f %10.1f %8llu\n", r.workers,
                  r.batch, r.req_per_s, r.p50_us, r.p99_us, r.mean_batch,
                  static_cast<unsigned long long>(r.rejected));
      if (jsonl.is_open()) {
        jsonl << "{\"bench\":\"serve_throughput\",\"workers\":" << r.workers
              << ",\"batch\":" << r.batch << ",\"req_per_s\":" << r.req_per_s
              << ",\"p50_us\":" << r.p50_us << ",\"p99_us\":" << r.p99_us
              << ",\"mean_batch\":" << r.mean_batch
              << ",\"completed\":" << r.completed
              << ",\"rejected\":" << r.rejected
              << ",\"wall_seconds\":" << r.wall_seconds << ","
              << fkd::bench::HardwareContextJsonFields()
              << ",\"pool_threads\":" << r.pool_threads
              << ",\"pool_tasks\":" << r.pool_tasks
              << ",\"pool_regions\":" << r.pool_regions << "}\n";
      }
    }
  }
  return 0;
}
