// Microbenchmarks of the FKDN/1 wire codec: frame encode (header + double
// CRC-32C), streaming decode through FrameDecoder in socket-sized chunks,
// and the classify request/response message codecs. These bound the
// per-request protocol overhead of the network front end — the gap between
// fkd_loadgen's wire numbers and bench_serve_router's in-process numbers.

#include <benchmark/benchmark.h>

#include <string>

#include "net/wire.h"

namespace {

using fkd::net::ClassifyRequestMsg;
using fkd::net::ClassifyResponseMsg;
using fkd::net::Frame;
using fkd::net::FrameDecoder;
using fkd::net::MessageType;

void BM_EncodeFrame(benchmark::State& state) {
  const std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fkd::net::EncodeFrame(MessageType::kClassifyRequest, 42, payload));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(payload.size() + fkd::net::kHeaderSize));
}
BENCHMARK(BM_EncodeFrame)->Arg(64)->Arg(1024)->Arg(16384);

/// Streaming decode: many frames in one buffer, fed in 16 KiB chunks the
/// way the server's read loop sees them.
void BM_DecodeStream(benchmark::State& state) {
  const std::string payload(static_cast<size_t>(state.range(0)), 'x');
  std::string stream;
  constexpr size_t kFrames = 64;
  for (size_t i = 0; i < kFrames; ++i) {
    stream += fkd::net::EncodeFrame(MessageType::kClassifyRequest, i, payload);
  }
  for (auto _ : state) {
    FrameDecoder decoder;
    size_t decoded = 0;
    for (size_t off = 0; off < stream.size(); off += 16384) {
      decoder.Append(stream.data() + off,
                     std::min<size_t>(16384, stream.size() - off));
      for (;;) {
        Frame frame;
        bool ready = false;
        if (!decoder.Next(&frame, &ready).ok() || !ready) break;
        ++decoded;
      }
    }
    if (decoded != kFrames) state.SkipWithError("decode mismatch");
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_DecodeStream)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ClassifyRequestCodec(benchmark::State& state) {
  ClassifyRequestMsg msg;
  msg.text = std::string(static_cast<size_t>(state.range(0)), 'a');
  msg.creator_id = 7;
  msg.subject_ids = {1, 2, 3};
  for (auto _ : state) {
    const std::string payload = fkd::net::EncodeClassifyRequest(msg);
    auto decoded = fkd::net::DecodeClassifyRequest(payload);
    if (!decoded.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_ClassifyRequestCodec)->Arg(256)->Arg(4096);

void BM_ClassifyResponseCodec(benchmark::State& state) {
  ClassifyResponseMsg msg;
  msg.ok = true;
  msg.class_id = 1;
  msg.class_name = "fake";
  msg.probabilities = {0.2f, 0.8f};
  msg.model_version = 3;
  msg.total_us = 412.5;
  for (auto _ : state) {
    const std::string payload = fkd::net::EncodeClassifyResponse(msg);
    auto decoded = fkd::net::DecodeClassifyResponse(payload);
    if (!decoded.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_ClassifyResponseCodec);

}  // namespace

BENCHMARK_MAIN();
