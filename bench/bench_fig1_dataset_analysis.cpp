// Reproduces the Figure 1 dataset-analysis panels:
//   (a) creator-article power-law distribution (+ Zipf MLE exponent),
//   (b)/(c) frequent words of true vs false articles,
//   (d) true/false article counts of the top subjects,
//   (e)/(f) 6-class histograms of the four persona creators.
// Paper reference values are printed next to the measured ones.

#include <algorithm>
#include <cstdio>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "data/generator.h"
#include "eval/report.h"
#include "graph/stats.h"
#include "text/features.h"

namespace {

using fkd::data::CredibilityLabel;
using fkd::data::Dataset;

void PanelA(const Dataset& dataset) {
  std::printf("-- Fig 1(a): creator publishing power law --\n");
  std::vector<size_t> counts(dataset.creators.size(), 0);
  for (const auto& article : dataset.articles) ++counts[article.creator];
  const auto summary = fkd::graph::SummarizeDegrees(counts);
  const auto fit = fkd::graph::FitPowerLaw(counts, /*k_min=*/2);
  std::printf("  mean articles/creator: %.2f (paper: 3.86)\n", summary.mean);
  std::printf("  most prolific creator: %zu articles (paper: 599, Obama)\n",
              summary.max);
  std::printf("  power-law alpha (k>=2): %.2f\n", fit.alpha);
  std::printf("  #articles -> fraction of creators:\n");
  size_t shown = 0;
  for (const auto& [degree, fraction] :
       fkd::graph::DegreeFractionDistribution(counts)) {
    if (shown++ >= 6) break;
    std::printf("    %4zu  %.4f\n", degree, fraction);
  }
  std::printf("\n");
}

void PanelBC(const Dataset& dataset) {
  fkd::text::ClassWordStats stats(2);
  std::vector<std::string> texts;
  for (const auto& article : dataset.articles) texts.push_back(article.text);
  const auto documents = fkd::text::TokenizeDocuments(texts);
  for (const auto& article : dataset.articles) {
    stats.AddDocument(documents[article.id],
                      fkd::data::BiClassOf(article.label));
  }
  std::printf(
      "-- Fig 1(b): frequent words, TRUE articles "
      "(paper: president, income, tax, american, ...) --\n  ");
  for (const auto& [word, count] : stats.TopWordsForClass(1, 15)) {
    std::printf("%s:%lld ", word.c_str(), static_cast<long long>(count));
  }
  std::printf(
      "\n-- Fig 1(c): frequent words, FALSE articles "
      "(paper: obama, republican, clinton, obamacare, gun, ...) --\n  ");
  for (const auto& [word, count] : stats.TopWordsForClass(0, 15)) {
    std::printf("%s:%lld ", word.c_str(), static_cast<long long>(count));
  }
  std::printf("\n\n");
}

void PanelD(const Dataset& dataset) {
  std::printf(
      "-- Fig 1(d): top-10 subjects, true vs false counts "
      "(paper: health 46.5%% true, economy 63.2%% true) --\n");
  std::vector<std::pair<int64_t, int64_t>> counts(dataset.subjects.size(),
                                                  {0, 0});
  for (const auto& article : dataset.articles) {
    for (int32_t s : article.subjects) {
      if (fkd::data::IsPositive(article.label)) {
        ++counts[s].first;
      } else {
        ++counts[s].second;
      }
    }
  }
  std::vector<std::pair<int64_t, int32_t>> order;
  for (const auto& subject : dataset.subjects) {
    order.emplace_back(counts[subject.id].first + counts[subject.id].second,
                       subject.id);
  }
  std::sort(order.rbegin(), order.rend());
  fkd::eval::TextTable table({"subject", "true", "false", "% true"});
  for (size_t i = 0; i < std::min<size_t>(10, order.size()); ++i) {
    const int32_t id = order[i].second;
    const auto [true_count, false_count] = counts[id];
    const double total =
        std::max<double>(1.0, static_cast<double>(true_count + false_count));
    table.AddRow({dataset.subjects[id].name,
                  fkd::StrFormat("%lld", static_cast<long long>(true_count)),
                  fkd::StrFormat("%lld", static_cast<long long>(false_count)),
                  fkd::StrFormat("%.1f", 100.0 * true_count / total)});
  }
  std::printf("%s\n", table.Render().c_str());
}

void PanelEF(const Dataset& dataset) {
  std::printf(
      "-- Fig 1(e)/(f): persona creators "
      "(paper: Trump ~69%% false; Pence 52:48; Obama >76%% true; "
      "Clinton >73%% true) --\n");
  for (const auto& name : fkd::data::PersonaNames()) {
    const auto it = std::find_if(
        dataset.creators.begin(), dataset.creators.end(),
        [&](const fkd::data::Creator& c) { return c.name == name; });
    if (it == dataset.creators.end()) continue;
    std::vector<int64_t> histogram(fkd::data::kNumCredibilityClasses, 0);
    int64_t total = 0;
    int64_t true_count = 0;
    for (const auto& article : dataset.articles) {
      if (article.creator != it->id) continue;
      ++histogram[fkd::data::MultiClassOf(article.label)];
      ++total;
      true_count += fkd::data::IsPositive(article.label);
    }
    std::printf("  %-16s %4lld articles, %4.1f%% true  [", name.c_str(),
                static_cast<long long>(total),
                100.0 * true_count / std::max<int64_t>(1, total));
    for (size_t c = fkd::data::kNumCredibilityClasses; c-- > 0;) {
      std::printf("%lld%s", static_cast<long long>(histogram[c]),
                  c == 0 ? "" : " ");
    }
    std::printf("]  (True..PantsOnFire)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 14055, "corpus size (14055 = paper scale)");
  flags.AddInt("seed", 42, "random seed");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  fkd::data::GeneratorOptions options;
  if (static_cast<size_t>(flags.GetInt("articles")) != options.num_articles) {
    options = fkd::data::GeneratorOptions::Scaled(
        flags.GetInt("articles"), static_cast<uint64_t>(flags.GetInt("seed")));
  } else {
    options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  }
  auto dataset_result = fkd::data::GeneratePolitiFact(options);
  FKD_CHECK_OK(dataset_result.status());
  const Dataset& dataset = dataset_result.value();

  std::printf("Figure 1: PolitiFact dataset statistical analysis (%zu articles)\n\n",
              dataset.articles.size());
  PanelA(dataset);
  PanelBC(dataset);
  PanelD(dataset);
  PanelEF(dataset);
  return 0;
}
