// Microbenchmarks of the data and text pipelines: corpus generation,
// tokenization, chi-square word selection and bag-of-words featurization.

#include <benchmark/benchmark.h>

#include "data/generator.h"
#include "text/features.h"
#include "text/tokenizer.h"

namespace fkd {
namespace {

void BM_GeneratePolitiFact(benchmark::State& state) {
  const size_t articles = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto dataset =
        data::GeneratePolitiFact(data::GeneratorOptions::Scaled(articles, 31));
    benchmark::DoNotOptimize(dataset.value().articles.size());
  }
  state.SetItemsProcessed(state.iterations() * articles);
}
BENCHMARK(BM_GeneratePolitiFact)
    ->Arg(1000)
    ->Arg(14055)
    ->Unit(benchmark::kMillisecond);

struct CorpusFixture {
  std::vector<std::string> texts;
  std::vector<int32_t> labels;

  explicit CorpusFixture(size_t articles) {
    auto dataset = data::GeneratePolitiFact(
                       data::GeneratorOptions::Scaled(articles, 32))
                       .value();
    for (const auto& article : dataset.articles) {
      texts.push_back(article.text);
      labels.push_back(data::BiClassOf(article.label));
    }
  }
};

void BM_TokenizeCorpus(benchmark::State& state) {
  CorpusFixture corpus(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto docs = text::TokenizeDocuments(corpus.texts);
    benchmark::DoNotOptimize(docs.size());
  }
  state.SetItemsProcessed(state.iterations() * corpus.texts.size());
}
BENCHMARK(BM_TokenizeCorpus)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_ChiSquareSelection(benchmark::State& state) {
  CorpusFixture corpus(static_cast<size_t>(state.range(0)));
  const auto docs = text::TokenizeDocuments(corpus.texts);
  std::vector<int32_t> train_ids(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) train_ids[i] = static_cast<int32_t>(i);
  for (auto _ : state) {
    auto selected =
        text::SelectChiSquareWordSet(docs, train_ids, corpus.labels, 2, 150);
    benchmark::DoNotOptimize(selected.size());
  }
}
BENCHMARK(BM_ChiSquareSelection)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_BowFeaturize(benchmark::State& state) {
  CorpusFixture corpus(static_cast<size_t>(state.range(0)));
  const auto docs = text::TokenizeDocuments(corpus.texts);
  text::BowFeaturizer featurizer(text::BuildFrequencyVocabulary(docs, 150));
  for (auto _ : state) {
    Tensor features = featurizer.FeaturizeBatch(docs);
    benchmark::DoNotOptimize(features.data());
  }
  state.SetItemsProcessed(state.iterations() * docs.size());
}
BENCHMARK(BM_BowFeaturize)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_VocabularyEncodePadded(benchmark::State& state) {
  CorpusFixture corpus(2000);
  const auto docs = text::TokenizeDocuments(corpus.texts);
  const auto vocab = text::BuildFrequencyVocabulary(docs, 1000);
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& tokens : docs) {
      total += vocab.EncodePadded(tokens, 24).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_VocabularyEncodePadded);

}  // namespace
}  // namespace fkd

BENCHMARK_MAIN();
