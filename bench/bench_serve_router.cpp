// Router bench: cold (engine forward) vs cache-hit latency through the
// serving router, plus the cost of a live hot-swap. Trains a small
// detector once, exports + reloads a snapshot through the
// VersionedModelStore, then measures three paths end to end:
//
//   cold  — distinct articles, every request runs the micro-batched GDU
//           forward on an engine replica;
//   hit   — the same articles resubmitted, fulfilled from the sharded LRU
//           score cache without any forward pass;
//   swap  — Publish() of a freshly loaded version while idle, i.e. the
//           fleet build + pointer switch + old-generation drain.
//
// The committed BENCH_serve_router.json records the cache-hit speedup the
// score cache is expected to deliver (the PR gate is hit-path mean latency
// at least 5x below the cold forward pass).
//
//   ./bench_serve_router [--articles=120] [--requests=200] [--swaps=5]
//                        [--json=/path/BENCH_serve_router.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_hardware.h"
#include "common/flags.h"
#include "common/logging.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "serve/model_store.h"
#include "serve/router.h"
#include "serve/snapshot.h"

namespace {

using Clock = std::chrono::steady_clock;

struct LatencySummary {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

LatencySummary Summarize(std::vector<double> latencies) {
  LatencySummary out;
  if (latencies.empty()) return out;
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (double v : latencies) sum += v;
  out.mean_us = sum / static_cast<double>(latencies.size());
  out.p50_us = latencies[latencies.size() / 2];
  out.p99_us = latencies[(latencies.size() * 99) / 100];
  return out;
}

/// Submits each request and blocks on its future; returns per-request
/// end-to-end latencies in microseconds.
std::vector<double> DriveSequential(fkd::serve::Router* router,
                                    const std::vector<std::string>& texts,
                                    bool expect_cached) {
  std::vector<double> latencies;
  latencies.reserve(texts.size());
  for (const auto& text : texts) {
    fkd::serve::ArticleRequest request;
    request.text = text;
    const Clock::time_point start = Clock::now();
    auto submitted = router->Submit(std::move(request));
    FKD_CHECK_OK(submitted.status());
    auto result = submitted.value().get();
    FKD_CHECK_OK(result.status());
    latencies.push_back(std::chrono::duration<double, std::micro>(
                            Clock::now() - start)
                            .count());
    FKD_CHECK(result.value().from_cache == expect_cached)
        << "unexpected cache state for \"" << text.substr(0, 24) << "...\"";
  }
  return latencies;
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 120, "synthetic training corpus size");
  flags.AddInt("train-epochs", 6, "training epochs before export");
  flags.AddInt("requests", 200, "distinct articles driven cold then warm");
  flags.AddInt("swaps", 5, "hot swaps timed at the end");
  flags.AddString("json", "", "write the summary JSON here");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  auto dataset = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(
          static_cast<size_t>(flags.GetInt("articles")), 55));
  FKD_CHECK_OK(dataset.status());
  auto graph = dataset.value().BuildGraph();
  FKD_CHECK_OK(graph.status());

  fkd::Rng rng(77);
  auto splits = fkd::data::KFoldTriSplits(dataset.value().articles.size(),
                                          dataset.value().creators.size(),
                                          dataset.value().subjects.size(), 5,
                                          &rng);
  FKD_CHECK_OK(splits.status());

  fkd::core::FakeDetectorConfig config;
  config.epochs = static_cast<size_t>(flags.GetInt("train-epochs"));
  config.explicit_words = 60;
  config.latent_vocabulary = 200;
  config.hflu.max_sequence_length = 12;
  config.hflu.gru_hidden = 16;
  config.hflu.latent_dim = 12;
  config.hflu.embed_dim = 12;
  config.gdu_hidden = 24;
  config.verbose = false;

  fkd::eval::TrainContext context;
  context.dataset = &dataset.value();
  context.graph = &graph.value();
  context.train_articles = splits.value()[0].articles.train;
  context.train_creators = splits.value()[0].creators.train;
  context.train_subjects = splits.value()[0].subjects.train;
  context.granularity = fkd::eval::LabelGranularity::kBinary;
  context.seed = 7;

  fkd::core::FakeDetector detector(config);
  FKD_CHECK_OK(detector.Train(context));

  const std::string snapshot_dir =
      (std::filesystem::temp_directory_path() / "fkd_bench_router_snapshot")
          .string();
  FKD_CHECK_OK(fkd::serve::ExportSnapshot(detector, snapshot_dir));

  fkd::serve::VersionedModelStore store;
  auto initial = store.Load(snapshot_dir);
  FKD_CHECK_OK(initial.status());

  // Distinct request texts: article text + a unique suffix, so the cold
  // pass never accidentally hits and the warm pass always does.
  const size_t num_requests = static_cast<size_t>(flags.GetInt("requests"));
  std::vector<std::string> texts;
  texts.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    texts.push_back(
        dataset.value().articles[i % dataset.value().articles.size()].text +
        " #" + std::to_string(i));
  }

  fkd::serve::RouterOptions options;
  options.num_replicas = 2;
  options.engine.num_workers = 1;
  options.engine.max_batch_delay_us = 0;
  options.cache_capacity = 2 * num_requests;
  options.canary_permille = 0;
  fkd::serve::Router router(options);
  FKD_CHECK_OK(router.Start(std::move(initial).value()));

  const LatencySummary cold = Summarize(DriveSequential(&router, texts, false));
  const LatencySummary hit = Summarize(DriveSequential(&router, texts, true));
  const double speedup = hit.mean_us > 0.0 ? cold.mean_us / hit.mean_us : 0.0;

  // Hot swaps while idle: fleet build + switch + drain, per publish.
  const size_t num_swaps = static_cast<size_t>(flags.GetInt("swaps"));
  std::vector<double> swap_us;
  for (size_t s = 0; s < num_swaps; ++s) {
    auto model = store.Load(snapshot_dir);
    FKD_CHECK_OK(model.status());
    const Clock::time_point start = Clock::now();
    FKD_CHECK_OK(router.Publish(std::move(model).value()));
    swap_us.push_back(std::chrono::duration<double, std::micro>(
                          Clock::now() - start)
                          .count());
  }
  const LatencySummary swap = Summarize(swap_us);
  const fkd::serve::RouterStats stats = router.Stats();
  router.Stop();

  std::printf("requests per pass: %zu\n", num_requests);
  std::printf("%8s %12s %12s %12s\n", "path", "mean_us", "p50_us", "p99_us");
  std::printf("%8s %12.1f %12.1f %12.1f\n", "cold", cold.mean_us, cold.p50_us,
              cold.p99_us);
  std::printf("%8s %12.1f %12.1f %12.1f\n", "hit", hit.mean_us, hit.p50_us,
              hit.p99_us);
  std::printf("%8s %12.1f %12.1f %12.1f\n", "swap", swap.mean_us, swap.p50_us,
              swap.p99_us);
  std::printf("cache-hit speedup (cold mean / hit mean): %.1fx\n", speedup);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::ofstream json(json_path, std::ios::trunc);
    FKD_CHECK(json.good()) << "cannot open " << json_path;
    json << "{\n"
         << "  \"bench\": \"serve_router\",\n"
         << "  \"hardware_concurrency\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"fkd_num_threads\": \"" << fkd::bench::FkdNumThreadsEnv()
         << "\",\n"
         << "  \"requests_per_pass\": " << num_requests << ",\n"
         << "  \"replicas\": " << options.num_replicas << ",\n"
         << "  \"cold\": {\"mean_us\": " << cold.mean_us
         << ", \"p50_us\": " << cold.p50_us << ", \"p99_us\": " << cold.p99_us
         << "},\n"
         << "  \"cache_hit\": {\"mean_us\": " << hit.mean_us
         << ", \"p50_us\": " << hit.p50_us << ", \"p99_us\": " << hit.p99_us
         << "},\n"
         << "  \"cache_hit_speedup\": " << speedup << ",\n"
         << "  \"hot_swap\": {\"count\": " << num_swaps
         << ", \"mean_us\": " << swap.mean_us << ", \"p50_us\": " << swap.p50_us
         << ", \"p99_us\": " << swap.p99_us << "},\n"
         << "  \"cache\": {\"hits\": " << stats.cache.hits
         << ", \"misses\": " << stats.cache.misses
         << ", \"size\": " << stats.cache.size << "}\n"
         << "}\n";
  }
  return speedup >= 5.0 ? 0 : 2;
}
