#ifndef FKD_BENCH_BENCH_UTIL_H_
#define FKD_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <memory>
#include <string>

#include "baselines/deepwalk.h"
#include "baselines/label_propagation.h"
#include "baselines/line.h"
#include "baselines/rnn_classifier.h"
#include "baselines/svm.h"
#include "common/timer.h"
#include "core/fake_detector.h"
#include "eval/experiment.h"
#include "obs/metrics.h"

namespace fkd {
namespace bench {

/// RAII sweep timer for bench mains: wall time flows into the
/// `fkd.bench.sweep_us` histogram (labelled by bench name) when the timer
/// is destroyed, and is also readable mid-flight for progress output.
class SweepTimer {
 public:
  explicit SweepTimer(const std::string& bench)
      : timer_(obs::MetricsRegistry::Default().GetHistogram(
            "fkd.bench.sweep_us", {{"bench", bench}})) {}

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  ScopedTimer<obs::Histogram> timer_;
};

/// Scale profile of a figure bench. Default runs finish in minutes on a
/// laptop; `FKD_BENCH_SCALE=full` (or --full) reproduces the paper's
/// protocol (14,055 articles, theta 0.1..1.0, 10-fold CV) and takes hours.
struct BenchScale {
  size_t articles = 400;
  std::vector<double> sample_ratios = {0.1, 0.25, 0.5, 0.75, 1.0};
  size_t k_folds = 5;
  size_t folds_to_run = 2;
  size_t detector_epochs = 80;
  bool full = false;

  static BenchScale FromEnvironment() {
    BenchScale scale;
    const char* env = std::getenv("FKD_BENCH_SCALE");
    if (env != nullptr && std::string(env) == "full") scale = Full();
    return scale;
  }

  static BenchScale Full() {
    BenchScale scale;
    scale.articles = 14055;
    scale.sample_ratios = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
    scale.k_folds = 10;
    scale.folds_to_run = 10;
    scale.detector_epochs = 60;
    scale.full = true;
    return scale;
  }
};

/// Bench-scale FakeDetector configuration: the library defaults (tuned on
/// the synthetic corpus), with only the epoch count taken from the scale.
inline core::FakeDetectorConfig DetectorConfig(const BenchScale& scale) {
  core::FakeDetectorConfig config;
  config.epochs = scale.detector_epochs;
  return config;
}

/// Registers the paper's six methods (FakeDetector + five baselines) in
/// figure-legend order.
inline void RegisterAllMethods(eval::ExperimentRunner* runner,
                               const BenchScale& scale) {
  runner->RegisterMethod([scale] {
    return std::make_unique<core::FakeDetector>(DetectorConfig(scale));
  });
  runner->RegisterMethod(
      [] { return std::make_unique<baselines::LabelPropagation>(); });
  runner->RegisterMethod([scale] {
    baselines::DeepWalkClassifier::Options options;
    if (!scale.full) {
      options.walks.walks_per_node = 6;
      options.walks.walk_length = 20;
      options.skipgram.dim = 32;
      options.skipgram.epochs = 2;
    }
    return std::make_unique<baselines::DeepWalkClassifier>(options);
  });
  runner->RegisterMethod([scale] {
    baselines::LineClassifier::Options options;
    if (!scale.full) {
      options.line.dim = 32;
      options.line.samples_per_edge = 15;
    }
    return std::make_unique<baselines::LineClassifier>(options);
  });
  runner->RegisterMethod(
      [] { return std::make_unique<baselines::SvmClassifier>(); });
  runner->RegisterMethod([scale] {
    baselines::RnnClassifier::Options options;
    if (!scale.full) {
      options.epochs = 30;
      options.vocabulary = 400;
      options.max_sequence_length = 16;
      options.hidden_dim = 24;
      options.embed_dim = 16;
    }
    return std::make_unique<baselines::RnnClassifier>(options);
  });
}

}  // namespace bench
}  // namespace fkd

#endif  // FKD_BENCH_BENCH_UTIL_H_
