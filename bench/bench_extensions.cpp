// Extension study beyond the paper's comparison set:
//   (1) latent-encoder cell family in the HFLU (basic RNN vs GRU vs LSTM),
//   (2) explicit-feature pipeline in the SVM baseline (counts vs TF-IDF,
//       chi-square vs mutual-information selection),
//   (3) walk bias: DeepWalk vs node2vec (p = 0.5, q = 2),
// plus a McNemar significance check of FakeDetector vs the SVM baseline on
// one held-out fold.

#include <cstdio>

#include "baselines/deepwalk.h"
#include "baselines/gcn.h"
#include "baselines/node2vec.h"
#include "baselines/svm.h"
#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/report.h"
#include "eval/significance.h"

namespace {

using fkd::eval::SweepResult;

void PrintCells(const std::vector<std::string>& names,
                const std::vector<SweepResult>& results) {
  fkd::eval::TextTable table(
      {"variant", "article acc", "article f1", "creator acc", "subject acc"});
  for (size_t i = 0; i < names.size(); ++i) {
    const auto& cell = results[i];
    table.AddRow({names[i], fkd::StrFormat("%.3f", cell.articles.accuracy),
                  fkd::StrFormat("%.3f", cell.articles.f1),
                  fkd::StrFormat("%.3f", cell.creators.accuracy),
                  fkd::StrFormat("%.3f", cell.subjects.accuracy)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 400, "corpus size");
  flags.AddInt("folds", 2, "CV folds to run (of 5)");
  flags.AddDouble("theta", 0.8, "training sample ratio");
  flags.AddInt("seed", 7, "random seed");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  auto dataset_result = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(
          flags.GetInt("articles"), static_cast<uint64_t>(flags.GetInt("seed"))));
  FKD_CHECK_OK(dataset_result.status());
  const fkd::data::Dataset& dataset = dataset_result.value();
  std::printf("Extension studies on %s (theta=%.2f)\n\n",
              fkd::data::DescribeDataset(dataset).c_str(),
              flags.GetDouble("theta"));

  fkd::eval::ExperimentOptions options;
  options.k_folds = 5;
  options.folds_to_run = static_cast<size_t>(flags.GetInt("folds"));
  options.sample_ratios = {flags.GetDouble("theta")};
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  fkd::WallTimer timer;

  // ---- (1) HFLU latent-encoder cell family --------------------------------
  {
    fkd::eval::ExperimentRunner runner(dataset, options);
    std::vector<std::string> names;
    for (const auto kind :
         {fkd::nn::RnnCellKind::kBasic, fkd::nn::RnnCellKind::kGru,
          fkd::nn::RnnCellKind::kLstm}) {
      names.push_back(std::string("FakeDetector hflu=") +
                      fkd::nn::RnnCellKindName(kind));
      runner.RegisterMethod([kind] {
        fkd::core::FakeDetectorConfig config;
        config.epochs = 60;
        config.hflu.cell = kind;
        return std::make_unique<fkd::core::FakeDetector>(config);
      });
    }
    auto results = runner.Run();
    FKD_CHECK_OK(results.status());
    std::printf("== (1) HFLU latent encoder cell (paper: GRU) ==\n");
    PrintCells(names, results.value());
  }

  // ---- (2) SVM feature pipeline --------------------------------------------
  {
    fkd::eval::ExperimentRunner runner(dataset, options);
    struct Pipe {
      std::string name;
      fkd::baselines::FeatureWeighting weighting;
      fkd::baselines::FeatureSelector selector;
    };
    const std::vector<Pipe> pipes = {
        {"svm counts+chi2 (paper)", fkd::baselines::FeatureWeighting::kCounts,
         fkd::baselines::FeatureSelector::kChiSquare},
        {"svm tfidf+chi2", fkd::baselines::FeatureWeighting::kTfIdf,
         fkd::baselines::FeatureSelector::kChiSquare},
        {"svm counts+mi", fkd::baselines::FeatureWeighting::kCounts,
         fkd::baselines::FeatureSelector::kMutualInformation},
        {"svm tfidf+mi", fkd::baselines::FeatureWeighting::kTfIdf,
         fkd::baselines::FeatureSelector::kMutualInformation},
    };
    std::vector<std::string> names;
    for (const auto& pipe : pipes) {
      names.push_back(pipe.name);
      runner.RegisterMethod([pipe] {
        fkd::baselines::SvmClassifier::Options svm_options;
        svm_options.weighting = pipe.weighting;
        svm_options.selector = pipe.selector;
        return std::make_unique<fkd::baselines::SvmClassifier>(svm_options);
      });
    }
    auto results = runner.Run();
    FKD_CHECK_OK(results.status());
    std::printf("== (2) explicit-feature pipeline (SVM baseline) ==\n");
    PrintCells(names, results.value());
  }

  // ---- (3) walk bias: DeepWalk vs node2vec ----------------------------------
  {
    fkd::eval::ExperimentRunner runner(dataset, options);
    runner.RegisterMethod(
        [] { return std::make_unique<fkd::baselines::DeepWalkClassifier>(); });
    for (const auto [p, q] : {std::pair<double, double>{0.5, 2.0},
                              std::pair<double, double>{2.0, 0.5}}) {
      runner.RegisterMethod([p = p, q = q] {
        fkd::baselines::Node2VecClassifier::Options n2v;
        n2v.walks.return_p = p;
        n2v.walks.inout_q = q;
        return std::make_unique<fkd::baselines::Node2VecClassifier>(n2v);
      });
    }
    auto results = runner.Run();
    FKD_CHECK_OK(results.status());
    std::printf("== (3) walk bias ==\n");
    PrintCells({"deepwalk (p=q=1)", "node2vec p=.5 q=2 (local)",
                "node2vec p=2 q=.5 (exploratory)"},
               results.value());
  }

  // ---- (3b) GNN-era comparator: GCN vs FakeDetector --------------------------
  {
    fkd::eval::ExperimentRunner runner(dataset, options);
    runner.RegisterMethod(
        [] { return std::make_unique<fkd::core::FakeDetector>(); });
    runner.RegisterMethod(
        [] { return std::make_unique<fkd::baselines::GcnClassifier>(); });
    auto results = runner.Run();
    FKD_CHECK_OK(results.status());
    std::printf("== (3b) GNN-era comparator ==\n");
    PrintCells({"FakeDetector", "gcn (2-layer, shared head)"},
               results.value());
  }

  // ---- (4) significance: FakeDetector vs svm on one fold --------------------
  {
    auto graph = dataset.BuildGraph().value();
    fkd::Rng rng(options.seed);
    auto splits = fkd::data::KFoldTriSplits(
                      dataset.articles.size(), dataset.creators.size(),
                      dataset.subjects.size(), 5, &rng)
                      .value();
    fkd::eval::TrainContext context;
    context.dataset = &dataset;
    context.graph = &graph;
    context.train_articles = splits[0].articles.train;
    context.train_creators = splits[0].creators.train;
    context.train_subjects = splits[0].subjects.train;
    context.seed = options.seed;

    fkd::core::FakeDetector detector;
    FKD_CHECK_OK(detector.Train(context));
    fkd::baselines::SvmClassifier svm;
    FKD_CHECK_OK(svm.Train(context));
    const auto fd = detector.Predict().value();
    const auto sv = svm.Predict().value();

    std::vector<int32_t> actual;
    std::vector<int32_t> fd_test;
    std::vector<int32_t> svm_test;
    for (int32_t id : splits[0].articles.test) {
      actual.push_back(fkd::data::BiClassOf(dataset.articles[id].label));
      fd_test.push_back(fd.articles[id]);
      svm_test.push_back(sv.articles[id]);
    }
    const auto mcnemar =
        fkd::eval::McNemarTest(actual, fd_test, svm_test).value();
    std::printf(
        "== (4) McNemar, FakeDetector vs svm, article test fold ==\n"
        "only FakeDetector correct: %lld, only svm correct: %lld, "
        "chi2 = %.3f, p = %.3f\n\n",
        static_cast<long long>(mcnemar.only_a_correct),
        static_cast<long long>(mcnemar.only_b_correct), mcnemar.statistic,
        mcnemar.p_value);
  }

  std::printf("finished in %.1fs\n", timer.ElapsedSeconds());
  return 0;
}
