// Ablation study of the FakeDetector design choices called out in
// DESIGN.md: GDU gate variants (§4.2 — forget gate, adjust gate, plain
// fusion), HFLU feature families (§4.1 — explicit-only, latent-only), and
// the diffusion depth K. Not a paper figure; it quantifies why the
// published architecture looks the way it does.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/generator.h"
#include "eval/report.h"

namespace {

struct Variant {
  std::string name;
  fkd::core::FakeDetectorConfig config;
};

std::vector<Variant> MakeVariants(const fkd::bench::BenchScale& scale) {
  const fkd::core::FakeDetectorConfig base = fkd::bench::DetectorConfig(scale);
  std::vector<Variant> variants;
  variants.push_back({"full (paper)", base});

  Variant no_forget{"no forget gate", base};
  no_forget.config.gdu.disable_forget_gate = true;
  variants.push_back(no_forget);

  Variant no_adjust{"no adjust gate", base};
  no_adjust.config.gdu.disable_adjust_gate = true;
  variants.push_back(no_adjust);

  Variant plain{"plain fusion unit", base};
  plain.config.gdu.plain_unit = true;
  variants.push_back(plain);

  Variant explicit_only{"explicit features only", base};
  explicit_only.config.hflu.use_latent = false;
  variants.push_back(explicit_only);

  Variant latent_only{"latent features only", base};
  latent_only.config.hflu.use_explicit = false;
  variants.push_back(latent_only);

  Variant k1{"diffusion K=1", base};
  k1.config.diffusion_steps = 1;
  variants.push_back(k1);

  Variant k3{"diffusion K=3", base};
  k3.config.diffusion_steps = 3;
  variants.push_back(k3);

  return variants;
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("articles", 400, "corpus size");
  flags.AddInt("folds", 2, "CV folds to run (of 5)");
  flags.AddDouble("theta", 0.8, "training sample ratio");
  flags.AddInt("seed", 7, "random seed");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  fkd::bench::BenchScale scale = fkd::bench::BenchScale::FromEnvironment();
  scale.articles = flags.GetInt("articles");

  auto dataset_result = fkd::data::GeneratePolitiFact(
      fkd::data::GeneratorOptions::Scaled(scale.articles,
                                          static_cast<uint64_t>(flags.GetInt("seed"))));
  FKD_CHECK_OK(dataset_result.status());
  const fkd::data::Dataset& dataset = dataset_result.value();
  std::printf("FakeDetector ablations on %s (theta=%.2f, %lld folds)\n\n",
              fkd::data::DescribeDataset(dataset).c_str(),
              flags.GetDouble("theta"),
              static_cast<long long>(flags.GetInt("folds")));

  fkd::eval::ExperimentOptions options;
  options.k_folds = 5;
  options.folds_to_run = static_cast<size_t>(flags.GetInt("folds"));
  options.sample_ratios = {flags.GetDouble("theta")};
  options.granularity = fkd::eval::LabelGranularity::kBinary;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  fkd::eval::ExperimentRunner runner(dataset, options);
  const auto variants = MakeVariants(scale);
  for (const auto& variant : variants) {
    runner.RegisterMethod([config = variant.config] {
      return std::make_unique<fkd::core::FakeDetector>(config);
    });
  }

  fkd::WallTimer timer;
  auto results = runner.Run();
  FKD_CHECK_OK(results.status());

  fkd::eval::TextTable table({"variant", "article acc", "article f1",
                              "creator acc", "subject acc"});
  for (size_t i = 0; i < variants.size(); ++i) {
    const auto& cell = results.value()[i];
    table.AddRow({variants[i].name,
                  fkd::StrFormat("%.3f", cell.articles.accuracy),
                  fkd::StrFormat("%.3f", cell.articles.f1),
                  fkd::StrFormat("%.3f", cell.creators.accuracy),
                  fkd::StrFormat("%.3f", cell.subjects.accuracy)});
  }
  std::printf("%s\nfinished in %.1fs\n", table.Render().c_str(),
              timer.ElapsedSeconds());
  return 0;
}
