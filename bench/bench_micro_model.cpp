// Microbenchmarks of the model-layer building blocks: GRU step, GDU step,
// HFLU forward, and one full FakeDetector training epoch.

#include <benchmark/benchmark.h>

#include "core/fake_detector.h"
#include "core/gdu.h"
#include "core/hflu.h"
#include "data/generator.h"
#include "data/split.h"
#include "nn/layers.h"

namespace fkd {
namespace {

namespace ag = ::fkd::autograd;

void BM_GruCellStep(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(1);
  nn::GruCell cell(24, 32, &rng);
  ag::Variable x(Tensor::Randn(batch, 24, &rng), false);
  ag::Variable h = cell.InitialState(batch);
  for (auto _ : state) {
    ag::Variable next = cell.Step(x, h);
    benchmark::DoNotOptimize(next.value().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_GruCellStep)->Arg(128)->Arg(1024)->Arg(4096);

void BM_GduCellStep(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Rng rng(2);
  core::GduCell cell(96, 48, &rng);
  ag::Variable x(Tensor::Randn(batch, 96, &rng), false);
  ag::Variable z(Tensor::Randn(batch, 48, &rng, 0.0f, 0.3f), false);
  ag::Variable t(Tensor::Randn(batch, 48, &rng, 0.0f, 0.3f), false);
  for (auto _ : state) {
    ag::Variable h = cell.Step(x, z, t);
    benchmark::DoNotOptimize(h.value().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_GduCellStep)->Arg(128)->Arg(1024)->Arg(4096);

void BM_GduVsPlainUnit(benchmark::State& state) {
  const bool plain = state.range(0) == 1;
  Rng rng(3);
  core::GduOptions options;
  options.plain_unit = plain;
  core::GduCell cell(96, 48, &rng, options);
  ag::Variable x(Tensor::Randn(1024, 96, &rng), false);
  ag::Variable z(Tensor::Randn(1024, 48, &rng, 0.0f, 0.3f), false);
  ag::Variable t(Tensor::Randn(1024, 48, &rng, 0.0f, 0.3f), false);
  for (auto _ : state) {
    ag::Variable h = cell.Step(x, z, t);
    benchmark::DoNotOptimize(h.value().data());
  }
  state.SetLabel(plain ? "plain" : "gated");
}
BENCHMARK(BM_GduVsPlainUnit)->Arg(0)->Arg(1);

struct HfluFixture {
  std::unique_ptr<core::Hflu> hflu;
  core::HfluInput input;

  explicit HfluFixture(size_t documents) {
    auto dataset = data::GeneratePolitiFact(
                       data::GeneratorOptions::Scaled(documents, 11))
                       .value();
    std::vector<std::string> texts;
    for (const auto& article : dataset.articles) texts.push_back(article.text);
    const auto docs = text::TokenizeDocuments(texts);
    Rng rng(4);
    core::HfluConfig config;
    config.max_sequence_length = 16;
    hflu = std::make_unique<core::Hflu>(
        config, text::BuildFrequencyVocabulary(docs, 100),
        text::BuildFrequencyVocabulary(docs, 500), &rng);
    input = hflu->PrepareBatch(docs);
  }
};

void BM_HfluForward(benchmark::State& state) {
  HfluFixture fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    ag::Variable features = fixture.hflu->Forward(fixture.input);
    benchmark::DoNotOptimize(features.value().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HfluForward)->Arg(200)->Arg(1000);

void BM_FakeDetectorTrainEpoch(benchmark::State& state) {
  const size_t articles = static_cast<size_t>(state.range(0));
  auto dataset =
      data::GeneratePolitiFact(data::GeneratorOptions::Scaled(articles, 12))
          .value();
  auto graph = dataset.BuildGraph().value();
  Rng rng(5);
  auto splits = data::KFoldTriSplits(dataset.articles.size(),
                                     dataset.creators.size(),
                                     dataset.subjects.size(), 5, &rng)
                    .value();
  eval::TrainContext context;
  context.dataset = &dataset;
  context.graph = &graph;
  context.train_articles = splits[0].articles.train;
  context.train_creators = splits[0].creators.train;
  context.train_subjects = splits[0].subjects.train;
  context.seed = 5;

  // One epoch per iteration: the config trains a fresh single-epoch model,
  // so the measured unit is "full forward + backward + step" at this size.
  for (auto _ : state) {
    core::FakeDetectorConfig config;
    config.epochs = 1;
    config.explicit_words = 80;
    config.latent_vocabulary = 400;
    config.hflu.max_sequence_length = 16;
    config.hflu.gru_hidden = 24;
    config.hflu.latent_dim = 16;
    config.hflu.embed_dim = 16;
    config.gdu_hidden = 32;
    core::FakeDetector detector(config);
    benchmark::DoNotOptimize(detector.Train(context).ok());
  }
}
BENCHMARK(BM_FakeDetectorTrainEpoch)->Arg(200)->Arg(600)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fkd

BENCHMARK_MAIN();
