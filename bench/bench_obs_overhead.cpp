// Observability-overhead microbench: the cost of this repo's always-on
// request instrumentation, measured against the identical workload with it
// stripped. The serving gate is < 2% overhead in the PR 5 configuration
// (chrome tracing OFF, flight recorder ON) — observability that taxes the
// hot path more than that does not ship enabled by default.
//
//   ./bench_obs_overhead [--reps=9] [--iters=20000] [--max-overhead-pct=2]
//                        [--jsonl=/path/rows.jsonl]
//
// Two quantities are timed separately, each best-of-reps:
//
//   work_ns   — one baseline request's compute (a fixed kernel at the
//               scale of a small scoring forward), instrumentation off;
//   instr_ns  — one pass through the engine's per-request instrument
//               path alone: flight-recorder events, HDR histogram
//               observes, counter increments.
//
// The gate is instr_ns / work_ns < 2%. Decomposing beats timing one
// combined loop with and without instrumentation: there the signal is the
// tiny difference of two large wall-clock numbers, and on a busy 1-core
// host scheduler jitter between the two runs routinely exceeds it. Here
// jitter perturbs each measurement by a few percent *of itself*, so the
// ratio moves by a few percent of the ~1% overhead — noise the gate
// cannot feel. Reps are interleaved and the minimum is kept (preemption
// only ever lengthens a rep). Exit code 1 when the gate fails.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_hardware.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "tensor/ops.h"

namespace {

using fkd::Rng;
using fkd::Tensor;
using fkd::WallTimer;
using fkd::obs::FlightEventType;
using fkd::obs::FlightRecorder;

/// The per-request compute stand-in: a 128x128 GEMM (~tens of
/// microseconds), a deliberately *low* floor for a single-article scoring
/// forward (the real HFLU+GDU forward measures in the hundreds of
/// microseconds) — so the overhead ratio this bench gates on is an
/// overestimate of production impact. Reused buffers, seeded inputs.
struct WorkUnit {
  Tensor a, b, c;
  WorkUnit() : a(128, 128), b(128, 128), c(128, 128) {
    Rng rng(7);
    a = Tensor::Randn(128, 128, &rng);
    b = Tensor::Randn(128, 128, &rng);
  }
  void Run() { c = fkd::MatMul(a, b); }
};

/// Micro-batch size the per-batch instruments amortize over. The engine
/// records kBatchStart/kBatchEnd and observes compute_us/batch_size once
/// per *batch*; under load batches run full, so a per-request replay must
/// spread that cost or it overstates the engine's real overhead.
constexpr uint64_t kModelBatch = 8;

/// The engine's per-request instrument path, replayed faithfully: the
/// events and observations InferenceEngine + Router record for one ok
/// request, with per-batch work amortized at kModelBatch.
void RecordRequestPath(FlightRecorder* recorder, fkd::obs::Counter* requests,
                       fkd::obs::Histogram* latency,
                       fkd::obs::Histogram* queue, fkd::obs::Histogram* batch,
                       fkd::obs::Histogram* compute, uint64_t id) {
  recorder->Record(FlightEventType::kRequestSubmit, id, 0);
  recorder->Record(FlightEventType::kEngineEnqueue, id, 1);
  if (id % kModelBatch == 0) {
    recorder->Record(FlightEventType::kBatchStart, kModelBatch, 1);
    compute->Observe(800.0 + static_cast<double>(id % 100));
    recorder->Record(FlightEventType::kBatchEnd, kModelBatch, 800);
  }
  queue->Observe(120.0 + static_cast<double>(id % 50));
  batch->Observe(40.0 + static_cast<double>(id % 10));
  latency->Observe(960.0 + static_cast<double>(id % 160));
  requests->Increment();
  recorder->Record(FlightEventType::kRequestComplete, id, 960);
}

/// Best-of-reps. Timing noise on a shared host is strictly additive
/// (preemption and interrupts only ever lengthen a rep), so the minimum is
/// the robust estimator of each config's true cost — the median still
/// admits reps inflated by a scheduler burst, which on a 1-core box can
/// exceed the instrumentation delta being measured.
double MinSeconds(const std::vector<double>& reps) {
  return *std::min_element(reps.begin(), reps.end());
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("reps", 9, "interleaved repetitions per config (best-of)");
  flags.AddInt("iters", 20000, "simulated requests per repetition");
  flags.AddInt("max-overhead-pct", 2, "gate: max instrumented overhead");
  flags.AddString("jsonl", "", "append one JSON result line to this file");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const size_t reps = static_cast<size_t>(flags.GetInt("reps"));
  const size_t iters = static_cast<size_t>(flags.GetInt("iters"));
  const double max_overhead =
      static_cast<double>(flags.GetInt("max-overhead-pct")) / 100.0;

  WorkUnit work;
  FlightRecorder& recorder = FlightRecorder::Get();
  fkd::obs::MetricsRegistry registry;  // private: no exporter interference
  auto* requests =
      registry.GetCounter("fkd.serve.requests", {{"result", "ok"}});
  auto* latency = registry.GetHistogram("fkd.serve.latency_us");
  auto* queue = registry.GetHistogram("fkd.serve.queue_us");
  auto* batch = registry.GetHistogram("fkd.serve.batch_form_us");
  auto* compute = registry.GetHistogram("fkd.serve.compute_us");

  // Warm-up: allocate the thread ring, touch every bucket path once.
  recorder.SetEnabled(true);
  for (uint64_t i = 0; i < 1000; ++i) {
    work.Run();
    RecordRequestPath(&recorder, requests, latency, queue, batch, compute, i);
  }

  // The instrument path is ~100x cheaper per call than the work unit, so
  // it gets proportionally more iterations for comparable rep lengths.
  const size_t instr_iters = iters * 50;
  std::vector<double> work_reps, instr_reps;
  uint64_t id = 0;
  for (size_t rep = 0; rep < reps; ++rep) {
    // Baseline request cost: compute only, recorder off.
    recorder.SetEnabled(false);
    {
      WallTimer timer;
      for (size_t i = 0; i < iters; ++i) work.Run();
      work_reps.push_back(timer.ElapsedSeconds());
    }
    // The full PR 5 + observability per-request instrument path, alone.
    recorder.SetEnabled(true);
    {
      WallTimer timer;
      for (size_t i = 0; i < instr_iters; ++i) {
        RecordRequestPath(&recorder, requests, latency, queue, batch, compute,
                          ++id);
      }
      instr_reps.push_back(timer.ElapsedSeconds());
    }
  }

  const double work_ns =
      MinSeconds(work_reps) / static_cast<double>(iters) * 1e9;
  const double instr_ns =
      MinSeconds(instr_reps) / static_cast<double>(instr_iters) * 1e9;
  const double overhead = instr_ns / work_ns;

  std::printf("%-22s %14s\n", "quantity", "ns/request");
  std::printf("%-22s %14.1f\n", "baseline compute", work_ns);
  std::printf("%-22s %14.1f\n", "instrumentation", instr_ns);
  std::printf("overhead: %.3f%%, gate < %.0f%%\n", overhead * 100.0,
              max_overhead * 100.0);

  const std::string jsonl_path = flags.GetString("jsonl");
  if (!jsonl_path.empty()) {
    std::ofstream jsonl(jsonl_path, std::ios::app);
    FKD_CHECK(jsonl.good()) << "cannot open " << jsonl_path;
    jsonl << "{\"bench\":\"obs_overhead\",\"iters\":" << iters
          << ",\"reps\":" << reps << ",\"work_ns_per_request\":" << work_ns
          << ",\"instr_ns_per_request\":" << instr_ns
          << ",\"overhead_pct\":" << overhead * 100.0
          << ",\"events_recorded\":" << recorder.NumRecorded() << ","
          << fkd::bench::HardwareContextJsonFields() << "}\n";
  }

  if (overhead >= max_overhead) {
    std::fprintf(stderr,
                 "bench_obs_overhead: GATE FAILED: %.3f%% >= %.0f%% — the "
                 "always-on instrumentation is too expensive for the "
                 "serving hot path\n",
                 overhead * 100.0, max_overhead * 100.0);
    return 1;
  }
  std::printf("overhead gate: OK\n");
  return 0;
}
