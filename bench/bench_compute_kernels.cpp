// Compute-kernel sweep: MatMul / sparse SpMM / row softmax across sizes and
// FKD_NUM_THREADS-style pool widths, against the pre-pool serial GEMM as the
// fixed baseline. This is the perf trajectory anchor for the parallel
// compute core: rerun it after kernel changes and diff the JSON artifact.
//
//   ./bench_compute_kernels [--reps=5] [--jsonl=/path/rows.jsonl]
//                           [--out=BENCH_compute.json]
//
// --jsonl appends one JSON line per (kernel, size, threads) config; --out
// writes the aggregated summary (including speedup_vs_baseline_at_4, the
// number the acceptance gate reads). Inputs are seeded, so every run times
// identical arithmetic.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_hardware.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace {

using fkd::Rng;
using fkd::Tensor;
using fkd::ThreadPool;
using fkd::WallTimer;

// The seed repo's single-threaded ikj GEMM, kept verbatim as the fixed
// serial baseline all speedups are measured against.
void BaselineGemm(const Tensor& a, const Tensor& b, Tensor* c) {
  c->SetZero();
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  float* cd = c->data();
  const float* ad = a.data();
  const float* bd = b.data();
  for (size_t i = 0; i < m; ++i) {
    float* c_row = cd + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float a_ip = ad[i * k + p];
      if (a_ip == 0.0f) continue;
      const float* b_row = bd + p * n;
      for (size_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
    }
  }
}

template <typename Fn>
double TimeBest(size_t reps, Fn&& fn) {
  double best = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

struct ConfigRow {
  std::string kernel;
  std::string size;
  size_t threads = 0;  ///< 0 = the serial baseline row.
  double seconds = 0.0;
  double gflops = 0.0;
  double speedup_vs_baseline = 0.0;
};

void PrintRow(const ConfigRow& row) {
  std::printf("%-10s %-16s %8s %12.6f %10.2f %10.2fx\n", row.kernel.c_str(),
              row.size.c_str(),
              row.threads == 0 ? "serial" : std::to_string(row.threads).c_str(),
              row.seconds, row.gflops, row.speedup_vs_baseline);
}

void AppendJsonl(std::ofstream* jsonl, const ConfigRow& row) {
  if (jsonl == nullptr || !jsonl->is_open()) return;
  *jsonl << "{\"bench\":\"compute_kernels\",\"kernel\":\"" << row.kernel
         << "\",\"size\":\"" << row.size << "\",\"threads\":" << row.threads
         << ",\"seconds\":" << row.seconds << ",\"gflops\":" << row.gflops
         << ",\"speedup_vs_serial_baseline\":" << row.speedup_vs_baseline
         << "," << fkd::bench::HardwareContextJsonFields() << "}\n";
}

/// One kernel x size sweep entry of the --out summary.
struct SweepSummary {
  std::string kernel;
  std::string size;
  double flops = 0.0;
  double baseline_s = 0.0;
  std::vector<std::pair<size_t, double>> by_threads;

  double SpeedupAt(size_t threads) const {
    for (const auto& [t, s] : by_threads) {
      if (t == threads && s > 0.0) return baseline_s / s;
    }
    return 0.0;
  }
};

void WriteSummaryJson(const std::string& path,
                      const std::vector<SweepSummary>& sweeps, size_t reps) {
  std::ofstream out(path, std::ios::trunc);
  FKD_CHECK(out.good()) << "cannot open " << path;
  out << "{\n  \"bench\": \"compute_kernels\",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n  \"reps\": " << reps << ",\n  \"sweeps\": [\n";
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const SweepSummary& s = sweeps[i];
    out << "    {\"kernel\": \"" << s.kernel << "\", \"size\": \"" << s.size
        << "\", \"serial_baseline_s\": " << s.baseline_s
        << ", \"by_threads\": {";
    for (size_t t = 0; t < s.by_threads.size(); ++t) {
      out << (t > 0 ? ", " : "") << "\"" << s.by_threads[t].first
          << "\": " << s.by_threads[t].second;
    }
    out << "}, \"speedup_vs_baseline_at_4\": " << s.SpeedupAt(4) << "}"
        << (i + 1 < sweeps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("reps", 5, "timed repetitions per config (best-of)");
  flags.AddString("jsonl", "", "append one JSON line per config to this file");
  flags.AddString("out", "", "write the aggregated summary JSON to this file");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const size_t reps = static_cast<size_t>(flags.GetInt("reps"));
  std::ofstream jsonl;
  if (!flags.GetString("jsonl").empty()) {
    jsonl.open(flags.GetString("jsonl"), std::ios::app);
    FKD_CHECK(jsonl.good()) << "cannot open " << flags.GetString("jsonl");
  }

  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::vector<SweepSummary> sweeps;

  std::printf("%-10s %-16s %8s %12s %10s %10s\n", "kernel", "size", "threads",
              "best_s", "gflops", "speedup");

  // ---- dense MatMul ---------------------------------------------------------
  for (size_t size : {64u, 128u, 256u, 512u}) {
    Rng rng(17);
    const Tensor a = Tensor::Randn(size, size, &rng);
    const Tensor b = Tensor::Randn(size, size, &rng);
    Tensor baseline_out(size, size);
    SweepSummary sweep;
    sweep.kernel = "matmul";
    sweep.size = std::to_string(size) + "x" + std::to_string(size) + "x" +
                 std::to_string(size);
    sweep.flops = 2.0 * size * size * size;
    sweep.baseline_s =
        TimeBest(reps, [&] { BaselineGemm(a, b, &baseline_out); });
    ConfigRow base{"matmul", sweep.size, 0, sweep.baseline_s,
                   sweep.flops / sweep.baseline_s * 1e-9, 1.0};
    PrintRow(base);
    AppendJsonl(&jsonl, base);
    for (size_t threads : thread_counts) {
      ThreadPool::ResetGlobal(threads);
      Tensor out;
      const double seconds = TimeBest(reps, [&] { out = fkd::MatMul(a, b); });
      FKD_CHECK(out.AllClose(baseline_out, 1e-2f))
          << "matmul kernel diverged from the serial baseline";
      ConfigRow row{"matmul", sweep.size, threads, seconds,
                    sweep.flops / seconds * 1e-9, sweep.baseline_s / seconds};
      sweep.by_threads.emplace_back(threads, seconds);
      PrintRow(row);
      AppendJsonl(&jsonl, row);
    }
    sweeps.push_back(std::move(sweep));
  }

  // ---- sparse-dense SpMM ----------------------------------------------------
  {
    const size_t rows = 4096, cols = 4096, dense_cols = 64;
    Rng rng(23);
    std::vector<fkd::CsrMatrix::Triplet> triplets;
    const size_t nnz = rows * cols / 200;  // ~0.5% density
    triplets.reserve(nnz);
    for (size_t i = 0; i < nnz; ++i) {
      triplets.push_back(
          {static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(rows))),
           static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(cols))),
           static_cast<float>(rng.Normal())});
    }
    const fkd::CsrMatrix sparse =
        fkd::CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
    const Tensor dense = Tensor::Randn(cols, dense_cols, &rng);
    SweepSummary sweep;
    sweep.kernel = "sparse";
    sweep.size = "4096x4096@0.5%*64";
    sweep.flops = 2.0 * sparse.nnz() * dense_cols;
    ThreadPool::ResetGlobal(1);
    sweep.baseline_s = TimeBest(reps, [&] { (void)sparse.MatMul(dense); });
    ConfigRow base{"sparse", sweep.size, 0, sweep.baseline_s,
                   sweep.flops / sweep.baseline_s * 1e-9, 1.0};
    PrintRow(base);
    AppendJsonl(&jsonl, base);
    for (size_t threads : thread_counts) {
      ThreadPool::ResetGlobal(threads);
      const double seconds = TimeBest(reps, [&] { (void)sparse.MatMul(dense); });
      ConfigRow row{"sparse", sweep.size, threads, seconds,
                    sweep.flops / seconds * 1e-9, sweep.baseline_s / seconds};
      sweep.by_threads.emplace_back(threads, seconds);
      PrintRow(row);
      AppendJsonl(&jsonl, row);
    }
    sweeps.push_back(std::move(sweep));
  }

  // ---- row softmax ----------------------------------------------------------
  {
    const size_t rows = 8192, cols = 256;
    Rng rng(29);
    const Tensor logits = Tensor::Randn(rows, cols, &rng);
    SweepSummary sweep;
    sweep.kernel = "softmax";
    sweep.size = "8192x256";
    sweep.flops = 4.0 * rows * cols;  // max + exp + sum + scale passes
    ThreadPool::ResetGlobal(1);
    sweep.baseline_s = TimeBest(reps, [&] { (void)fkd::SoftmaxRows(logits); });
    ConfigRow base{"softmax", sweep.size, 0, sweep.baseline_s,
                   sweep.flops / sweep.baseline_s * 1e-9, 1.0};
    PrintRow(base);
    AppendJsonl(&jsonl, base);
    for (size_t threads : thread_counts) {
      ThreadPool::ResetGlobal(threads);
      const double seconds =
          TimeBest(reps, [&] { (void)fkd::SoftmaxRows(logits); });
      ConfigRow row{"softmax", sweep.size, threads, seconds,
                    sweep.flops / seconds * 1e-9, sweep.baseline_s / seconds};
      sweep.by_threads.emplace_back(threads, seconds);
      PrintRow(row);
      AppendJsonl(&jsonl, row);
    }
    sweeps.push_back(std::move(sweep));
  }

  ThreadPool::ResetGlobal(0);

  if (!flags.GetString("out").empty()) {
    WriteSummaryJson(flags.GetString("out"), sweeps, reps);
    std::printf("\nwrote %s\n", flags.GetString("out").c_str());
  }

  // Acceptance gate: blocked parallel MatMul at 4 threads must beat the
  // serial baseline. Meaningless on a 1-core host — skip loudly there
  // instead of silently passing (or failing) on timings that measured
  // scheduling overhead, not parallelism.
  if (!fkd::bench::SkipSpeedupGateOnSmallHost(
          "bench_compute_kernels", "matmul speedup_vs_baseline_at_4 >= 1.5")) {
    for (const SweepSummary& sweep : sweeps) {
      if (sweep.kernel != "matmul") continue;
      const double speedup = sweep.SpeedupAt(4);
      if (speedup < 1.5) {
        std::fprintf(stderr,
                     "bench_compute_kernels: GATE FAILED: matmul %s at 4 "
                     "threads is %.2fx vs serial (want >= 1.5x)\n",
                     sweep.size.c_str(), speedup);
        return 1;
      }
    }
    std::printf("speedup gate: OK (matmul >= 1.5x at 4 threads)\n");
  }
  return 0;
}
