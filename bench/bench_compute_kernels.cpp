// Compute-kernel sweep: MatMul / sparse SpMM (uniform + pathological skew) /
// row softmax / GDU diffusion step / end-to-end ScoreArticles across sizes
// and FKD_NUM_THREADS-style pool widths, against fixed serial baselines.
// This is the perf trajectory anchor for the parallel compute core: rerun it
// after kernel changes and diff the JSON artifact.
//
//   ./bench_compute_kernels [--reps=5] [--jsonl=/path/rows.jsonl]
//                           [--out=BENCH_compute.json] [--gate]
//
// --jsonl appends one JSON line per (kernel, size, threads) config; --out
// writes the aggregated summary (per-sweep roofline fields — flops, minimum
// compulsory bytes, bytes/FLOP arithmetic intensity, achieved GFLOP/s at 4
// threads — plus speedup_vs_baseline_at_4, the numbers the acceptance gates
// read). --gate runs only the regression-gate sweeps (softmax + skewed SpMM)
// and fails if either drops below serial at 4 threads; this is what the
// compute_gate ctest invokes. Inputs are seeded, so every run times
// identical arithmetic.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_hardware.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/diffusion_model.h"
#include "core/gdu.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "text/vocabulary.h"

namespace {

namespace ag = ::fkd::autograd;
using fkd::Rng;
using fkd::Tensor;
using fkd::ThreadPool;
using fkd::WallTimer;

// The seed repo's single-threaded ikj GEMM, kept verbatim as the fixed
// serial baseline all dense speedups are measured against.
void BaselineGemm(const Tensor& a, const Tensor& b, Tensor* c) {
  c->SetZero();
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  float* cd = c->data();
  const float* ad = a.data();
  const float* bd = b.data();
  for (size_t i = 0; i < m; ++i) {
    float* c_row = cd + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float a_ip = ad[i * k + p];
      if (a_ip == 0.0f) continue;
      const float* b_row = bd + p * n;
      for (size_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
    }
  }
}

template <typename Fn>
double TimeBest(size_t reps, Fn&& fn) {
  double best = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

struct ConfigRow {
  std::string kernel;
  std::string size;
  size_t threads = 0;  ///< 0 = the serial baseline row.
  double seconds = 0.0;
  double gflops = 0.0;  ///< 0 when the sweep has no exact flop count.
  double bytes_per_flop = 0.0;  ///< Compulsory-traffic intensity; 0 = n/a.
  double speedup_vs_baseline = 0.0;
};

void PrintRow(const ConfigRow& row) {
  std::printf("%-14s %-20s %8s %12.6f %10.2f %8.3f %9.2fx\n",
              row.kernel.c_str(), row.size.c_str(),
              row.threads == 0 ? "serial" : std::to_string(row.threads).c_str(),
              row.seconds, row.gflops, row.bytes_per_flop,
              row.speedup_vs_baseline);
}

void AppendJsonl(std::ofstream* jsonl, const ConfigRow& row) {
  if (jsonl == nullptr || !jsonl->is_open()) return;
  *jsonl << "{\"bench\":\"compute_kernels\",\"kernel\":\"" << row.kernel
         << "\",\"size\":\"" << row.size << "\",\"threads\":" << row.threads
         << ",\"seconds\":" << row.seconds << ",\"gflops\":" << row.gflops
         << ",\"bytes_per_flop\":" << row.bytes_per_flop
         << ",\"speedup_vs_serial_baseline\":" << row.speedup_vs_baseline
         << "," << fkd::bench::HardwareContextJsonFields() << "}\n";
}

/// One kernel x size sweep entry of the --out summary.
struct SweepSummary {
  std::string kernel;
  std::string size;
  double flops = 0.0;  ///< Exact flop count; 0 = not well defined.
  double bytes = 0.0;  ///< Minimum compulsory traffic (inputs+params+output).
  size_t items = 0;    ///< Work items per run (articles scored); 0 = n/a.
  double baseline_s = 0.0;
  std::vector<std::pair<size_t, double>> by_threads;

  double SecondsAt(size_t threads) const {
    for (const auto& [t, s] : by_threads) {
      if (t == threads && s > 0.0) return s;
    }
    return 0.0;
  }
  double SpeedupAt(size_t threads) const {
    const double s = SecondsAt(threads);
    return s > 0.0 ? baseline_s / s : 0.0;
  }
};

void WriteSummaryJson(const std::string& path,
                      const std::vector<SweepSummary>& sweeps, size_t reps) {
  std::ofstream out(path, std::ios::trunc);
  FKD_CHECK(out.good()) << "cannot open " << path;
  out << "{\n  \"bench\": \"compute_kernels\",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n  \"reps\": " << reps << ",\n  \"sweeps\": [\n";
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const SweepSummary& s = sweeps[i];
    const double s4 = s.SecondsAt(4);
    out << "    {\"kernel\": \"" << s.kernel << "\", \"size\": \"" << s.size
        << "\", \"flops\": " << s.flops << ", \"bytes\": " << s.bytes
        << ", \"bytes_per_flop\": " << (s.flops > 0.0 ? s.bytes / s.flops : 0.0)
        << ", \"serial_baseline_s\": " << s.baseline_s << ", \"by_threads\": {";
    for (size_t t = 0; t < s.by_threads.size(); ++t) {
      out << (t > 0 ? ", " : "") << "\"" << s.by_threads[t].first
          << "\": " << s.by_threads[t].second;
    }
    out << "}, \"achieved_gflops_at_4\": "
        << (s.flops > 0.0 && s4 > 0.0 ? s.flops / s4 * 1e-9 : 0.0);
    if (s.items > 0) {
      out << ", \"items\": " << s.items << ", \"items_per_s_at_4\": "
          << (s4 > 0.0 ? static_cast<double>(s.items) / s4 : 0.0);
    }
    out << ", \"speedup_vs_baseline_at_4\": " << s.SpeedupAt(4) << "}"
        << (i + 1 < sweeps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Times `baseline_fn` serially (pool forced to one thread unless the
/// baseline is pool-independent), then `timed_fn` at every pool width, and
/// prints/records the rows. `flops`/`bytes` feed the roofline fields; pass
/// 0 when no exact count exists (rows then report throughput only).
SweepSummary RunSweep(const std::string& kernel, const std::string& size,
                      double flops, double bytes, size_t items, size_t reps,
                      const std::vector<size_t>& thread_counts,
                      bool pool_serial_baseline,
                      const std::function<void()>& baseline_fn,
                      const std::function<void()>& timed_fn,
                      std::ofstream* jsonl) {
  SweepSummary sweep;
  sweep.kernel = kernel;
  sweep.size = size;
  sweep.flops = flops;
  sweep.bytes = bytes;
  sweep.items = items;
  const double intensity = flops > 0.0 ? bytes / flops : 0.0;
  if (pool_serial_baseline) ThreadPool::ResetGlobal(1);
  sweep.baseline_s = TimeBest(reps, baseline_fn);
  ConfigRow base{kernel,
                 size,
                 0,
                 sweep.baseline_s,
                 flops > 0.0 ? flops / sweep.baseline_s * 1e-9 : 0.0,
                 intensity,
                 1.0};
  PrintRow(base);
  AppendJsonl(jsonl, base);
  for (size_t threads : thread_counts) {
    ThreadPool::ResetGlobal(threads);
    const double seconds = TimeBest(reps, timed_fn);
    ConfigRow row{kernel,
                  size,
                  threads,
                  seconds,
                  flops > 0.0 ? flops / seconds * 1e-9 : 0.0,
                  intensity,
                  sweep.baseline_s / seconds};
    sweep.by_threads.emplace_back(threads, seconds);
    PrintRow(row);
    AppendJsonl(jsonl, row);
  }
  return sweep;
}

fkd::CsrMatrix PowerLawCsr(size_t rows, size_t cols, size_t head_draws,
                           uint64_t seed) {
  Rng rng(seed);
  std::vector<fkd::CsrMatrix::Triplet> triplets;
  for (size_t r = 0; r < rows; ++r) {
    const size_t draws = std::max<size_t>(1, head_draws / (r + 1));
    for (size_t i = 0; i < draws; ++i) {
      triplets.push_back(
          {static_cast<int32_t>(r),
           static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(cols))),
           static_cast<float>(rng.Normal())});
    }
  }
  return fkd::CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
}

double SparseBytes(const fkd::CsrMatrix& m, size_t dense_cols) {
  // values + cols (8B/nnz), one gathered dense row per nnz, the output
  // write, and the row_ptr walk.
  return 8.0 * m.nnz() + 4.0 * m.nnz() * dense_cols + 4.0 * m.rows() * dense_cols +
         4.0 * (m.rows() + 1);
}

fkd::text::Vocabulary SyntheticVocab(size_t n, const std::string& prefix) {
  fkd::text::Vocabulary vocab;
  for (size_t i = 0; i < n; ++i) vocab.Add(prefix + std::to_string(i));
  return vocab;
}

}  // namespace

int main(int argc, char** argv) {
  fkd::FlagParser flags;
  flags.AddInt("reps", 5, "timed repetitions per config (best-of)");
  flags.AddString("jsonl", "", "append one JSON line per config to this file");
  flags.AddString("out", "", "write the aggregated summary JSON to this file");
  flags.AddBool("gate", false,
                "regression-gate mode: run only the softmax + skewed-SpMM "
                "sweeps and fail if either is below serial at 4 threads");
  fkd::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return parsed.code() == fkd::StatusCode::kFailedPrecondition ? 0 : 1;
  }
  const size_t reps = static_cast<size_t>(flags.GetInt("reps"));
  const bool gate_only = flags.GetBool("gate");
  std::ofstream jsonl;
  if (!flags.GetString("jsonl").empty()) {
    jsonl.open(flags.GetString("jsonl"), std::ios::app);
    FKD_CHECK(jsonl.good()) << "cannot open " << flags.GetString("jsonl");
  }

  const std::vector<size_t> thread_counts =
      gate_only ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 2, 4, 8};
  std::vector<SweepSummary> sweeps;

  std::printf("%-14s %-20s %8s %12s %10s %8s %10s\n", "kernel", "size",
              "threads", "best_s", "gflops", "B/FLOP", "speedup");

  // ---- dense MatMul ---------------------------------------------------------
  if (!gate_only) {
    for (size_t size : {64u, 128u, 256u, 512u}) {
      Rng rng(17);
      const Tensor a = Tensor::Randn(size, size, &rng);
      const Tensor b = Tensor::Randn(size, size, &rng);
      Tensor baseline_out(size, size);
      Tensor out;
      const std::string label = std::to_string(size) + "x" +
                                std::to_string(size) + "x" +
                                std::to_string(size);
      sweeps.push_back(RunSweep(
          "matmul", label, 2.0 * size * size * size,
          4.0 * 3.0 * size * size, 0, reps, thread_counts,
          /*pool_serial_baseline=*/false,
          [&] { BaselineGemm(a, b, &baseline_out); },
          [&] { out = fkd::MatMul(a, b); }, &jsonl));
      FKD_CHECK(out.AllClose(baseline_out, 1e-2f))
          << "matmul kernel diverged from the serial baseline";
    }
  }

  // ---- sparse-dense SpMM, uniform -------------------------------------------
  if (!gate_only) {
    const size_t rows = 4096, cols = 4096, dense_cols = 64;
    Rng rng(23);
    std::vector<fkd::CsrMatrix::Triplet> triplets;
    const size_t nnz = rows * cols / 200;  // ~0.5% density
    triplets.reserve(nnz);
    for (size_t i = 0; i < nnz; ++i) {
      triplets.push_back(
          {static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(rows))),
           static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(cols))),
           static_cast<float>(rng.Normal())});
    }
    const fkd::CsrMatrix sparse =
        fkd::CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
    const Tensor dense = Tensor::Randn(cols, dense_cols, &rng);
    const auto run = [&] { (void)sparse.MatMul(dense); };
    sweeps.push_back(RunSweep("sparse", "4096x4096@0.5%*64",
                              2.0 * sparse.nnz() * dense_cols,
                              SparseBytes(sparse, dense_cols), 0, reps,
                              thread_counts, /*pool_serial_baseline=*/true,
                              run, run, &jsonl));
  }

  // ---- sparse-dense SpMM, pathological skew ---------------------------------
  // Power-law rows (the News-HSN's creator degree shape): the head row is
  // fully dense while the tail is near-empty. A row-count partition
  // serialises on the head; the nnz-balanced plan must not.
  {
    const size_t dense_cols = 64;
    const fkd::CsrMatrix sparse = PowerLawCsr(4096, 4096, 65536, 41);
    Rng rng(43);
    const Tensor dense = Tensor::Randn(4096, dense_cols, &rng);
    const auto run = [&] { (void)sparse.MatMul(dense); };
    sweeps.push_back(RunSweep("sparse_skew", "powerlaw4096*64",
                              2.0 * sparse.nnz() * dense_cols,
                              SparseBytes(sparse, dense_cols), 0, reps,
                              thread_counts, /*pool_serial_baseline=*/true,
                              run, run, &jsonl));
  }

  // ---- row softmax ----------------------------------------------------------
  {
    const size_t rows = 8192, cols = 256;
    Rng rng(29);
    const Tensor logits = Tensor::Randn(rows, cols, &rng);
    const auto run = [&] { (void)fkd::SoftmaxRows(logits); };
    sweeps.push_back(RunSweep("softmax", "8192x256",
                              4.0 * rows * cols,  // max + exp + sum + scale
                              8.0 * rows * cols, 0, reps, thread_counts,
                              /*pool_serial_baseline=*/true, run, run,
                              &jsonl));
  }

  // ---- GDU diffusion step ---------------------------------------------------
  // Tape-based Step (serial) vs the fused cache-blocked StepInference at
  // every pool width. Bitwise identity between the two is a tested
  // contract, so the speedup isolates fusion + blocking + zero tape churn.
  if (!gate_only) {
    const size_t n = 2048, k = 96, h = 48, g = 4;
    const size_t ck = k + 2 * h;
    Rng rng(31);
    fkd::core::GduCell cell(k, h, &rng);
    const Tensor x = Tensor::Randn(n, k, &rng);
    const Tensor z = Tensor::Randn(n, h, &rng);
    const Tensor t = Tensor::Randn(n, h, &rng);
    ag::InferenceModeGuard no_grad;
    const ag::Variable xv(x, false), zv(z, false), tv(t, false);
    FKD_CHECK(cell.StepInference(x, z, t) == cell.Step(xv, zv, tv).value())
        << "StepInference diverged from the tape-based Step";
    // Gate GEMM + 4 fuse GEMMs + epilogues/combination.
    const double flops = 2.0 * n * ck * h * (g + 4) + 1.0 * n * h * (4 * g + 12);
    const double bytes =
        4.0 * (n * ck + ck * (g + 1) * h + (g + 1) * h + n * h);
    sweeps.push_back(RunSweep(
        "gdu_step", "2048x(96|48)", flops, bytes, 0, reps, thread_counts,
        /*pool_serial_baseline=*/true,
        [&] { (void)cell.Step(xv, zv, tv); },
        [&] { (void)cell.StepInference(x, z, t); }, &jsonl));
  }

  // ---- end-to-end ScoreArticles ---------------------------------------------
  // The serving hot path on a frozen random-init model: HFLU featurise,
  // frozen-neighbour aggregation, GDU step, head. Baseline replays the
  // seed's tape-based path serially; no exact flop count (the latent GRU
  // dominates and its cost depends on ragged sequence lengths), so rows
  // report throughput and the summary carries articles/sec.
  if (!gate_only) {
    const size_t articles = 768, tokens = 40, classes = 2;
    fkd::core::FakeDetectorConfig config;
    Rng rng(37);
    fkd::core::DiffusionModel model(
        config, classes, SyntheticVocab(150, "w"), SyntheticVocab(150, "w"),
        SyntheticVocab(150, "w"), SyntheticVocab(1000, "v"),
        SyntheticVocab(1000, "v"), SyntheticVocab(1000, "v"), &rng);
    std::vector<std::vector<std::string>> documents(articles);
    for (auto& doc : documents) {
      doc.reserve(tokens);
      for (size_t i = 0; i < tokens; ++i) {
        doc.push_back((i % 5 == 0 ? "w" : "v") +
                      std::to_string(rng.UniformInt(i % 5 == 0 ? 150 : 1000)));
      }
    }
    const fkd::core::HfluInput input =
        model.article_hflu().PrepareBatch(documents);
    const size_t h = model.hidden_dim();
    const Tensor creator_states = Tensor::Randn(90, h, &rng);
    const Tensor subject_states = Tensor::Randn(30, h, &rng);
    std::vector<std::vector<int32_t>> subject_groups(articles);
    std::vector<std::vector<int32_t>> creator_groups(articles);
    for (size_t i = 0; i < articles; ++i) {
      subject_groups[i] = {static_cast<int32_t>(rng.UniformInt(30))};
      creator_groups[i] = {static_cast<int32_t>(rng.UniformInt(90))};
      if (i % 3 == 0) {
        creator_groups[i].push_back(static_cast<int32_t>(rng.UniformInt(90)));
      }
    }
    const auto seed_path = [&] {
      ag::InferenceModeGuard no_grad;
      ag::Variable xa = model.article_hflu().Forward(input);
      const ag::Variable hu(creator_states, false, "hu");
      const ag::Variable hs(subject_states, false, "hs");
      const ag::Variable za = ag::GroupMeanRows(hs, subject_groups);
      const ag::Variable ta = ag::GroupMeanRows(hu, creator_groups);
      const ag::Variable ha = model.article_gdu().Step(xa, za, ta);
      (void)model.article_head().Forward(ha).value();
    };
    const auto fused = [&] {
      (void)model.ScoreArticles(input, subject_groups, creator_groups,
                                creator_states, subject_states);
    };
    sweeps.push_back(RunSweep("score_articles", "768art*40tok", 0.0, 0.0,
                              articles, reps, thread_counts,
                              /*pool_serial_baseline=*/true, seed_path, fused,
                              &jsonl));
  }

  ThreadPool::ResetGlobal(0);

  if (!flags.GetString("out").empty()) {
    WriteSummaryJson(flags.GetString("out"), sweeps, reps);
    std::printf("\nwrote %s\n", flags.GetString("out").c_str());
  }

  // Acceptance gates. Meaningless on a 1-core host — skip loudly there
  // instead of silently passing (or failing) on timings that measured
  // scheduling overhead, not parallelism.
  bool failed = false;
  if (!fkd::bench::SkipSpeedupGateOnSmallHost(
          "bench_compute_kernels",
          "matmul >= 1.5x, softmax >= 1.0x, sparse_skew > 1.0x at 4 threads")) {
    for (const SweepSummary& sweep : sweeps) {
      const double speedup = sweep.SpeedupAt(4);
      double want = 0.0;  // 0 = ungated kernel.
      bool strict = false;
      if (sweep.kernel == "matmul") want = 1.5;
      if (sweep.kernel == "softmax") want = 1.0;
      if (sweep.kernel == "sparse_skew") {
        want = 1.0;
        strict = true;
      }
      if (want == 0.0) continue;
      if (speedup < want || (strict && speedup <= want)) {
        std::fprintf(stderr,
                     "bench_compute_kernels: GATE FAILED: %s %s at 4 threads "
                     "is %.2fx vs serial (want %s %.1fx)\n",
                     sweep.kernel.c_str(), sweep.size.c_str(), speedup,
                     strict ? ">" : ">=", want);
        failed = true;
      }
    }
    if (!failed) {
      std::printf(
          "speedup gate: OK (matmul >= 1.5x, softmax >= 1.0x, "
          "sparse_skew > 1.0x at 4 threads)\n");
    }
  }
  return failed ? 1 : 0;
}
