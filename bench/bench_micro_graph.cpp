// Microbenchmarks of the graph substrate: CSR construction, neighbour
// queries, alias sampling, random walks, and label-propagation sweeps.

#include <benchmark/benchmark.h>

#include "baselines/label_propagation.h"
#include "data/generator.h"
#include "data/split.h"
#include "graph/alias_table.h"
#include "graph/random_walk.h"

namespace fkd {
namespace {

data::Dataset DatasetOf(size_t articles) {
  return data::GeneratePolitiFact(data::GeneratorOptions::Scaled(articles, 21))
      .value();
}

void BM_GraphBuild(benchmark::State& state) {
  const auto dataset = DatasetOf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto graph = dataset.BuildGraph();
    benchmark::DoNotOptimize(graph.value().TotalNodes());
  }
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(14055)->Unit(benchmark::kMillisecond);

void BM_NeighborScan(benchmark::State& state) {
  const auto dataset = DatasetOf(5000);
  const auto graph = dataset.BuildGraph().value();
  for (auto _ : state) {
    size_t total = 0;
    for (size_t a = 0; a < graph.NumNodes(graph::NodeType::kArticle); ++a) {
      total += graph
                   .ArticleNeighbors(graph::EdgeType::kSubjectIndication,
                                     static_cast<int32_t>(a))
                   .size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_NeighborScan);

void BM_AliasTableSample(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (auto& w : weights) w = rng.Uniform(0.1, 10.0);
  graph::AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(1000)->Arg(100000);

void BM_AliasTableBuild(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (auto& w : weights) w = rng.Uniform(0.1, 10.0);
  for (auto _ : state) {
    graph::AliasTable table(weights);
    benchmark::DoNotOptimize(table.size());
  }
}
BENCHMARK(BM_AliasTableBuild)->Arg(1000)->Arg(100000);

void BM_RandomWalks(benchmark::State& state) {
  const auto dataset = DatasetOf(static_cast<size_t>(state.range(0)));
  const auto graph = dataset.BuildGraph().value();
  Rng rng(3);
  graph::RandomWalkOptions options;
  options.walks_per_node = 2;
  options.walk_length = 20;
  for (auto _ : state) {
    auto walks = graph::GenerateRandomWalks(graph, options, &rng);
    benchmark::DoNotOptimize(walks.size());
  }
}
BENCHMARK(BM_RandomWalks)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_LabelPropagationTrain(benchmark::State& state) {
  auto dataset = DatasetOf(static_cast<size_t>(state.range(0)));
  auto graph = dataset.BuildGraph().value();
  Rng rng(4);
  auto splits = data::KFoldTriSplits(dataset.articles.size(),
                                     dataset.creators.size(),
                                     dataset.subjects.size(), 5, &rng)
                    .value();
  eval::TrainContext context;
  context.dataset = &dataset;
  context.graph = &graph;
  context.train_articles = splits[0].articles.train;
  context.train_creators = splits[0].creators.train;
  context.train_subjects = splits[0].subjects.train;
  for (auto _ : state) {
    baselines::LabelPropagation propagation;
    benchmark::DoNotOptimize(propagation.Train(context).ok());
  }
}
BENCHMARK(BM_LabelPropagationTrain)
    ->Arg(1000)
    ->Arg(14055)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fkd

BENCHMARK_MAIN();
