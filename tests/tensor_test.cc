#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tests/test_util.h"

namespace fkd {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, Rank2ConstructionZeroInitialises) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor full = Tensor::Full(2, 2, 3.5f);
  EXPECT_EQ(full.At(1, 1), 3.5f);
  Tensor ones = Tensor::Ones(2, 3);
  EXPECT_EQ(ones.Sum(), 6.0f);
}

TEST(TensorTest, FromVectorIsRank1) {
  Tensor t = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[2], 3.0f);
}

TEST(TensorTest, FromRowsLaysOutRowMajor) {
  Tensor t = Tensor::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.At(0, 2), 3.0f);
  EXPECT_EQ(t.At(1, 0), 4.0f);
  EXPECT_EQ(t[4], 5.0f);
}

TEST(TensorTest, AtReadWrite) {
  Tensor t(2, 2);
  t.At(0, 1) = 7.0f;
  EXPECT_EQ(t.At(0, 1), 7.0f);
  EXPECT_EQ(t[1], 7.0f);
}

TEST(TensorTest, RowPointerIsContiguous) {
  Tensor t = Tensor::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(t.Row(1)[0], 3.0f);
  EXPECT_EQ(t.Row(1)[1], 4.0f);
}

TEST(TensorTest, FillAndSetZero) {
  Tensor t(2, 2);
  t.Fill(2.0f);
  EXPECT_EQ(t.Sum(), 8.0f);
  t.SetZero();
  EXPECT_EQ(t.Sum(), 0.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromRows({{1, 2, 3, 4}});
  Tensor r = t.Reshape({2, 2});
  EXPECT_EQ(r.At(1, 0), 3.0f);
}

TEST(TensorTest, TransposedSwapsIndices) {
  Tensor t = Tensor::FromRows({{1, 2, 3}, {4, 5, 6}});
  Tensor tt = t.Transposed();
  EXPECT_EQ(tt.rows(), 3u);
  EXPECT_EQ(tt.cols(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(t.At(r, c), tt.At(c, r));
  }
}

TEST(TensorTest, Reductions) {
  Tensor t = Tensor::FromRows({{-1, 2}, {3, -4}});
  EXPECT_FLOAT_EQ(t.Sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.Mean(), 0.0f);
  EXPECT_FLOAT_EQ(t.MaxAbs(), 4.0f);
  EXPECT_FLOAT_EQ(t.Norm(), std::sqrt(30.0f));
}

TEST(TensorTest, AllCloseRespectsTolerance) {
  Tensor a = Tensor::FromRows({{1.0f, 2.0f}});
  Tensor b = Tensor::FromRows({{1.0005f, 2.0f}});
  EXPECT_TRUE(a.AllClose(b, 1e-3f));
  EXPECT_FALSE(a.AllClose(b, 1e-5f));
  Tensor c(2, 1);
  EXPECT_FALSE(a.AllClose(c));  // Shape mismatch.
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  Rng rng1(7);
  Rng rng2(7);
  Tensor a = Tensor::Randn(4, 4, &rng1);
  Tensor b = Tensor::Randn(4, 4, &rng2);
  EXPECT_TRUE(a == b);
}

TEST(TensorTest, RandRespectsBounds) {
  Rng rng(11);
  Tensor t = Tensor::Rand(10, 10, &rng, -0.25f, 0.25f);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -0.25f);
    EXPECT_LT(t[i], 0.25f);
  }
}

TEST(TensorTest, ToStringElides) {
  Tensor t = Tensor::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(t.ToString(), "[2x2]{1, 2; 3, 4}");
  EXPECT_NE(t.ToString(2).find("..."), std::string::npos);
}

// ---- ops ------------------------------------------------------------------

Tensor NaiveMatMul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const Tensor aa = ta ? a.Transposed() : a;
  const Tensor bb = tb ? b.Transposed() : b;
  Tensor c(aa.rows(), bb.cols());
  for (size_t i = 0; i < aa.rows(); ++i) {
    for (size_t j = 0; j < bb.cols(); ++j) {
      double total = 0.0;
      for (size_t k = 0; k < aa.cols(); ++k) total += aa.At(i, k) * bb.At(k, j);
      c.At(i, j) = static_cast<float>(total);
    }
  }
  return c;
}

struct GemmCase {
  bool trans_a;
  bool trans_b;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  const size_t m = 5, k = 7, n = 3;
  Tensor a = testing::RandomTensor(ta ? k : m, ta ? m : k, 1);
  Tensor b = testing::RandomTensor(tb ? n : k, tb ? k : n, 2);
  Tensor c(m, n);
  Gemm(ta, tb, 1.0f, a, b, 0.0f, &c);
  EXPECT_TRUE(c.AllClose(NaiveMatMul(a, b, ta, tb), 1e-4f));
}

TEST_P(GemmTest, AlphaBetaAccumulate) {
  const auto [ta, tb] = GetParam();
  const size_t m = 4, k = 4, n = 4;
  Tensor a = testing::RandomTensor(ta ? k : m, ta ? m : k, 3);
  Tensor b = testing::RandomTensor(tb ? n : k, tb ? k : n, 4);
  Tensor c = testing::RandomTensor(m, n, 5);
  Tensor expected = c;
  const Tensor product = NaiveMatMul(a, b, ta, tb);
  for (size_t i = 0; i < expected.size(); ++i) {
    expected[i] = 0.5f * expected[i] + 2.0f * product[i];
  }
  Gemm(ta, tb, 2.0f, a, b, 0.5f, &c);
  EXPECT_TRUE(c.AllClose(expected, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTest,
                         ::testing::Values(GemmCase{false, false},
                                           GemmCase{true, false},
                                           GemmCase{false, true},
                                           GemmCase{true, true}));

TEST(OpsTest, MatMulIdentity) {
  Tensor a = Tensor::FromRows({{1, 2}, {3, 4}});
  Tensor identity = Tensor::FromRows({{1, 0}, {0, 1}});
  EXPECT_TRUE(MatMul(a, identity).AllClose(a));
}

TEST(OpsTest, AxpyInPlace) {
  Tensor x = Tensor::FromRows({{1, 2}});
  Tensor y = Tensor::FromRows({{10, 20}});
  AxpyInPlace(2.0f, x, &y);
  EXPECT_TRUE(y.AllClose(Tensor::FromRows({{12, 24}})));
}

TEST(OpsTest, ScaleInPlace) {
  Tensor y = Tensor::FromRows({{1, -2}});
  ScaleInPlace(-3.0f, &y);
  EXPECT_TRUE(y.AllClose(Tensor::FromRows({{-3, 6}})));
}

TEST(OpsTest, MapAndZipMap) {
  Tensor a = Tensor::FromRows({{1, 4}});
  Tensor b = Tensor::FromRows({{2, 3}});
  EXPECT_TRUE(Map(a, [](float x) { return x * x; })
                  .AllClose(Tensor::FromRows({{1, 16}})));
  EXPECT_TRUE(ZipMap(a, b, [](float x, float y) { return x * y; })
                  .AllClose(Tensor::FromRows({{2, 12}})));
}

TEST(OpsTest, AddSubMul) {
  Tensor a = Tensor::FromRows({{1, 2}});
  Tensor b = Tensor::FromRows({{3, 5}});
  EXPECT_TRUE(Add(a, b).AllClose(Tensor::FromRows({{4, 7}})));
  EXPECT_TRUE(Sub(a, b).AllClose(Tensor::FromRows({{-2, -3}})));
  EXPECT_TRUE(Mul(a, b).AllClose(Tensor::FromRows({{3, 10}})));
}

TEST(OpsTest, AddRowBroadcast) {
  Tensor m = Tensor::FromRows({{1, 2}, {3, 4}});
  Tensor row = Tensor::FromRows({{10, 20}});
  EXPECT_TRUE(AddRowBroadcast(m, row).AllClose(
      Tensor::FromRows({{11, 22}, {13, 24}})));
}

TEST(OpsTest, SigmoidKnownValues) {
  Tensor x = Tensor::FromRows({{0.0f, 100.0f, -100.0f}});
  Tensor y = Sigmoid(x);
  EXPECT_NEAR(y[0], 0.5f, 1e-6f);
  EXPECT_NEAR(y[1], 1.0f, 1e-6f);
  EXPECT_NEAR(y[2], 0.0f, 1e-6f);
}

TEST(OpsTest, TanhAndRelu) {
  Tensor x = Tensor::FromRows({{-1.0f, 0.0f, 2.0f}});
  Tensor t = TanhT(x);
  EXPECT_NEAR(t[0], std::tanh(-1.0f), 1e-6f);
  Tensor r = Relu(x);
  EXPECT_EQ(r[0], 0.0f);
  EXPECT_EQ(r[2], 2.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOneAndOrder) {
  Tensor logits = Tensor::FromRows({{1.0f, 2.0f, 3.0f}, {1000.0f, 999.0f, 0.0f}});
  Tensor probs = SoftmaxRows(logits);
  for (size_t r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (size_t c = 0; c < 3; ++c) total += probs.At(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
  EXPECT_GT(probs.At(0, 2), probs.At(0, 1));
  // Numerically stable for huge logits.
  EXPECT_GT(probs.At(1, 0), probs.At(1, 1));
  EXPECT_FALSE(std::isnan(probs.At(1, 2)));
}

TEST(OpsTest, SumRowsTo) {
  Tensor m = Tensor::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_TRUE(SumRowsTo(m).AllClose(Tensor::FromRows({{9, 12}})));
}

TEST(OpsTest, ConcatCols) {
  Tensor a = Tensor::FromRows({{1}, {2}});
  Tensor b = Tensor::FromRows({{3, 4}, {5, 6}});
  EXPECT_TRUE(ConcatCols({a, b}).AllClose(
      Tensor::FromRows({{1, 3, 4}, {2, 5, 6}})));
}

}  // namespace
}  // namespace fkd
