#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.h"
#include "core/fake_detector.h"
#include "core/gdu.h"
#include "core/hflu.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "obs/observer.h"
#include "tests/test_util.h"

namespace fkd {
namespace core {
namespace {

namespace ag = ::fkd::autograd;
using ::fkd::testing::ExpectGradientsMatch;
using ::fkd::testing::RandomTensor;
using ::fkd::testing::WeightedSum;

// ---- GduCell ------------------------------------------------------------------

TEST(GduCellTest, OutputShapeAndBound) {
  Rng rng(1);
  GduCell cell(5, 3, &rng);
  ag::Variable x(RandomTensor(4, 5, 2), false);
  ag::Variable z(RandomTensor(4, 3, 3, 0.3f), false);
  ag::Variable t(RandomTensor(4, 3, 4, 0.3f), false);
  const Tensor h = cell.Step(x, z, t).value();
  EXPECT_EQ(h.rows(), 4u);
  EXPECT_EQ(h.cols(), 3u);
  // Convex mixture of tanh branches stays in (-1, 1).
  EXPECT_LE(h.MaxAbs(), 1.0f);
}

TEST(GduCellTest, ZeroPortsAreValidInputs) {
  Rng rng(5);
  GduCell cell(4, 3, &rng);
  ag::Variable x(RandomTensor(2, 4, 6), false);
  ag::Variable zero(Tensor(2, 3), false);
  const Tensor h = cell.Step(x, zero, zero).value();
  EXPECT_EQ(h.rows(), 2u);
  EXPECT_FALSE(std::isnan(h[0]));
}

TEST(GduCellTest, GradCheckThroughStep) {
  Rng rng(7);
  GduCell cell(3, 2, &rng);
  ExpectGradientsMatch(
      [&cell](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(cell.Step(leaves[0], leaves[1], leaves[2]));
      },
      {RandomTensor(3, 3, 8, 0.4f), RandomTensor(3, 2, 9, 0.4f),
       RandomTensor(3, 2, 10, 0.4f)});
}

TEST(GduCellTest, ParameterSetsMatchVariant) {
  Rng rng(11);
  std::vector<nn::NamedParameter> params;

  GduCell full(4, 3, &rng);
  full.CollectParameters("g", &params);
  const size_t full_count = params.size();  // 5 linears x (w, b) = 10.
  EXPECT_EQ(full_count, 10u);

  params.clear();
  GduOptions no_forget;
  no_forget.disable_forget_gate = true;
  GduCell without_forget(4, 3, &rng, no_forget);
  without_forget.CollectParameters("g", &params);
  EXPECT_EQ(params.size(), 8u);

  params.clear();
  GduOptions plain;
  plain.plain_unit = true;
  GduCell plain_cell(4, 3, &rng, plain);
  plain_cell.CollectParameters("g", &params);
  EXPECT_EQ(params.size(), 2u);  // Only W_u.
}

TEST(GduCellTest, VariantsProduceDifferentOutputs) {
  ag::Variable x(RandomTensor(3, 4, 12), false);
  ag::Variable z(RandomTensor(3, 3, 13, 0.4f), false);
  ag::Variable t(RandomTensor(3, 3, 14, 0.4f), false);

  Rng rng_a(20);
  GduCell full(4, 3, &rng_a);
  Rng rng_b(20);  // Same init stream.
  GduOptions plain_options;
  plain_options.plain_unit = true;
  GduCell plain(4, 3, &rng_b, plain_options);

  const Tensor h_full = full.Step(x, z, t).value();
  const Tensor h_plain = plain.Step(x, z, t).value();
  EXPECT_FALSE(h_full.AllClose(h_plain, 1e-4f));
}

TEST(GduCellTest, ForgetGateChangesZSensitivity) {
  // With the forget gate disabled, z passes straight through: doubling z
  // must move the output differently than in the gated cell.
  Rng rng_a(21);
  GduCell gated(2, 2, &rng_a);
  Rng rng_b(21);
  GduOptions options;
  options.disable_forget_gate = true;
  GduCell ungated(2, 2, &rng_b, options);

  ag::Variable x(RandomTensor(2, 2, 22), false);
  ag::Variable z(RandomTensor(2, 2, 23, 0.4f), false);
  ag::Variable t(RandomTensor(2, 2, 24, 0.4f), false);
  EXPECT_FALSE(
      gated.Step(x, z, t).value().AllClose(ungated.Step(x, z, t).value(),
                                           1e-5f));
}

// StepInference promises bitwise identity with the tape-based Step at any
// pool width, for every gate ablation. Exercised with enough rows to cross
// several L2 row blocks on the default variant.
TEST(GduCellTest, StepInferenceBitwiseMatchesStepAcrossVariants) {
  struct VariantCase {
    const char* name;
    GduOptions options;
    size_t rows;
  };
  GduOptions no_forget;
  no_forget.disable_forget_gate = true;
  GduOptions no_adjust;
  no_adjust.disable_adjust_gate = true;
  GduOptions no_both;
  no_both.disable_forget_gate = true;
  no_both.disable_adjust_gate = true;
  GduOptions plain;
  plain.plain_unit = true;
  const VariantCase cases[] = {
      {"full", GduOptions{}, 600},  // > one 512-row block.
      {"no_forget", no_forget, 37},
      {"no_adjust", no_adjust, 37},
      {"no_both", no_both, 37},
      {"plain_unit", plain, 600},
  };
  for (const VariantCase& vc : cases) {
    SCOPED_TRACE(vc.name);
    Rng rng(91);
    GduCell cell(24, 16, &rng, vc.options);
    const Tensor x = RandomTensor(vc.rows, 24, 92);
    const Tensor z = RandomTensor(vc.rows, 16, 93, 0.4f);
    const Tensor t = RandomTensor(vc.rows, 16, 94, 0.4f);
    ag::InferenceModeGuard no_grad;
    const Tensor want = cell
                            .Step(ag::Variable(x, false), ag::Variable(z, false),
                                  ag::Variable(t, false))
                            .value();
    for (size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(threads);
      ThreadPool::ResetGlobal(threads);
      const Tensor got = cell.StepInference(x, z, t);
      ASSERT_EQ(got.rows(), want.rows());
      ASSERT_EQ(got.cols(), want.cols());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << "element " << i;
      }
    }
    ThreadPool::ResetGlobal(0);
  }
}

// ---- Hflu ---------------------------------------------------------------------

text::Vocabulary WordsOf(std::initializer_list<std::string> words) {
  text::Vocabulary vocab;
  for (const auto& w : words) vocab.Add(w);
  return vocab;
}

TEST(HfluTest, OutputDimCombinesFamilies) {
  Rng rng(30);
  HfluConfig config;
  config.latent_dim = 5;
  Hflu hflu(config, WordsOf({"a", "b", "c"}), WordsOf({"a", "b", "c", "d"}),
            &rng);
  EXPECT_EQ(hflu.output_dim(), 3u + 5u);
  EXPECT_EQ(hflu.explicit_dim(), 3u);
}

TEST(HfluTest, ExplicitOnlyAblation) {
  Rng rng(31);
  HfluConfig config;
  config.use_latent = false;
  Hflu hflu(config, WordsOf({"a", "b"}), WordsOf({"a"}), &rng);
  EXPECT_EQ(hflu.output_dim(), 2u);
  const auto input = hflu.PrepareBatch({{"a", "a", "zzz"}});
  const Tensor out = hflu.Forward(input).value();
  EXPECT_EQ(out.cols(), 2u);
  EXPECT_EQ(out.At(0, 0), 2.0f);  // Raw BoW counts.
  EXPECT_EQ(out.At(0, 1), 0.0f);
  // No trainable parameters in explicit-only mode.
  EXPECT_EQ(hflu.ParameterCount(), 0u);
}

TEST(HfluTest, LatentOnlyAblation) {
  Rng rng(32);
  HfluConfig config;
  config.use_explicit = false;
  config.latent_dim = 4;
  Hflu hflu(config, WordsOf({"a"}), WordsOf({"a", "b"}), &rng);
  EXPECT_EQ(hflu.output_dim(), 4u);
  const auto input = hflu.PrepareBatch({{"a", "b"}, {"b"}});
  const Tensor out = hflu.Forward(input).value();
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 4u);
  // Latent features are sigmoid outputs in (0, 1).
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_GT(out[i], 0.0f);
    EXPECT_LT(out[i], 1.0f);
  }
}

TEST(HfluTest, PreparePadsAndTruncates) {
  Rng rng(33);
  HfluConfig config;
  config.max_sequence_length = 3;
  Hflu hflu(config, WordsOf({"a"}), WordsOf({"a", "b"}), &rng);
  const auto input = hflu.PrepareBatch({{"a"}, {"a", "b", "a", "b", "a"}});
  ASSERT_EQ(input.sequences[0].size(), 3u);
  EXPECT_EQ(input.sequences[0][1], -1);  // Padded.
  EXPECT_EQ(input.sequences[1].size(), 3u);  // Truncated.
}

TEST(HfluTest, OovOnlyDocumentYieldsDefinedFeatures) {
  Rng rng(34);
  HfluConfig config;
  Hflu hflu(config, WordsOf({"known"}), WordsOf({"known"}), &rng);
  const auto input = hflu.PrepareBatch({{"unknown", "words"}});
  const Tensor out = hflu.Forward(input).value();
  for (size_t i = 0; i < out.size(); ++i) EXPECT_FALSE(std::isnan(out[i]));
}

// ---- FakeDetector end-to-end ------------------------------------------------------

struct Fixture {
  data::Dataset dataset;
  graph::HeterogeneousGraph graph;
  eval::TrainContext context;
};

Fixture MakeFixture(size_t articles, eval::LabelGranularity granularity,
                    double theta = 1.0) {
  auto dataset_result =
      data::GeneratePolitiFact(data::GeneratorOptions::Scaled(articles, 55));
  FKD_CHECK_OK(dataset_result.status());
  auto dataset = std::move(dataset_result).value();
  auto graph_result = dataset.BuildGraph();
  FKD_CHECK_OK(graph_result.status());

  Fixture fixture{std::move(dataset), std::move(graph_result).value(), {}};
  Rng rng(77);
  auto splits =
      data::KFoldTriSplits(fixture.dataset.articles.size(),
                           fixture.dataset.creators.size(),
                           fixture.dataset.subjects.size(), 5, &rng);
  FKD_CHECK_OK(splits.status());
  const auto& split = splits.value()[0];
  fixture.context.dataset = &fixture.dataset;
  fixture.context.graph = &fixture.graph;
  fixture.context.train_articles =
      data::SubsampleTraining(split.articles.train, theta, &rng);
  fixture.context.train_creators =
      data::SubsampleTraining(split.creators.train, theta, &rng);
  fixture.context.train_subjects =
      data::SubsampleTraining(split.subjects.train, theta, &rng);
  fixture.context.granularity = granularity;
  fixture.context.seed = 7;
  return fixture;
}

FakeDetectorConfig FastConfig() {
  FakeDetectorConfig config;
  config.epochs = 25;
  config.explicit_words = 60;
  config.latent_vocabulary = 200;
  config.hflu.max_sequence_length = 12;
  config.hflu.gru_hidden = 16;
  config.hflu.latent_dim = 12;
  config.hflu.embed_dim = 12;
  config.gdu_hidden = 24;
  return config;
}

TEST(FakeDetectorTest, TrainReducesLossAndBeatsChance) {
  auto fixture = MakeFixture(250, eval::LabelGranularity::kBinary);
  FakeDetector detector(FastConfig());
  ASSERT_TRUE(detector.Train(fixture.context).ok());

  const auto& losses = detector.train_stats().epoch_losses;
  ASSERT_FALSE(losses.empty());
  EXPECT_LT(losses.back(), losses.front() * 0.7f);

  auto predictions = detector.Predict();
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions.value().articles.size(), 250u);

  // Training accuracy well above chance.
  eval::ConfusionMatrix matrix(2);
  for (int32_t id : fixture.context.train_articles) {
    matrix.Add(data::BiClassOf(fixture.dataset.articles[id].label),
               predictions.value().articles[id]);
  }
  EXPECT_GT(matrix.Accuracy(), 0.7);
}

TEST(FakeDetectorTest, MultiClassPredictionsInRange) {
  auto fixture = MakeFixture(150, eval::LabelGranularity::kMulti);
  FakeDetectorConfig config = FastConfig();
  config.epochs = 10;
  FakeDetector detector(config);
  ASSERT_TRUE(detector.Train(fixture.context).ok());
  auto predictions = detector.Predict();
  ASSERT_TRUE(predictions.ok());
  for (int32_t p : predictions.value().articles) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 6);
  }
}

TEST(FakeDetectorTest, PredictBeforeTrainFails) {
  FakeDetector detector;
  EXPECT_EQ(detector.Predict().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FakeDetectorTest, DoubleTrainRejected) {
  auto fixture = MakeFixture(120, eval::LabelGranularity::kBinary);
  FakeDetectorConfig config = FastConfig();
  config.epochs = 2;
  FakeDetector detector(config);
  ASSERT_TRUE(detector.Train(fixture.context).ok());
  EXPECT_EQ(detector.Train(fixture.context).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FakeDetectorTest, EmptyTrainingSetRejected) {
  auto fixture = MakeFixture(120, eval::LabelGranularity::kBinary);
  fixture.context.train_creators.clear();
  FakeDetector detector(FastConfig());
  EXPECT_EQ(detector.Train(fixture.context).code(),
            StatusCode::kInvalidArgument);
}

TEST(FakeDetectorTest, MissingGraphRejected) {
  auto fixture = MakeFixture(120, eval::LabelGranularity::kBinary);
  fixture.context.graph = nullptr;
  FakeDetector detector(FastConfig());
  EXPECT_EQ(detector.Train(fixture.context).code(),
            StatusCode::kInvalidArgument);
}

TEST(FakeDetectorTest, ZeroDiffusionStepsRejected) {
  auto fixture = MakeFixture(120, eval::LabelGranularity::kBinary);
  FakeDetectorConfig config = FastConfig();
  config.diffusion_steps = 0;
  FakeDetector detector(config);
  EXPECT_EQ(detector.Train(fixture.context).code(),
            StatusCode::kInvalidArgument);
}

TEST(FakeDetectorTest, AblationsTrainToDifferentModels) {
  auto fixture = MakeFixture(150, eval::LabelGranularity::kBinary);
  FakeDetectorConfig config = FastConfig();
  config.epochs = 5;

  FakeDetector full(config);
  ASSERT_TRUE(full.Train(fixture.context).ok());

  FakeDetectorConfig plain_config = config;
  plain_config.gdu.plain_unit = true;
  FakeDetector plain(plain_config);
  ASSERT_TRUE(plain.Train(fixture.context).ok());
  EXPECT_LT(plain.ParameterCount(), full.ParameterCount());

  FakeDetectorConfig explicit_only = config;
  explicit_only.hflu.use_latent = false;
  FakeDetector no_latent(explicit_only);
  ASSERT_TRUE(no_latent.Train(fixture.context).ok());
  EXPECT_LT(no_latent.ParameterCount(), full.ParameterCount());

  FakeDetectorConfig latent_only = config;
  latent_only.hflu.use_explicit = false;
  FakeDetector no_explicit(latent_only);
  EXPECT_TRUE(no_explicit.Train(fixture.context).ok());
}

TEST(FakeDetectorTest, DeterministicGivenSeed) {
  auto fixture = MakeFixture(120, eval::LabelGranularity::kBinary);
  FakeDetectorConfig config = FastConfig();
  config.epochs = 4;
  FakeDetector a(config);
  ASSERT_TRUE(a.Train(fixture.context).ok());
  FakeDetector b(config);
  ASSERT_TRUE(b.Train(fixture.context).ok());
  EXPECT_EQ(a.Predict().value().articles, b.Predict().value().articles);
  EXPECT_EQ(a.train_stats().epoch_losses, b.train_stats().epoch_losses);
}

TEST(FakeDetectorTest, DeeperDiffusionStillTrains) {
  auto fixture = MakeFixture(120, eval::LabelGranularity::kBinary);
  FakeDetectorConfig config = FastConfig();
  config.epochs = 4;
  config.diffusion_steps = 3;
  FakeDetector detector(config);
  ASSERT_TRUE(detector.Train(fixture.context).ok());
  for (float loss : detector.train_stats().epoch_losses) {
    EXPECT_FALSE(std::isnan(loss));
  }
}

TEST(FakeDetectorTest, EarlyStoppingStopsAndRestoresBestWeights) {
  auto fixture = MakeFixture(200, eval::LabelGranularity::kBinary);
  FakeDetectorConfig config = FastConfig();
  config.epochs = 60;
  config.validation_fraction = 0.3f;
  config.early_stopping_patience = 5;
  FakeDetector detector(config);
  ASSERT_TRUE(detector.Train(fixture.context).ok());
  const TrainStats& stats = detector.train_stats();
  ASSERT_FALSE(stats.validation_losses.empty());
  EXPECT_EQ(stats.validation_losses.size(), stats.epoch_losses.size());
  EXPECT_LE(stats.best_epoch, stats.epoch_losses.size() - 1);
  // If stopping triggered, it did so `patience` epochs after the best one.
  if (stats.epoch_losses.size() < config.epochs) {
    EXPECT_EQ(stats.epoch_losses.size(),
              stats.best_epoch + config.early_stopping_patience + 1);
  }
  auto predictions = detector.Predict();
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions.value().articles.size(), 200u);
}

TEST(FakeDetectorTest, BadValidationFractionRejected) {
  auto fixture = MakeFixture(120, eval::LabelGranularity::kBinary);
  FakeDetectorConfig config = FastConfig();
  config.validation_fraction = 1.5f;
  FakeDetector detector(config);
  EXPECT_EQ(detector.Train(fixture.context).code(),
            StatusCode::kInvalidArgument);
}

TEST(FakeDetectorTest, NameMatchesPaper) {
  FakeDetector detector;
  EXPECT_EQ(detector.Name(), "FakeDetector");
}

TEST(FakeDetectorTest, TrainObserverSeesEveryEpoch) {
  struct RecordingObserver : obs::TrainObserver {
    std::string method;
    size_t planned_epochs = 0;
    size_t begins = 0;
    size_t ends = 0;
    size_t epochs_run_reported = 0;
    std::vector<obs::EpochStats> epochs;
    void OnTrainBegin(const std::string& m, size_t planned) override {
      method = m;
      planned_epochs = planned;
      ++begins;
    }
    void OnEpochEnd(const std::string& m, const obs::EpochStats& s) override {
      EXPECT_EQ(m, method);
      epochs.push_back(s);
    }
    void OnTrainEnd(const std::string& m, size_t epochs_run,
                    double seconds) override {
      EXPECT_EQ(m, method);
      EXPECT_GE(seconds, 0.0);
      epochs_run_reported = epochs_run;
      ++ends;
    }
  };

  auto fixture = MakeFixture(150, eval::LabelGranularity::kBinary);
  RecordingObserver observer;
  fixture.context.observer = &observer;
  FakeDetectorConfig config = FastConfig();
  config.epochs = 8;
  FakeDetector detector(config);
  ASSERT_TRUE(detector.Train(fixture.context).ok());

  EXPECT_EQ(observer.begins, 1u);
  EXPECT_EQ(observer.ends, 1u);
  EXPECT_EQ(observer.method, "FakeDetector");
  EXPECT_EQ(observer.planned_epochs, config.epochs);
  // Exactly one callback per epoch, epochs in order, timestamps monotone.
  ASSERT_EQ(observer.epochs.size(), config.epochs);
  EXPECT_EQ(observer.epochs_run_reported, config.epochs);
  double previous_total = 0.0;
  for (size_t i = 0; i < observer.epochs.size(); ++i) {
    const obs::EpochStats& stats = observer.epochs[i];
    EXPECT_EQ(stats.epoch, i);
    EXPECT_TRUE(std::isfinite(stats.loss));
    EXPECT_TRUE(std::isfinite(stats.grad_norm));
    EXPECT_GE(stats.seconds, 0.0);
    EXPECT_GE(stats.total_seconds, previous_total);
    previous_total = stats.total_seconds;
  }
  // The observed losses are the recorded train stats.
  const TrainStats& stats = detector.train_stats();
  ASSERT_EQ(stats.epoch_losses.size(), observer.epochs.size());
  for (size_t i = 0; i < observer.epochs.size(); ++i) {
    EXPECT_FLOAT_EQ(stats.epoch_losses[i], observer.epochs[i].loss);
  }
}

}  // namespace
}  // namespace core
}  // namespace fkd
