// Death tests: programmer errors (contract violations) must abort loudly
// via FKD_CHECK rather than corrupt memory or limp on.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/status.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "graph/alias_table.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace fkd {
namespace {

namespace ag = ::fkd::autograd;

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckMacroAborts) {
  EXPECT_DEATH(FKD_CHECK(false) << "boom", "Check failed");
  EXPECT_DEATH(FKD_CHECK_EQ(1, 2), "Check failed");
  EXPECT_DEATH(FKD_CHECK_LT(5, 3), "Check failed");
}

TEST(CheckDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(FKD_CHECK_OK(Status::NotFound("gone")), "NotFound");
}

TEST(CheckDeathTest, TensorRankViolations) {
  Tensor rank1 = Tensor::FromVector({1, 2, 3});
  EXPECT_DEATH(rank1.rows(), "Check failed");
  EXPECT_DEATH(Tensor(2, 2).Reshape({3, 3}), "Check failed");
}

TEST(CheckDeathTest, GemmShapeMismatch) {
  Tensor a(2, 3);
  Tensor b(4, 2);  // Inner dims disagree.
  Tensor c(2, 2);
  EXPECT_DEATH(Gemm(false, false, 1.0f, a, b, 0.0f, &c), "Check failed");
}

TEST(CheckDeathTest, ElementwiseShapeMismatch) {
  Tensor a(2, 2);
  Tensor b(2, 3);
  EXPECT_DEATH(Add(a, b), "Check failed");
  EXPECT_DEATH(Mul(a, b), "Check failed");
}

TEST(CheckDeathTest, BackwardNeedsScalar) {
  ag::Variable x(Tensor(2, 2), true);
  EXPECT_DEATH(ag::Backward(x), "scalar");
}

TEST(CheckDeathTest, BackwardNeedsTrainableGraph) {
  ag::Variable constant(Tensor(1, 1), false);
  EXPECT_DEATH(ag::Backward(constant), "no trainable parameters");
}

TEST(CheckDeathTest, UndefinedVariableUse) {
  ag::Variable empty;
  EXPECT_DEATH(empty.value(), "Check failed");
  ag::Variable ok(Tensor(1, 1), false);
  EXPECT_DEATH(ag::Add(ok, empty), "Check failed");
}

TEST(CheckDeathTest, GatherRowsOutOfRange) {
  ag::Variable x(Tensor(2, 2), false);
  EXPECT_DEATH(ag::GatherRows(x, {5}), "Check failed");
}

TEST(CheckDeathTest, RngContracts) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformInt(static_cast<uint64_t>(0)), "Check failed");
  EXPECT_DEATH(rng.Discrete({0.0, 0.0}), "Check failed");
  EXPECT_DEATH(rng.Discrete({-1.0, 2.0}), "Check failed");
}

TEST(CheckDeathTest, AliasTableRejectsEmptyAndNegative) {
  EXPECT_DEATH(graph::AliasTable({}), "Check failed");
  EXPECT_DEATH(graph::AliasTable({-1.0}), "Check failed");
}

TEST(CheckDeathTest, ConfusionMatrixLabelRange) {
  eval::ConfusionMatrix matrix(2);
  EXPECT_DEATH(matrix.Add(0, 2), "Check failed");
  EXPECT_DEATH(matrix.Add(-1, 0), "Check failed");
}

}  // namespace
}  // namespace fkd
