// Crash-safety tests: simulated ENOSPC / torn writes / process kills at
// every step of snapshot export and training checkpoints, plus at-rest
// corruption of every published file. The invariants under test:
//
//  1. an interrupted export/checkpoint NEVER publishes an accepted
//     directory — readers see the previous artifact or nothing;
//  2. a corrupted published artifact fails with a clean Corruption error —
//     never a crash, never a silent load of bad data;
//  3. training resumed from a checkpoint reproduces the uninterrupted
//     run's weights bit for bit, falling back past corrupt checkpoints.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/file_io.h"
#include "common/manifest.h"
#include "core/checkpoint.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "obs/flight_recorder.h"
#include "serve/engine.h"
#include "serve/model_store.h"
#include "serve/snapshot.h"

namespace fkd {
namespace {

namespace fs = std::filesystem;

class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    FKD_CHECK_OK(FaultInjector::Global().Configure(spec));
  }
  ~ScopedFaults() { FaultInjector::Global().Clear(); }
};

std::string TestDir(const std::string& stem) {
  const std::string path =
      (fs::temp_directory_path() / (stem + "_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(path);
  return path;
}

// ---- tiny deterministic training setup --------------------------------------

core::FakeDetectorConfig CrashConfig() {
  core::FakeDetectorConfig config;
  config.epochs = 5;
  config.explicit_words = 20;
  config.latent_vocabulary = 60;
  config.hflu.max_sequence_length = 8;
  config.hflu.gru_hidden = 6;
  config.hflu.latent_dim = 6;
  config.hflu.embed_dim = 6;
  config.gdu_hidden = 8;
  // Early stopping on: the resume path must round-trip the validation
  // bookkeeping and kept best weights too, not just the optimizer.
  config.validation_fraction = 0.25f;
  config.early_stopping_patience = 50;  // never triggers in 5 epochs
  return config;
}

struct CrashFixture {
  data::Dataset dataset;
  graph::HeterogeneousGraph graph;
  eval::TrainContext context;  // dataset/graph pointers into this struct
  std::vector<int32_t> train_articles, train_creators, train_subjects;
};

const CrashFixture& Fixture() {
  static CrashFixture* fixture = [] {
    auto dataset = data::GeneratePolitiFact(data::GeneratorOptions::Scaled(40, 36));
    FKD_CHECK_OK(dataset.status());
    auto graph = dataset.value().BuildGraph();
    FKD_CHECK_OK(graph.status());
    auto* f = new CrashFixture{std::move(dataset).value(),
                               std::move(graph).value(),
                               {},
                               {},
                               {},
                               {}};
    Rng rng(123);
    auto splits = data::KFoldTriSplits(f->dataset.articles.size(),
                                       f->dataset.creators.size(),
                                       f->dataset.subjects.size(), 4, &rng);
    FKD_CHECK_OK(splits.status());
    f->train_articles = splits.value()[0].articles.train;
    f->train_creators = splits.value()[0].creators.train;
    f->train_subjects = splits.value()[0].subjects.train;
    f->context.dataset = &f->dataset;
    f->context.graph = &f->graph;
    f->context.train_articles = f->train_articles;
    f->context.train_creators = f->train_creators;
    f->context.train_subjects = f->train_subjects;
    f->context.granularity = eval::LabelGranularity::kBinary;
    f->context.seed = 11;
    return f;
  }();
  return *fixture;
}

// Trains a fresh detector with `config`; aborts the test process on error
// (training here is setup, not the behaviour under test).
core::FakeDetector* TrainDetector(const core::FakeDetectorConfig& config) {
  auto* detector = new core::FakeDetector(config);
  FKD_CHECK_OK(detector->Train(Fixture().context));
  return detector;
}

void ExpectSameWeights(const core::FakeDetector& a,
                       const core::FakeDetector& b) {
  std::vector<nn::NamedParameter> pa, pb;
  a.model()->CollectParameters("", &pa);
  b.model()->CollectParameters("", &pb);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].name, pb[i].name);
    const Tensor& ta = pa[i].variable.value();
    const Tensor& tb = pb[i].variable.value();
    ASSERT_EQ(ta.shape(), tb.shape()) << pa[i].name;
    EXPECT_EQ(std::memcmp(ta.data(), tb.data(), ta.size() * sizeof(float)), 0)
        << "parameter " << pa[i].name << " drifted";
  }
  // The frozen diffusion states summarise the whole forward: equal states
  // are a second, independent witness of bit-identical weights.
  const Tensor& sa = a.frozen_creator_states();
  const Tensor& sb = b.frozen_creator_states();
  ASSERT_EQ(sa.shape(), sb.shape());
  EXPECT_EQ(std::memcmp(sa.data(), sb.data(), sa.size() * sizeof(float)), 0);
}

// The one trained detector shared by the snapshot-corruption tests.
const core::FakeDetector& SnapshotDetector() {
  static core::FakeDetector* detector = TrainDetector(CrashConfig());
  return *detector;
}

// ---- snapshot export under failure ------------------------------------------

TEST(CrashSnapshotTest, FailureAtEveryWriteStepNeverPublishes) {
  const core::FakeDetector& detector = SnapshotDetector();
  const std::string probe_dir = TestDir("fkd_crash_probe");

  // Count the write ops of one clean export, then replay it with an
  // injected failure at every single one of them.
  FaultInjector& injector = FaultInjector::Global();
  injector.Clear();
  ASSERT_TRUE(serve::ExportSnapshot(detector, probe_dir).ok());
  const uint64_t writes = injector.HitCount("io.write");
  const uint64_t fsyncs = injector.HitCount("io.fsync");
  ASSERT_GT(writes, 10u) << "export should write many records";
  fs::remove_all(probe_dir);

  const std::string dir = TestDir("fkd_crash_export_fail");
  for (uint64_t k = 1; k <= writes; ++k) {
    ScopedFaults faults("io.write:fail@" + std::to_string(k));
    const Status status = serve::ExportSnapshot(detector, dir);
    ASSERT_EQ(status.code(), StatusCode::kIoError) << "write " << k;
    ASSERT_FALSE(fs::exists(dir))
        << "failed export must not publish (write " << k << ")";
  }
  for (uint64_t k = 1; k <= fsyncs; ++k) {
    ScopedFaults faults("io.fsync:fail@" + std::to_string(k));
    ASSERT_FALSE(serve::ExportSnapshot(detector, dir).ok()) << "fsync " << k;
    ASSERT_FALSE(fs::exists(dir)) << "fsync " << k;
  }
  {
    ScopedFaults faults("io.rename:fail");
    ASSERT_FALSE(serve::ExportSnapshot(detector, dir).ok());
    ASSERT_FALSE(fs::exists(dir));
  }

  // Faults cleared: the same export now succeeds and loads.
  ASSERT_TRUE(serve::ExportSnapshot(detector, dir).ok());
  EXPECT_TRUE(serve::LoadSnapshot(dir).ok());
  fs::remove_all(dir);
}

TEST(CrashSnapshotTest, SimulatedKillMidExportLeavesNoSnapshot) {
  const core::FakeDetector& detector = SnapshotDetector();
  const std::string dir = TestDir("fkd_crash_export_kill");

  // A representative sample of kill points: first write, somewhere in the
  // middle of the weight records, the manifest write, an fsync, and the
  // publishing rename itself. Each runs in a death-test child so the kill
  // is a real process exit, not a cooperative unwind.
  const std::vector<std::string> kill_specs = {
      "io.write:crash@1",  "io.write:crash@9", "io.write:crash@13",
      "io.fsync:crash@2",  "io.rename:crash",
  };
  for (const std::string& spec : kill_specs) {
    EXPECT_EXIT(
        {
          FKD_CHECK_OK(FaultInjector::Global().Configure(spec));
          (void)serve::ExportSnapshot(detector, dir);
          ::_exit(0);  // unreachable when the fault fires
        },
        ::testing::ExitedWithCode(kFaultCrashExitCode), "")
        << spec;
    EXPECT_FALSE(fs::exists(dir)) << "kill at " << spec << " published";
    auto loaded = serve::LoadSnapshot(dir);
    EXPECT_FALSE(loaded.ok()) << spec;
  }
  fs::remove_all(dir + ".tmp-" + std::to_string(::getpid()));
}

// ---- published snapshot corrupted at rest -----------------------------------

// Byte-flips, truncates and deletes every manifest-listed file (plus the
// manifest itself) of a published snapshot; every mutation must surface as
// a clean Corruption, and restoring the bytes must make the snapshot whole
// again. Shared by the fp32 and the quantized/compressed sweeps.
void SweepByteFlipTruncateDelete(const std::string& dir) {
  auto entries = ReadManifest(dir);
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> files;
  for (const auto& entry : entries.value()) files.push_back(entry.file);
  files.push_back(kManifestFileName);  // the manifest itself is a target too
  ASSERT_GE(files.size(), 11u);

  for (const std::string& file : files) {
    const std::string path = dir + "/" + file;
    auto original = ReadFileToString(path);
    ASSERT_TRUE(original.ok()) << file;
    const std::string& bytes = original.value();
    ASSERT_FALSE(bytes.empty()) << file;

    // Byte flip in the middle (size unchanged: only the CRC can notice).
    {
      std::string flipped = bytes;
      flipped[flipped.size() / 2] ^= 0x20;
      ASSERT_TRUE(WriteStringToFile(path, flipped).ok());
      auto loaded = serve::LoadSnapshot(dir);
      ASSERT_FALSE(loaded.ok()) << "byte flip in " << file << " loaded";
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << file;
    }
    // Truncation to half.
    {
      ASSERT_TRUE(WriteStringToFile(path, bytes.substr(0, bytes.size() / 2)).ok());
      auto loaded = serve::LoadSnapshot(dir);
      ASSERT_FALSE(loaded.ok()) << "truncated " << file << " loaded";
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << file;
    }
    // Deletion.
    {
      fs::remove(path);
      auto loaded = serve::LoadSnapshot(dir);
      ASSERT_FALSE(loaded.ok()) << "deleted " << file << " loaded";
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << file;
    }
    // Restore and confirm the snapshot is whole again.
    ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  }
  EXPECT_TRUE(serve::LoadSnapshot(dir).ok());
}

TEST(CrashSnapshotTest, ByteFlipTruncateDeleteEveryFileFailsCleanly) {
  const core::FakeDetector& detector = SnapshotDetector();
  const std::string dir = TestDir("fkd_crash_corrupt");
  ASSERT_TRUE(serve::ExportSnapshot(detector, dir).ok());
  ASSERT_TRUE(serve::LoadSnapshot(dir).ok());
  SweepByteFlipTruncateDelete(dir);
  fs::remove_all(dir);
}

// Same sweep over the production shape of a quantized artifact: int8
// weights in the v2 container, LZ-compressed cold tier. Quantized records
// and compressed blocks must be exactly as loudly protected as fp32 ones —
// by the manifest CRC from the outside and the per-block CRC within.
TEST(CrashSnapshotTest, QuantizedCompressedCorruptionFailsCleanly) {
  const core::FakeDetector& detector = SnapshotDetector();
  const std::string dir = TestDir("fkd_crash_corrupt_quant");
  serve::SnapshotOptions options;
  options.weights_codec = nn::TensorCodec::kInt8;
  options.cold_codec = BlockCodecId::kLz;
  ASSERT_TRUE(serve::ExportSnapshot(detector, dir, options).ok());
  ASSERT_TRUE(serve::LoadSnapshot(dir).ok());
  // The sweep must actually visit the new artifact kinds.
  ASSERT_TRUE(fs::exists(dir + "/states.fkdw.fkdz"));
  ASSERT_TRUE(fs::exists(dir + "/article_words.tsv.fkdz"));
  SweepByteFlipTruncateDelete(dir);
  fs::remove_all(dir);
}

TEST(CrashSnapshotTest, DuplicateConfigKeyNamedInError) {
  const core::FakeDetector& detector = SnapshotDetector();
  const std::string dir = TestDir("fkd_crash_dup_key");
  ASSERT_TRUE(serve::ExportSnapshot(detector, dir).ok());

  // Append a second opinion about gdu_hidden, then re-bless the manifest so
  // only the duplicate-key check (not the CRC gate) can reject the load.
  auto config = ReadFileToString(dir + "/config.txt");
  ASSERT_TRUE(config.ok());
  ASSERT_TRUE(
      WriteStringToFile(dir + "/config.txt", config.value() + "gdu_hidden=8\n")
          .ok());
  auto entries = ReadManifest(dir);
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> files;
  for (const auto& entry : entries.value()) files.push_back(entry.file);
  ASSERT_TRUE(WriteManifest(dir, files).ok());

  auto loaded = serve::LoadSnapshot(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("duplicate key 'gdu_hidden'"),
            std::string::npos)
      << loaded.status().message();
  fs::remove_all(dir);
}

// ---- training checkpoint / resume -------------------------------------------

TEST(CrashCheckpointTest, ResumeReproducesUninterruptedRunBitForBit) {
  // Reference: one uninterrupted 5-epoch run, no checkpointing.
  core::FakeDetectorConfig config = CrashConfig();
  std::unique_ptr<core::FakeDetector> full(TrainDetector(config));

  // Interrupted run: 3 epochs with checkpointing, then a fresh process
  // image (a new detector) resumes from the newest checkpoint to 5.
  const std::string ckpt_dir = TestDir("fkd_crash_resume");
  config.checkpoint_dir = ckpt_dir;
  core::FakeDetectorConfig first_leg = config;
  first_leg.epochs = 3;
  std::unique_ptr<core::FakeDetector> interrupted(TrainDetector(first_leg));
  ASSERT_TRUE(fs::exists(ckpt_dir + "/ckpt-3"));

  std::unique_ptr<core::FakeDetector> resumed(TrainDetector(config));
  ExpectSameWeights(*full, *resumed);
  // Checkpoint pruning: only the newest `checkpoint_keep` survive.
  EXPECT_FALSE(fs::exists(ckpt_dir + "/ckpt-3"));
  EXPECT_TRUE(fs::exists(ckpt_dir + "/ckpt-5"));
  fs::remove_all(ckpt_dir);
}

TEST(CrashCheckpointTest, CorruptNewestCheckpointFallsBackToPrevious) {
  core::FakeDetectorConfig config = CrashConfig();
  std::unique_ptr<core::FakeDetector> full(TrainDetector(config));

  const std::string ckpt_dir = TestDir("fkd_crash_fallback");
  config.checkpoint_dir = ckpt_dir;
  core::FakeDetectorConfig first_leg = config;
  first_leg.epochs = 4;
  std::unique_ptr<core::FakeDetector> interrupted(TrainDetector(first_leg));
  ASSERT_TRUE(fs::exists(ckpt_dir + "/ckpt-4"));
  ASSERT_TRUE(fs::exists(ckpt_dir + "/ckpt-3"));

  // Rot the newest checkpoint's weights: resume must skip it (with a
  // warning) and continue from ckpt-3 — landing on the same bits as the
  // uninterrupted run, since epochs 3 and 4 are then re-run identically.
  const std::string victim = ckpt_dir + "/ckpt-4/model.fkdw";
  auto bytes = ReadFileToString(victim);
  ASSERT_TRUE(bytes.ok());
  std::string flipped = bytes.value();
  flipped[flipped.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(victim, flipped).ok());

  std::unique_ptr<core::FakeDetector> resumed(TrainDetector(config));
  ExpectSameWeights(*full, *resumed);
  fs::remove_all(ckpt_dir);
}

TEST(CrashCheckpointTest, CheckpointWriteFailureDoesNotFailTraining) {
  core::FakeDetectorConfig config = CrashConfig();
  const std::string ckpt_dir = TestDir("fkd_crash_ckpt_fail");
  config.checkpoint_dir = ckpt_dir;

  // Every checkpoint publish fails at the rename; training must still
  // finish (graceful degradation: only resumability is lost).
  ScopedFaults faults("io.rename:fail");
  core::FakeDetector detector(config);
  ASSERT_TRUE(detector.Train(Fixture().context).ok());
  EXPECT_FALSE(fs::exists(ckpt_dir + "/ckpt-" + std::to_string(config.epochs)));
  fs::remove_all(ckpt_dir);
}

TEST(CrashCheckpointTest, KillDuringCheckpointThenRetrainMatches) {
  core::FakeDetectorConfig config = CrashConfig();
  std::unique_ptr<core::FakeDetector> full(TrainDetector(config));

  const std::string ckpt_dir = TestDir("fkd_crash_ckpt_kill");
  config.checkpoint_dir = ckpt_dir;

  // The child is killed publishing its first checkpoint: the directory
  // must hold no accepted checkpoint, only staging litter.
  EXPECT_EXIT(
      {
        FKD_CHECK_OK(FaultInjector::Global().Configure("io.rename:crash@1"));
        core::FakeDetector victim(config);
        (void)victim.Train(Fixture().context);
        ::_exit(0);  // unreachable
      },
      ::testing::ExitedWithCode(kFaultCrashExitCode), "");
  ASSERT_TRUE(fs::exists(ckpt_dir));
  EXPECT_FALSE(fs::exists(ckpt_dir + "/ckpt-1"));

  // Training again over the same directory finds nothing to resume, starts
  // fresh, and matches the uninterrupted run (also pruning the litter).
  std::unique_ptr<core::FakeDetector> retrained(TrainDetector(config));
  ExpectSameWeights(*full, *retrained);
  fs::remove_all(ckpt_dir);
}

// ---- memory-budget demotion under failure ------------------------------------

// A 1-byte budget store: every registered version is immediately over
// budget, so the spill export runs inside Load() itself — which makes the
// demotion path addressable by the same at-every-write fault sweep as the
// snapshot export.
serve::ModelStoreOptions TinyBudgetOptions(const std::string& spill_dir) {
  serve::ModelStoreOptions options;
  options.memory_budget_bytes = 1;
  options.spill_directory = spill_dir;
  return options;
}

TEST(CrashStoreTest, WriteFailureAtEveryDemotionStepKeepsStoreServing) {
  const core::FakeDetector& detector = SnapshotDetector();
  const std::string dir = TestDir("fkd_crash_store_src");
  const std::string spill = TestDir("fkd_crash_store_spill");
  ASSERT_TRUE(serve::ExportSnapshot(detector, dir).ok());

  // Count the writes of one clean demotion (the lossless spill export).
  FaultInjector& injector = FaultInjector::Global();
  injector.Clear();
  uint64_t writes = 0;
  {
    serve::VersionedModelStore store(TinyBudgetOptions(spill));
    const uint64_t before = injector.HitCount("io.write");
    auto v1 = store.Load(dir);
    ASSERT_TRUE(v1.ok());
    writes = injector.HitCount("io.write") - before;
    ASSERT_GT(writes, 10u) << "demotion should spill through the full export";
    ASSERT_EQ(store.Stats().demoted, 1u);
  }
  fs::remove_all(spill);

  // Replay with an injected failure at every single spill write: the Load
  // itself must still succeed, nothing is demoted (the entry is quarantined
  // from the budget loop instead), and the version keeps serving.
  for (uint64_t k = 1; k <= writes; ++k) {
    fs::remove_all(spill);
    serve::VersionedModelStore store(TinyBudgetOptions(spill));
    ScopedFaults faults("io.write:fail@" + std::to_string(k));
    auto v1 = store.Load(dir);
    ASSERT_TRUE(v1.ok()) << "write " << k;
    EXPECT_EQ(store.Stats().demoted, 0u) << "write " << k;
    auto got = store.Get(v1.value()->version);
    ASSERT_TRUE(got.ok()) << "write " << k;
    ASSERT_NE(got.value()->snapshot, nullptr) << "write " << k;
  }

  // Faults cleared: the same store demotes and transparently re-promotes.
  fs::remove_all(spill);
  serve::VersionedModelStore store(TinyBudgetOptions(spill));
  auto v1 = store.Load(dir);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(store.Stats().demoted, 1u);
  auto promoted = store.Get(v1.value()->version);
  ASSERT_TRUE(promoted.ok());
  EXPECT_NE(promoted.value()->snapshot, nullptr);
  EXPECT_EQ(store.Stats().promotions, 1u);
  fs::remove_all(spill);
  fs::remove_all(dir);
}

TEST(CrashStoreTest, KillAtEveryDemotionWriteLeavesStoreLoadable) {
  const core::FakeDetector& detector = SnapshotDetector();
  const std::string dir = TestDir("fkd_crash_store_kill_src");
  const std::string spill = TestDir("fkd_crash_store_kill_spill");
  ASSERT_TRUE(serve::ExportSnapshot(detector, dir).ok());

  // Kill points across the spill export: early writes, mid-weights, the
  // manifest, an fsync, and the publishing rename. After each real process
  // death the invariant is: the spill directory holds either a complete,
  // loadable snapshot or nothing — and the source snapshot is untouched,
  // so a restarted store always comes back.
  const std::vector<std::string> kill_specs = {
      "io.write:crash@1", "io.write:crash@7", "io.write:crash@13",
      "io.fsync:crash@1", "io.rename:crash",
  };
  for (const std::string& spec : kill_specs) {
    fs::remove_all(spill);
    EXPECT_EXIT(
        {
          FKD_CHECK_OK(FaultInjector::Global().Configure(spec));
          serve::VersionedModelStore victim(TinyBudgetOptions(spill));
          (void)victim.Load(dir);  // demotion inside Load hits the fault
          ::_exit(0);              // unreachable when the fault fires
        },
        ::testing::ExitedWithCode(kFaultCrashExitCode), "")
        << spec;
    const std::string spilled = spill + "/v1";
    if (fs::exists(spilled)) {
      EXPECT_TRUE(serve::LoadSnapshot(spilled).ok())
          << "kill at " << spec << " published a broken spill";
    }
    // The restarted store loads the source snapshot as if nothing happened.
    serve::VersionedModelStore restarted(TinyBudgetOptions(spill));
    auto reloaded = restarted.Load(dir);
    ASSERT_TRUE(reloaded.ok()) << spec;
    auto got = restarted.Get(reloaded.value()->version);
    ASSERT_TRUE(got.ok()) << spec;
    EXPECT_NE(got.value()->snapshot, nullptr) << spec;
  }
  fs::remove_all(spill);
  fs::remove_all(dir);
}

// ---- flight recorder on the way down ----------------------------------------

// A fault-injected crash mid-batch must leave a readable flight-recorder
// dump with the in-flight request's lifecycle events in it — the "black
// box" a postmortem starts from.
TEST(CrashFlightRecorderTest, FatalFaultDumpsInFlightRequestEvents) {
  const core::FakeDetector& detector = SnapshotDetector();
  const std::string snapshot_dir = TestDir("fkd_crash_recorder_snapshot");
  ASSERT_TRUE(serve::ExportSnapshot(detector, snapshot_dir).ok());
  auto loaded = serve::LoadSnapshot(snapshot_dir);
  ASSERT_TRUE(loaded.ok());
  auto snapshot =
      std::make_shared<const serve::Snapshot>(std::move(loaded).value());

  const std::string dump_path = TestDir("fkd_crash_recorder") + ".dump";
  fs::remove(dump_path);
  // Both parent and death-test child cache this path on first
  // FlightRecorder::Get(); the child is the only one that dumps.
  ASSERT_EQ(setenv("FKD_FLIGHT_RECORDER_PATH", dump_path.c_str(), 1), 0);

  EXPECT_EXIT(
      {
        // The same arming surface production uses: FKD_FAULTS grammar via
        // Configure. The first scoring batch dies with the request still
        // in flight.
        FKD_CHECK_OK(FaultInjector::Global().Configure("serve.batch:crash@1"));
        serve::InferenceEngine engine(snapshot);
        FKD_CHECK_OK(engine.Start());
        serve::ArticleRequest request;
        request.text = "doomed request";
        auto submitted = engine.Submit(std::move(request));
        FKD_CHECK(submitted.ok());
        (void)submitted.value().get();  // never resolves: the batch crashes
        ::_exit(0);                     // unreachable
      },
      ::testing::ExitedWithCode(kFaultCrashExitCode), "");

  auto dumped = ReadFileToString(dump_path);
  ASSERT_TRUE(dumped.ok()) << "crash left no flight-recorder dump at "
                           << dump_path;
  const std::string& text = dumped.value();
  EXPECT_NE(text.find("=== fkd flight recorder ==="), std::string::npos);
  EXPECT_NE(text.find("fault_site=serve.batch"), std::string::npos);
  // The in-flight request's lifecycle is visible: accepted, queued, batch
  // formed, then the injected fault itself.
  EXPECT_NE(text.find("engine_start"), std::string::npos);
  EXPECT_NE(text.find("engine_enqueue"), std::string::npos);
  EXPECT_NE(text.find("batch_start"), std::string::npos);
  EXPECT_NE(text.find("fault"), std::string::npos);
  EXPECT_NE(text.find("=== end of dump ==="), std::string::npos);

  ASSERT_EQ(unsetenv("FKD_FLIGHT_RECORDER_PATH"), 0);
  fs::remove(dump_path);
  fs::remove_all(snapshot_dir);
}

}  // namespace
}  // namespace fkd
