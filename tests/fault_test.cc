#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/manifest.h"

namespace fkd {
namespace {

namespace fs = std::filesystem;

// Arms the global injector for one test and guarantees it is cleared even
// when an assertion fails — leaked rules would poison every later test in
// the process.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    FKD_CHECK_OK(FaultInjector::Global().Configure(spec));
  }
  ~ScopedFaults() { FaultInjector::Global().Clear(); }
};

std::string TestDir(const std::string& stem) {
  const std::string path =
      (fs::temp_directory_path() /
       (stem + "_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

// ---- FaultInjector ----------------------------------------------------------

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_EQ(injector.Hit("io.write"), FaultAction::kNone);
  EXPECT_TRUE(injector.Inject("io.write").ok());
  EXPECT_EQ(injector.HitCount("io.write"), 2u);
}

TEST(FaultInjectorTest, ParsesActionsAndRejectsGarbage) {
  FaultInjector injector;
  EXPECT_TRUE(injector.Configure("io.write:fail").ok());
  EXPECT_TRUE(injector.Configure("io.fsync:torn,io.rename:fatal").ok());
  EXPECT_TRUE(injector.Configure("serve.batch:fail@2*3").ok());
  EXPECT_TRUE(injector.Configure("").ok());  // empty spec = clear
  EXPECT_FALSE(injector.enabled());

  EXPECT_FALSE(injector.Configure("io.write").ok());          // no action
  EXPECT_FALSE(injector.Configure("io.write:explode").ok());  // bad action
  EXPECT_FALSE(injector.Configure(":fail").ok());             // no site
  EXPECT_FALSE(injector.Configure("io.write:fail@x").ok());   // bad ordinal
  EXPECT_FALSE(injector.Configure("io.write:fail*").ok());    // bad count
  EXPECT_FALSE(injector.Configure("a:fail,a:torn").ok());     // dup site
}

TEST(FaultInjectorTest, ArmsAtNthHit) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("s:fail@3").ok());
  EXPECT_EQ(injector.Hit("s"), FaultAction::kNone);
  EXPECT_EQ(injector.Hit("s"), FaultAction::kNone);
  EXPECT_EQ(injector.Hit("s"), FaultAction::kFail);
  EXPECT_EQ(injector.Hit("s"), FaultAction::kFail);  // unbounded from there
  EXPECT_EQ(injector.Hit("other"), FaultAction::kNone);
}

TEST(FaultInjectorTest, TriggerCountLimitsConsecutiveFailures) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("s:fail@2*2").ok());
  EXPECT_EQ(injector.Hit("s"), FaultAction::kNone);
  EXPECT_EQ(injector.Hit("s"), FaultAction::kFail);
  EXPECT_EQ(injector.Hit("s"), FaultAction::kFail);
  EXPECT_EQ(injector.Hit("s"), FaultAction::kNone);  // exhausted: recovery
}

TEST(FaultInjectorTest, InjectMapsActionsToStatuses) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("a:fail,b:fatal,c:torn").ok());
  EXPECT_EQ(injector.Inject("a").code(), StatusCode::kIoError);
  EXPECT_EQ(injector.Inject("b").code(), StatusCode::kInternal);
  EXPECT_EQ(injector.Inject("c").code(), StatusCode::kIoError);
  EXPECT_TRUE(injector.Inject("a").IsRetryable());
  EXPECT_FALSE(injector.Inject("b").IsRetryable());
}

TEST(FaultInjectorTest, ClearResetsRulesAndCounters) {
  FaultInjector injector;
  ASSERT_TRUE(injector.Configure("s:fail").ok());
  EXPECT_EQ(injector.Hit("s"), FaultAction::kFail);
  injector.Clear();
  EXPECT_FALSE(injector.enabled());
  EXPECT_EQ(injector.HitCount("s"), 0u);
  EXPECT_EQ(injector.Hit("s"), FaultAction::kNone);
}

// ---- CRC-32C ----------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / circulated reference vectors for the Castagnoli polynomial.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "incrementally checksummed payload";
  uint32_t rolling = 0;
  for (char c : data) rolling = Crc32cExtend(rolling, &c, 1);
  EXPECT_EQ(rolling, Crc32c(data.data(), data.size()));
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data = "bit rot target";
  const uint32_t clean = Crc32c(data.data(), data.size());
  data[3] ^= 0x04;
  EXPECT_NE(Crc32c(data.data(), data.size()), clean);
}

// ---- FileWriter -------------------------------------------------------------

TEST(FileWriterTest, WriteCloseRoundTrip) {
  const std::string dir = TestDir("fkd_fault_fw");
  const std::string path = dir + "/out.bin";
  auto writer = FileWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().Append("hello ").ok());
  ASSERT_TRUE(writer.value().Append("world").ok());
  EXPECT_EQ(writer.value().bytes_written(), 11u);
  ASSERT_TRUE(writer.value().Close().ok());

  auto read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), "hello world");
  fs::remove_all(dir);
}

TEST(FileWriterTest, InjectedWriteFailureSurfacesAsIoError) {
  const std::string dir = TestDir("fkd_fault_fw_fail");
  ScopedFaults faults("io.write:fail@2");
  auto writer = FileWriter::Open(dir + "/out.bin");
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer.value().Append("first").ok());
  const Status second = writer.value().Append("second");
  EXPECT_EQ(second.code(), StatusCode::kIoError);
  fs::remove_all(dir);
}

TEST(FileWriterTest, TornWriteLandsHalfTheBytes) {
  const std::string dir = TestDir("fkd_fault_fw_torn");
  const std::string path = dir + "/out.bin";
  {
    ScopedFaults faults("io.write:torn");
    auto writer = FileWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    const Status torn = writer.value().Append("0123456789");
    EXPECT_EQ(torn.code(), StatusCode::kIoError);
  }
  auto read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), "01234") << "torn write must land a prefix";
  fs::remove_all(dir);
}

TEST(FileWriterTest, InjectedFsyncFailureFailsClose) {
  const std::string dir = TestDir("fkd_fault_fw_fsync");
  ScopedFaults faults("io.fsync:fail");
  auto writer = FileWriter::Open(dir + "/out.bin");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().Append("data").ok());
  EXPECT_EQ(writer.value().Close().code(), StatusCode::kIoError);
  fs::remove_all(dir);
}

// ---- StagedDir --------------------------------------------------------------

TEST(StagedDirTest, CommitPublishesAtomically) {
  const std::string dir = TestDir("fkd_fault_staged");
  const std::string final_path = dir + "/artifact";
  auto staged = StagedDir::Create(final_path);
  ASSERT_TRUE(staged.ok());
  EXPECT_FALSE(fs::exists(final_path));
  ASSERT_TRUE(
      WriteStringToFile(staged.value().path() + "/payload.txt", "v1").ok());
  ASSERT_TRUE(staged.value().Commit().ok());
  EXPECT_TRUE(fs::exists(final_path + "/payload.txt"));
  EXPECT_FALSE(fs::exists(staged.value().path()));
  fs::remove_all(dir);
}

TEST(StagedDirTest, AbandonedStagingIsRemoved) {
  const std::string dir = TestDir("fkd_fault_staged_abandon");
  const std::string final_path = dir + "/artifact";
  std::string staging_path;
  {
    auto staged = StagedDir::Create(final_path);
    ASSERT_TRUE(staged.ok());
    staging_path = staged.value().path();
    ASSERT_TRUE(
        WriteStringToFile(staging_path + "/payload.txt", "half done").ok());
    // No Commit: simulated error path.
  }
  EXPECT_FALSE(fs::exists(staging_path));
  EXPECT_FALSE(fs::exists(final_path));
  fs::remove_all(dir);
}

TEST(StagedDirTest, CommitReplacesExistingDirectory) {
  const std::string dir = TestDir("fkd_fault_staged_replace");
  const std::string final_path = dir + "/artifact";
  for (int version = 1; version <= 2; ++version) {
    auto staged = StagedDir::Create(final_path);
    ASSERT_TRUE(staged.ok());
    ASSERT_TRUE(WriteStringToFile(staged.value().path() + "/payload.txt",
                                  "v" + std::to_string(version))
                    .ok());
    ASSERT_TRUE(staged.value().Commit().ok());
  }
  auto read_back = ReadFileToString(final_path + "/payload.txt");
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), "v2");
  fs::remove_all(dir);
}

TEST(StagedDirTest, InjectedRenameFailureLeavesNothingPublished) {
  const std::string dir = TestDir("fkd_fault_staged_rename");
  const std::string final_path = dir + "/artifact";
  {
    ScopedFaults faults("io.rename:fail");
    auto staged = StagedDir::Create(final_path);
    ASSERT_TRUE(staged.ok());
    ASSERT_TRUE(
        WriteStringToFile(staged.value().path() + "/payload.txt", "v1").ok());
    EXPECT_EQ(staged.value().Commit().code(), StatusCode::kIoError);
  }
  EXPECT_FALSE(fs::exists(final_path));
  fs::remove_all(dir);
}

// ---- Manifest ---------------------------------------------------------------

TEST(ManifestTest, WriteVerifyRoundTrip) {
  const std::string dir = TestDir("fkd_fault_manifest");
  ASSERT_TRUE(WriteStringToFile(dir + "/a.txt", "alpha").ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/b.bin", std::string(100, '\x7f')).ok());
  ASSERT_TRUE(WriteManifest(dir, {"a.txt", "b.bin"}).ok());
  EXPECT_TRUE(VerifyManifest(dir).ok());

  auto entries = ReadManifest(dir);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 2u);
  EXPECT_EQ(entries.value()[0].file, "a.txt");
  EXPECT_EQ(entries.value()[0].size, 5u);
  fs::remove_all(dir);
}

TEST(ManifestTest, MissingManifestIsNotFound) {
  const std::string dir = TestDir("fkd_fault_manifest_missing");
  EXPECT_EQ(VerifyManifest(dir).code(), StatusCode::kNotFound);
  fs::remove_all(dir);
}

TEST(ManifestTest, ByteFlipFailsVerification) {
  const std::string dir = TestDir("fkd_fault_manifest_flip");
  ASSERT_TRUE(WriteStringToFile(dir + "/a.txt", "alpha beta gamma").ok());
  ASSERT_TRUE(WriteManifest(dir, {"a.txt"}).ok());
  ASSERT_TRUE(VerifyManifest(dir).ok());

  // Same size, one flipped bit: only the CRC can catch this.
  std::fstream f(dir + "/a.txt", std::ios::in | std::ios::out);
  f.seekp(6);
  f.put('X');
  f.close();
  const Status status = VerifyManifest(dir);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("a.txt"), std::string::npos)
      << "corruption error must name the bad file: " << status.message();
  fs::remove_all(dir);
}

TEST(ManifestTest, TruncationAndDeletionFailVerification) {
  const std::string dir = TestDir("fkd_fault_manifest_trunc");
  ASSERT_TRUE(WriteStringToFile(dir + "/a.txt", "twelve bytes").ok());
  ASSERT_TRUE(WriteManifest(dir, {"a.txt"}).ok());

  fs::resize_file(dir + "/a.txt", 4);
  EXPECT_EQ(VerifyManifest(dir).code(), StatusCode::kCorruption);

  fs::remove(dir + "/a.txt");
  EXPECT_EQ(VerifyManifest(dir).code(), StatusCode::kCorruption);
  fs::remove_all(dir);
}

TEST(ManifestTest, TamperedManifestLinesRejected) {
  const std::string dir = TestDir("fkd_fault_manifest_tamper");
  ASSERT_TRUE(WriteStringToFile(dir + "/a.txt", "alpha").ok());
  ASSERT_TRUE(WriteManifest(dir, {"a.txt"}).ok());

  auto manifest = ReadFileToString(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  // Corrupt the header.
  ASSERT_TRUE(WriteStringToFile(dir + "/" + kManifestFileName,
                                "not a manifest\n")
                  .ok());
  EXPECT_EQ(ReadManifest(dir).status().code(), StatusCode::kCorruption);

  // Path traversal in an entry name must be rejected before any file I/O.
  ASSERT_TRUE(WriteStringToFile(dir + "/" + kManifestFileName,
                                "fkd-manifest v1\n5 00000000 ../evil\n")
                  .ok());
  EXPECT_EQ(ReadManifest(dir).status().code(), StatusCode::kCorruption);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace fkd
