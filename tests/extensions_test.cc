// Tests for the extension components: SliceCols, basic-RNN and LSTM cells,
// cell-configurable encoders, node2vec, TF-IDF features, mutual-information
// selection and McNemar significance.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "baselines/gcn.h"
#include "baselines/node2vec.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "eval/significance.h"
#include "graph/random_walk.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "text/features.h"
#include "tests/test_util.h"

namespace fkd {
namespace {

namespace ag = ::fkd::autograd;
using ::fkd::testing::ExpectGradientsMatch;
using ::fkd::testing::RandomTensor;
using ::fkd::testing::WeightedSum;

// ---- SliceCols -----------------------------------------------------------------

TEST(SliceColsTest, ValuesAndShape) {
  ag::Variable x(Tensor::FromRows({{1, 2, 3, 4}, {5, 6, 7, 8}}), false);
  const Tensor middle = ag::SliceCols(x, 1, 2).value();
  EXPECT_TRUE(middle.AllClose(Tensor::FromRows({{2, 3}, {6, 7}})));
  EXPECT_TRUE(ag::SliceCols(x, 0, 4).value() == x.value());
}

TEST(SliceColsTest, GradCheck) {
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        const auto left = ag::SliceCols(leaves[0], 0, 2);
        const auto right = ag::SliceCols(leaves[0], 2, 3);
        return ag::AddN({WeightedSum(left, 1), WeightedSum(ag::Tanh(right), 2)});
      },
      {RandomTensor(3, 5, 70, 0.5f)});
}

// ---- BasicRnnCell / LstmCell ------------------------------------------------------

TEST(BasicRnnCellTest, StepMatchesManualFormula) {
  Rng rng(71);
  nn::BasicRnnCell cell(2, 2, &rng);
  std::vector<nn::NamedParameter> params;
  cell.CollectParameters("", &params);
  ASSERT_EQ(params.size(), 3u);  // input w+b, hidden w.
  params[0].variable.mutable_value() = Tensor::FromRows({{1, 0}, {0, 1}});
  params[1].variable.mutable_value() = Tensor::FromRows({{0, 0}});
  params[2].variable.mutable_value() = Tensor::FromRows({{0.5, 0}, {0, 0.5}});

  ag::Variable x(Tensor::FromRows({{0.3f, -0.2f}}), false);
  ag::Variable h(Tensor::FromRows({{0.4f, 0.8f}}), false);
  const Tensor next = cell.Step(x, h).value();
  EXPECT_NEAR(next.At(0, 0), std::tanh(0.3f + 0.2f), 1e-5f);
  EXPECT_NEAR(next.At(0, 1), std::tanh(-0.2f + 0.4f), 1e-5f);
}

TEST(BasicRnnCellTest, GradCheck) {
  Rng rng(72);
  nn::BasicRnnCell cell(2, 3, &rng);
  ExpectGradientsMatch(
      [&cell](const std::vector<ag::Variable>& leaves) {
        ag::Variable h = cell.InitialState(2);
        h = cell.Step(leaves[0], h);
        h = cell.Step(leaves[1], h);
        return WeightedSum(h);
      },
      {RandomTensor(2, 2, 73, 0.5f), RandomTensor(2, 2, 74, 0.5f)});
}

TEST(LstmCellTest, StateShapeAndOutput) {
  Rng rng(75);
  nn::LstmCell cell(3, 4, &rng);
  EXPECT_EQ(cell.state_dim(), 8u);
  ag::Variable x(RandomTensor(5, 3, 76), false);
  ag::Variable state = cell.InitialState(5);
  EXPECT_EQ(state.value().cols(), 8u);
  const ag::Variable next = cell.Step(x, state);
  EXPECT_EQ(next.value().cols(), 8u);
  const ag::Variable output = cell.Output(next);
  EXPECT_EQ(output.value().cols(), 4u);
  // h = o * tanh(c): bounded.
  EXPECT_LE(output.value().MaxAbs(), 1.0f);
}

TEST(LstmCellTest, ForgetBiasInitialisedToOne) {
  Rng rng(77);
  nn::LstmCell cell(2, 3, &rng);
  std::vector<nn::NamedParameter> params;
  cell.CollectParameters("lstm", &params);
  bool found = false;
  for (const auto& p : params) {
    if (p.name == "lstm/forget_x/bias") {
      found = true;
      for (size_t i = 0; i < p.variable.value().size(); ++i) {
        EXPECT_EQ(p.variable.value()[i], 1.0f);
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(LstmCellTest, GradCheckTwoSteps) {
  Rng rng(78);
  nn::LstmCell cell(2, 2, &rng);
  ExpectGradientsMatch(
      [&cell](const std::vector<ag::Variable>& leaves) {
        ag::Variable state = cell.InitialState(2);
        state = cell.Step(leaves[0], state);
        state = cell.Step(leaves[1], state);
        return WeightedSum(cell.Output(state));
      },
      {RandomTensor(2, 2, 79, 0.5f), RandomTensor(2, 2, 80, 0.5f)});
}

class CellKindSweep : public ::testing::TestWithParam<nn::RnnCellKind> {};

TEST_P(CellKindSweep, EncoderLearnsSeparableSequences) {
  Rng rng(81);
  nn::RecurrentEncoder encoder(4, 4, 4, &rng, nn::SequencePooling::kLastState,
                               GetParam());
  nn::Linear head(4, 2, &rng);
  std::vector<ag::Variable> params;
  {
    std::vector<nn::NamedParameter> named;
    encoder.CollectParameters("e", &named);
    head.CollectParameters("h", &named);
    for (auto& p : named) params.push_back(p.variable);
  }
  nn::Adam optimizer(params, 0.05f);
  const std::vector<std::vector<int32_t>> sequences = {
      {0, 1, 0}, {1, 0, 1}, {2, 3, 2}, {3, 2, 3}};
  const std::vector<int32_t> labels = {0, 0, 1, 1};
  float first = 0.0f, last = 0.0f;
  for (int epoch = 0; epoch < 80; ++epoch) {
    optimizer.ZeroGrad();
    ag::Variable loss = ag::SoftmaxCrossEntropy(
        head.Forward(encoder.Forward(sequences, 3)), labels);
    ag::Backward(loss);
    optimizer.Step();
    if (epoch == 0) first = loss.scalar();
    last = loss.scalar();
  }
  EXPECT_LT(last, first * 0.5f) << nn::RnnCellKindName(GetParam());
}

TEST_P(CellKindSweep, PaddingLeavesStateUnchanged) {
  Rng rng(82);
  nn::RecurrentEncoder encoder(10, 4, 3, &rng, nn::SequencePooling::kLastState,
                               GetParam());
  const Tensor with_pad = encoder.Forward({{1, 2, -1, -1}}, 4).value();
  const Tensor exact = encoder.Forward({{1, 2}}, 2).value();
  EXPECT_TRUE(with_pad.AllClose(exact, 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellKindSweep,
                         ::testing::Values(nn::RnnCellKind::kBasic,
                                           nn::RnnCellKind::kGru,
                                           nn::RnnCellKind::kLstm));

// ---- node2vec ------------------------------------------------------------------

graph::HeterogeneousGraph SmallGraph() {
  graph::HeterogeneousGraph graph(4, 2, 2);
  FKD_CHECK_OK(graph.AddEdge(graph::EdgeType::kAuthorship, 0, 0));
  FKD_CHECK_OK(graph.AddEdge(graph::EdgeType::kAuthorship, 1, 0));
  FKD_CHECK_OK(graph.AddEdge(graph::EdgeType::kAuthorship, 2, 1));
  FKD_CHECK_OK(graph.AddEdge(graph::EdgeType::kAuthorship, 3, 1));
  FKD_CHECK_OK(graph.AddEdge(graph::EdgeType::kSubjectIndication, 0, 0));
  FKD_CHECK_OK(graph.AddEdge(graph::EdgeType::kSubjectIndication, 1, 0));
  FKD_CHECK_OK(graph.AddEdge(graph::EdgeType::kSubjectIndication, 2, 1));
  FKD_CHECK_OK(graph.AddEdge(graph::EdgeType::kSubjectIndication, 3, 1));
  FKD_CHECK_OK(graph.Finalize());
  return graph;
}

TEST(Node2VecWalkTest, StepsFollowEdges) {
  const auto graph = SmallGraph();
  Rng rng(83);
  graph::Node2VecOptions options;
  options.walks_per_node = 3;
  options.walk_length = 8;
  options.return_p = 0.5;
  options.inout_q = 2.0;
  for (const auto& walk : GenerateNode2VecWalks(graph, options, &rng)) {
    for (size_t i = 1; i < walk.size(); ++i) {
      const auto neighbors = graph.GlobalNeighbors(walk[i - 1]);
      EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), walk[i]),
                neighbors.end());
    }
  }
}

TEST(Node2VecWalkTest, LowReturnPRevisitsMore) {
  // p << 1 makes returning to the previous node much more likely.
  const auto graph = SmallGraph();
  auto count_backtracks = [&graph](double p, uint64_t seed) {
    Rng rng(seed);
    graph::Node2VecOptions options;
    options.walks_per_node = 30;
    options.walk_length = 12;
    options.return_p = p;
    size_t backtracks = 0, steps = 0;
    for (const auto& walk : GenerateNode2VecWalks(graph, options, &rng)) {
      for (size_t i = 2; i < walk.size(); ++i) {
        ++steps;
        backtracks += walk[i] == walk[i - 2];
      }
    }
    return static_cast<double>(backtracks) / static_cast<double>(steps);
  };
  EXPECT_GT(count_backtracks(0.1, 84), count_backtracks(10.0, 84) + 0.15);
}

TEST(Node2VecWalkTest, UnitPQMatchesWalkStatistics) {
  const auto graph = SmallGraph();
  Rng rng(85);
  graph::Node2VecOptions options;
  options.walks_per_node = 2;
  options.walk_length = 6;
  const auto walks = GenerateNode2VecWalks(graph, options, &rng);
  EXPECT_EQ(walks.size(), 2u * graph.TotalNodes());
}

TEST(Node2VecClassifierTest, EndToEnd) {
  auto dataset =
      data::GeneratePolitiFact(data::GeneratorOptions::Scaled(150, 86)).value();
  auto graph = dataset.BuildGraph().value();
  Rng rng(87);
  auto splits = data::KFoldTriSplits(dataset.articles.size(),
                                     dataset.creators.size(),
                                     dataset.subjects.size(), 5, &rng)
                    .value();
  eval::TrainContext context;
  context.dataset = &dataset;
  context.graph = &graph;
  context.train_articles = splits[0].articles.train;
  context.train_creators = splits[0].creators.train;
  context.train_subjects = splits[0].subjects.train;
  context.seed = 88;

  baselines::Node2VecClassifier::Options options;
  options.walks.walks_per_node = 3;
  options.walks.walk_length = 10;
  options.walks.return_p = 0.5;
  options.walks.inout_q = 2.0;
  options.skipgram.dim = 16;
  options.skipgram.epochs = 1;
  baselines::Node2VecClassifier classifier(options);
  EXPECT_EQ(classifier.Name(), "node2vec");
  ASSERT_TRUE(classifier.Train(context).ok());
  auto predictions = classifier.Predict();
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions.value().articles.size(), 150u);
}

// ---- GCN ------------------------------------------------------------------------

TEST(GcnClassifierTest, EndToEndLearnsTrainingSignal) {
  auto dataset =
      data::GeneratePolitiFact(data::GeneratorOptions::Scaled(200, 90)).value();
  auto graph = dataset.BuildGraph().value();
  Rng rng(91);
  auto splits = data::KFoldTriSplits(dataset.articles.size(),
                                     dataset.creators.size(),
                                     dataset.subjects.size(), 5, &rng)
                    .value();
  eval::TrainContext context;
  context.dataset = &dataset;
  context.graph = &graph;
  context.train_articles = splits[0].articles.train;
  context.train_creators = splits[0].creators.train;
  context.train_subjects = splits[0].subjects.train;
  context.seed = 92;

  baselines::GcnClassifier::Options options;
  options.epochs = 60;
  options.vocabulary = 150;
  options.hidden_dim = 24;
  baselines::GcnClassifier classifier(options);
  EXPECT_EQ(classifier.Name(), "gcn");
  ASSERT_TRUE(classifier.Train(context).ok());
  auto predictions = classifier.Predict();
  ASSERT_TRUE(predictions.ok());
  ASSERT_EQ(predictions.value().articles.size(), 200u);

  // Beats majority on the training articles.
  eval::ConfusionMatrix matrix(2);
  for (int32_t id : context.train_articles) {
    matrix.Add(data::BiClassOf(dataset.articles[id].label),
               predictions.value().articles[id]);
  }
  EXPECT_GT(matrix.Accuracy(), 0.6);
}

TEST(GcnClassifierTest, RejectsZeroLayersAndEmptyLabels) {
  auto dataset =
      data::GeneratePolitiFact(data::GeneratorOptions::Scaled(60, 93)).value();
  auto graph = dataset.BuildGraph().value();
  eval::TrainContext context;
  context.dataset = &dataset;
  context.graph = &graph;

  baselines::GcnClassifier::Options zero_layers;
  zero_layers.layers = 0;
  baselines::GcnClassifier bad(zero_layers);
  EXPECT_EQ(bad.Train(context).code(), StatusCode::kInvalidArgument);

  baselines::GcnClassifier no_labels;
  EXPECT_EQ(no_labels.Train(context).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(no_labels.Predict().status().code(),
            StatusCode::kFailedPrecondition);
}

// ---- TfIdfFeaturizer ----------------------------------------------------------------

TEST(TfIdfTest, IdfOrdersRareAboveCommon) {
  text::Vocabulary words;
  words.AddAll({"common", "rare"});
  const std::vector<std::vector<std::string>> corpus = {
      {"common"}, {"common"}, {"common", "rare"}, {"common"}};
  text::TfIdfFeaturizer featurizer(words, corpus);
  EXPECT_GT(featurizer.IdfOf(words.IdOf("rare")),
            featurizer.IdfOf(words.IdOf("common")));
}

TEST(TfIdfTest, FeaturizeScalesCountsByIdf) {
  text::Vocabulary words;
  words.AddAll({"a", "b"});
  const std::vector<std::vector<std::string>> corpus = {{"a"}, {"a", "b"}};
  text::TfIdfFeaturizer featurizer(words, corpus);
  const auto features = featurizer.Featurize({"a", "a", "b"});
  EXPECT_NEAR(features[0], 2.0f * featurizer.IdfOf(0), 1e-5f);
  EXPECT_NEAR(features[1], 1.0f * featurizer.IdfOf(1), 1e-5f);
}

TEST(TfIdfTest, UnseenWordGetsMaxIdf) {
  text::Vocabulary words;
  words.AddAll({"seen", "never"});
  const std::vector<std::vector<std::string>> corpus = {{"seen"}, {"seen"}};
  text::TfIdfFeaturizer featurizer(words, corpus);
  // df = 0 -> idf = ln(3/1) + 1, strictly larger than "seen"'s.
  EXPECT_NEAR(featurizer.IdfOf(words.IdOf("never")), std::log(3.0) + 1.0, 1e-6);
  EXPECT_GT(featurizer.IdfOf(words.IdOf("never")),
            featurizer.IdfOf(words.IdOf("seen")));
}

TEST(TfIdfTest, BatchShape) {
  text::Vocabulary words;
  words.AddAll({"x"});
  text::TfIdfFeaturizer featurizer(words, {{"x"}});
  const Tensor batch = featurizer.FeaturizeBatch({{"x"}, {}});
  EXPECT_EQ(batch.rows(), 2u);
  EXPECT_GT(batch.At(0, 0), 0.0f);
  EXPECT_EQ(batch.At(1, 0), 0.0f);
}

// ---- Mutual information ---------------------------------------------------------------

TEST(MutualInformationTest, DiscriminativeWordScoresHigher) {
  text::ClassWordStats stats(2);
  for (int i = 0; i < 20; ++i) {
    stats.AddDocument({"signal", "shared"}, 1);
    stats.AddDocument({"noise_word", "shared"}, 0);
  }
  EXPECT_GT(stats.MutualInformation("signal"),
            stats.MutualInformation("shared") + 0.1);
  EXPECT_NEAR(stats.MutualInformation("shared"), 0.0, 1e-9);
  EXPECT_EQ(stats.MutualInformation("absent"), 0.0);
}

TEST(MutualInformationTest, PerfectPredictorReachesClassEntropy) {
  text::ClassWordStats stats(2);
  for (int i = 0; i < 10; ++i) {
    stats.AddDocument({"w"}, 1);
    stats.AddDocument({"other"}, 0);
  }
  // I(word; class) = H(class) = ln 2 for a perfect binary predictor.
  EXPECT_NEAR(stats.MutualInformation("w"), std::log(2.0), 1e-9);
}

TEST(MutualInformationTest, SelectionPrefersSignalWords) {
  text::ClassWordStats stats(2);
  for (int i = 0; i < 30; ++i) {
    stats.AddDocument({"mi_signal1", "mi_noise"}, 1);
    stats.AddDocument({"mi_signal0", "mi_noise"}, 0);
  }
  const text::Vocabulary selected = stats.SelectTopMutualInformation(2);
  EXPECT_NE(selected.IdOf("mi_signal1"), text::Vocabulary::kUnknownId);
  EXPECT_NE(selected.IdOf("mi_signal0"), text::Vocabulary::kUnknownId);
  EXPECT_EQ(selected.IdOf("mi_noise"), text::Vocabulary::kUnknownId);
}

// ---- McNemar --------------------------------------------------------------------------

TEST(McNemarTest, IdenticalPredictionsNotSignificant) {
  const std::vector<int32_t> actual = {0, 1, 0, 1};
  const std::vector<int32_t> predictions = {0, 1, 1, 1};
  auto result = eval::McNemarTest(actual, predictions, predictions);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().only_a_correct, 0);
  EXPECT_DOUBLE_EQ(result.value().p_value, 1.0);
}

TEST(McNemarTest, StrongAsymmetryIsSignificant) {
  // A correct on 30 instances where B is wrong; B never uniquely correct.
  std::vector<int32_t> actual(40, 1);
  std::vector<int32_t> a(40, 1);
  std::vector<int32_t> b(40, 1);
  for (int i = 0; i < 30; ++i) b[i] = 0;
  auto result = eval::McNemarTest(actual, a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().only_a_correct, 30);
  EXPECT_EQ(result.value().only_b_correct, 0);
  EXPECT_LT(result.value().p_value, 0.001);
}

TEST(McNemarTest, HandComputedStatistic) {
  // b = 8, c = 2: chi2 = (|8-2|-1)^2 / 10 = 2.5.
  std::vector<int32_t> actual(10, 1);
  std::vector<int32_t> a(10, 1);
  std::vector<int32_t> b(10, 1);
  for (int i = 0; i < 8; ++i) b[i] = 0;       // A-only correct: 8.
  std::vector<int32_t> actual2 = actual;
  // Make 2 B-only-correct rows by flipping A.
  a[8] = 0;
  a[9] = 0;
  auto result = eval::McNemarTest(actual, a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().only_a_correct, 8);
  EXPECT_EQ(result.value().only_b_correct, 2);
  EXPECT_NEAR(result.value().statistic, 2.5, 1e-12);
  EXPECT_NEAR(result.value().p_value,
              eval::ChiSquare1SurvivalFunction(2.5), 1e-12);
}

TEST(McNemarTest, RejectsMisalignedInputs) {
  EXPECT_FALSE(eval::McNemarTest({0, 1}, {0}, {0, 1}).ok());
  EXPECT_FALSE(eval::McNemarTest({}, {}, {}).ok());
}

TEST(ChiSquareSurvivalTest, KnownQuantiles) {
  EXPECT_NEAR(eval::ChiSquare1SurvivalFunction(3.841), 0.05, 2e-3);
  EXPECT_NEAR(eval::ChiSquare1SurvivalFunction(6.635), 0.01, 1e-3);
  EXPECT_DOUBLE_EQ(eval::ChiSquare1SurvivalFunction(0.0), 1.0);
}

}  // namespace
}  // namespace fkd
