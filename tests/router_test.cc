// VersionedModelStore + Router suites: version lifecycle (load → publish →
// retire → refcount drain), cache/canary routing semantics, and the
// zero-downtime hot-swap stress test — sustained concurrent load across 10
// live snapshot swaps with zero failed requests and no stale-version
// responses after a publish returns. Router*/Store* also run under TSan
// (tools/tsan_smoke.sh) and ASan (tools/asan_smoke.sh).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "serve/model_store.h"
#include "serve/router.h"

namespace fkd {
namespace serve {
namespace {

// ---- shared trained fixture -------------------------------------------------------

struct TrainedFixture {
  data::Dataset dataset;
  graph::HeterogeneousGraph graph;
  core::FakeDetector detector;
  std::string snapshot_dir;
};

core::FakeDetectorConfig TinyConfig() {
  core::FakeDetectorConfig config;
  config.epochs = 5;
  config.explicit_words = 40;
  config.latent_vocabulary = 120;
  config.hflu.max_sequence_length = 10;
  config.hflu.gru_hidden = 10;
  config.hflu.latent_dim = 8;
  config.hflu.embed_dim = 8;
  config.gdu_hidden = 12;
  config.verbose = false;
  return config;
}

const TrainedFixture& SharedFixture() {
  static TrainedFixture* fixture = [] {
    auto dataset =
        data::GeneratePolitiFact(data::GeneratorOptions::Scaled(55, 91));
    FKD_CHECK_OK(dataset.status());
    auto graph = dataset.value().BuildGraph();
    FKD_CHECK_OK(graph.status());
    auto* f = new TrainedFixture{std::move(dataset).value(),
                                 std::move(graph).value(),
                                 core::FakeDetector(TinyConfig()),
                                 {}};
    Rng rng(17);
    auto splits = data::KFoldTriSplits(f->dataset.articles.size(),
                                       f->dataset.creators.size(),
                                       f->dataset.subjects.size(), 5, &rng);
    FKD_CHECK_OK(splits.status());
    eval::TrainContext context;
    context.dataset = &f->dataset;
    context.graph = &f->graph;
    context.train_articles = splits.value()[0].articles.train;
    context.train_creators = splits.value()[0].creators.train;
    context.train_subjects = splits.value()[0].subjects.train;
    context.granularity = eval::LabelGranularity::kBinary;
    context.seed = 7;
    FKD_CHECK_OK(f->detector.Train(context));

    // Per-process directory: ctest runs each test in its own process.
    f->snapshot_dir = (std::filesystem::temp_directory_path() /
                       ("fkd_router_snapshot_" + std::to_string(::getpid())))
                          .string();
    std::filesystem::remove_all(f->snapshot_dir);
    FKD_CHECK_OK(ExportSnapshot(f->detector, f->snapshot_dir));
    return f;
  }();
  return *fixture;
}

std::string SampleText(size_t i) {
  const auto& fixture = SharedFixture();
  return fixture.dataset.articles[i % fixture.dataset.articles.size()].text;
}

/// Engine options keeping router tests snappy: tiny batching delay, deep
/// queue so overload never rejects during the stress test.
RouterOptions FastRouterOptions() {
  RouterOptions options;
  options.num_replicas = 2;
  options.engine.num_workers = 1;
  options.engine.max_batch_size = 8;
  options.engine.max_batch_delay_us = 200;
  options.engine.max_queue_depth = 4096;
  options.canary_permille = 0;  // tests opt in explicitly
  return options;
}

// ---- model store ------------------------------------------------------------------

TEST(StoreTest, LoadRegistersMonotonicVersions) {
  const auto& fixture = SharedFixture();
  VersionedModelStore store;
  auto v1 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  auto v2 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v1.value()->version, 1u);
  EXPECT_EQ(v2.value()->version, 2u);
  EXPECT_EQ(v1.value()->directory, fixture.snapshot_dir);
  EXPECT_NE(v1.value()->snapshot, v2.value()->snapshot)
      << "each load is an independent immutable snapshot";
  EXPECT_EQ(store.ResidentVersions(), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(store.Stats().loads, 2u);
}

TEST(StoreTest, LoadRejectsMissingOrCorruptDirectories) {
  VersionedModelStore store;
  auto missing = store.Load("/nonexistent/fkd/store");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(store.Stats().load_failures, 1u);
  EXPECT_TRUE(store.ResidentVersions().empty());
}

TEST(StoreTest, PublishSwitchesActiveAtomically) {
  const auto& fixture = SharedFixture();
  VersionedModelStore store;
  EXPECT_EQ(store.Active(), nullptr);
  auto v1 = store.Load(fixture.snapshot_dir);
  auto v2 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v1.ok() && v2.ok());

  ASSERT_TRUE(store.Publish(1).ok());
  EXPECT_EQ(store.Active()->version, 1u);
  ASSERT_TRUE(store.Publish(2).ok());
  EXPECT_EQ(store.Active()->version, 2u);
  EXPECT_EQ(store.Stats().publishes, 2u);
  EXPECT_EQ(store.Stats().active_version, 2u);

  EXPECT_EQ(store.Publish(99).code(), StatusCode::kNotFound);
}

TEST(StoreTest, RetiredVersionDiesWhenItsLastReferenceDrains) {
  const auto& fixture = SharedFixture();
  VersionedModelStore store;
  auto v1 = store.Load(fixture.snapshot_dir);
  auto v2 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v1.ok() && v2.ok());
  ASSERT_TRUE(store.Publish(1).ok());

  // The active version may not be retired out from under the router.
  EXPECT_EQ(store.Retire(1).code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(store.Publish(2).ok());
  // An "in-flight batch" still holds version 1.
  std::shared_ptr<const ServingModel> in_flight = std::move(v1).value();
  ASSERT_TRUE(store.Retire(1).ok());
  EXPECT_EQ(store.ResidentVersions(), (std::vector<uint64_t>{2}));
  EXPECT_EQ(store.Retire(1).code(), StatusCode::kNotFound) << "already gone";

  ModelStoreStats stats = store.Stats();
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.retired_still_alive, 1u) << "in-flight ref pins it";

  in_flight.reset();  // the RCU grace period ends here
  stats = store.Stats();
  EXPECT_EQ(stats.retired_still_alive, 0u)
      << "refcount drained, memory released";
}

TEST(StoreTest, RegisterAcceptsInProcessSnapshot) {
  const auto& fixture = SharedFixture();
  auto loaded = LoadSnapshot(fixture.snapshot_dir);
  ASSERT_TRUE(loaded.ok());
  VersionedModelStore store;
  auto model = store.Register(
      std::make_shared<const Snapshot>(std::move(loaded).value()));
  EXPECT_EQ(model->version, 1u);
  ASSERT_TRUE(store.Publish(model->version).ok());
  EXPECT_EQ(store.Active()->snapshot, model->snapshot);
}

// ---- router basics ----------------------------------------------------------------

std::shared_ptr<const ServingModel> LoadVersion(VersionedModelStore* store) {
  auto loaded = store->Load(SharedFixture().snapshot_dir);
  FKD_CHECK_OK(loaded.status());
  return std::move(loaded).value();
}

Result<Classification> SubmitAndWait(Router* router, const std::string& text) {
  ArticleRequest request;
  request.text = text;
  auto submitted = router->Submit(std::move(request));
  FKD_RETURN_NOT_OK(submitted.status());
  return submitted.value().get();
}

TEST(RouterTest, SubmitBeforeStartAndAfterStopIsUnavailable) {
  Router router(FastRouterOptions());
  auto early = router.Submit(ArticleRequest{"text", -1, {}, 0});
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kUnavailable);

  VersionedModelStore store;
  ASSERT_TRUE(router.Start(LoadVersion(&store)).ok());
  router.Stop();
  auto late = router.Submit(ArticleRequest{"text", -1, {}, 0});
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST(RouterTest, ServesAndFillsScoreCache) {
  VersionedModelStore store;
  Router router(FastRouterOptions());
  ASSERT_TRUE(router.Start(LoadVersion(&store)).ok());
  const std::string text = SampleText(0);

  auto cold = SubmitAndWait(&router, text);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold.value().from_cache);
  EXPECT_EQ(cold.value().model_version, 1u);

  // The completion hook filled the cache before the future resolved, so
  // the repeat is a guaranteed hit and skips the forward pass entirely.
  auto warm = SubmitAndWait(&router, text);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().from_cache);
  EXPECT_EQ(warm.value().model_version, 1u);
  EXPECT_EQ(warm.value().batch_size, 0u);
  ASSERT_EQ(warm.value().probabilities.size(),
            cold.value().probabilities.size());
  for (size_t c = 0; c < cold.value().probabilities.size(); ++c) {
    EXPECT_EQ(warm.value().probabilities[c], cold.value().probabilities[c])
        << "cached scores must be bitwise identical";
  }
  EXPECT_EQ(warm.value().class_id, cold.value().class_id);

  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache.size, 1u);
  router.Stop();
}

TEST(RouterTest, CacheDisabledStillServes) {
  RouterOptions options = FastRouterOptions();
  options.cache_capacity = 0;
  VersionedModelStore store;
  Router router(options);
  ASSERT_TRUE(router.Start(LoadVersion(&store)).ok());
  const std::string text = SampleText(1);
  for (int i = 0; i < 2; ++i) {
    auto result = SubmitAndWait(&router, text);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.value().from_cache);
  }
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  router.Stop();
}

TEST(RouterTest, RequestKeyCoversGraphContext) {
  ArticleRequest a;
  a.text = "same text";
  ArticleRequest b = a;
  EXPECT_EQ(Router::RequestKey(a), Router::RequestKey(b));
  b.creator_id = 3;
  EXPECT_NE(Router::RequestKey(a), Router::RequestKey(b));
  b = a;
  b.subject_ids = {1, 2};
  EXPECT_NE(Router::RequestKey(a), Router::RequestKey(b));
  ArticleRequest c = a;
  c.subject_ids = {2, 1};
  EXPECT_NE(Router::RequestKey(b), Router::RequestKey(c))
      << "subject order is part of the identity";
}

TEST(RouterTest, PublishSwapsServingVersion) {
  VersionedModelStore store;
  Router router(FastRouterOptions());
  auto v1 = LoadVersion(&store);
  ASSERT_TRUE(router.Start(v1).ok());
  EXPECT_EQ(router.active_version(), 1u);

  const std::string text = SampleText(2);
  auto before = SubmitAndWait(&router, text);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().model_version, 1u);

  auto v2 = LoadVersion(&store);
  ASSERT_TRUE(router.Publish(v2).ok());
  EXPECT_EQ(router.active_version(), 2u);
  EXPECT_EQ(router.Stats().swaps, 1u);

  // Same article, new version: the v1 cache entry must NOT be served (the
  // version is part of the key), and the response carries v2.
  auto after = SubmitAndWait(&router, text);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().model_version, 2u);
  EXPECT_FALSE(after.value().from_cache)
      << "a swap invalidates cached scores by construction";

  // ...and scoring is reproducible across identically-trained versions.
  ASSERT_EQ(after.value().probabilities.size(),
            before.value().probabilities.size());
  for (size_t c = 0; c < after.value().probabilities.size(); ++c) {
    EXPECT_EQ(after.value().probabilities[c], before.value().probabilities[c]);
  }
  router.Stop();
}

TEST(RouterTest, CanarySplitsDeterministicallyThenPromotes) {
  VersionedModelStore store;
  RouterOptions options = FastRouterOptions();
  options.cache_capacity = 0;  // count engine-routed requests exactly
  Router router(options);
  ASSERT_TRUE(router.Start(LoadVersion(&store)).ok());

  EXPECT_EQ(router.PromoteCanary().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(router.StopCanary().code(), StatusCode::kFailedPrecondition);

  auto v2 = LoadVersion(&store);
  ASSERT_TRUE(router.StartCanary(v2, 500).ok());  // 50% of keys

  // Each distinct article lands deterministically on one side; across many
  // articles both sides see traffic roughly evenly.
  std::vector<uint64_t> versions;
  for (size_t i = 0; i < 40; ++i) {
    auto result = SubmitAndWait(&router, SampleText(i) + std::to_string(i));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    versions.push_back(result.value().model_version);
  }
  const RouterStats mid = router.Stats();
  EXPECT_GT(mid.canary_requests, 5u);
  EXPECT_GT(mid.primary_requests, 5u);
  EXPECT_EQ(mid.canary_requests + mid.primary_requests, 40u);
  EXPECT_EQ(mid.canary_version, 2u);
  EXPECT_EQ(mid.active_version, 1u);

  // Determinism: resubmitting the same articles reproduces the split.
  for (size_t i = 0; i < 40; ++i) {
    auto result = SubmitAndWait(&router, SampleText(i) + std::to_string(i));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().model_version, versions[i]) << "article " << i;
  }

  ASSERT_TRUE(router.PromoteCanary().ok());
  EXPECT_EQ(router.active_version(), 2u);
  EXPECT_EQ(router.Stats().canary_version, 0u);
  auto promoted = SubmitAndWait(&router, SampleText(3));
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted.value().model_version, 2u);
  router.Stop();
}

TEST(RouterTest, StopCanaryReturnsTrafficToPrimary) {
  VersionedModelStore store;
  RouterOptions options = FastRouterOptions();
  options.cache_capacity = 0;
  Router router(options);
  ASSERT_TRUE(router.Start(LoadVersion(&store)).ok());
  ASSERT_TRUE(router.StartCanary(LoadVersion(&store), 1000).ok());  // all keys
  auto canaried = SubmitAndWait(&router, SampleText(4));
  ASSERT_TRUE(canaried.ok());
  EXPECT_EQ(canaried.value().model_version, 2u);

  ASSERT_TRUE(router.StopCanary().ok());
  auto back = SubmitAndWait(&router, SampleText(4));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().model_version, 1u);
  router.Stop();
}

TEST(RouterTest, CanaryPermilleEnvParsing) {
  ASSERT_EQ(setenv("FKD_CANARY_PCT", "5", 1), 0);
  EXPECT_EQ(RouterOptions::CanaryPermilleFromEnvironment(), 50u);
  ASSERT_EQ(setenv("FKD_CANARY_PCT", "2.5", 1), 0);
  EXPECT_EQ(RouterOptions::CanaryPermilleFromEnvironment(), 25u);
  ASSERT_EQ(setenv("FKD_CANARY_PCT", "100", 1), 0);
  EXPECT_EQ(RouterOptions::CanaryPermilleFromEnvironment(), 1000u);
  // Garbage, negatives and out-of-range values are ignored, not honoured.
  for (const char* bad : {"auto", "-3", "250", "5x", ""}) {
    ASSERT_EQ(setenv("FKD_CANARY_PCT", bad, 1), 0);
    EXPECT_EQ(RouterOptions::CanaryPermilleFromEnvironment(), 0u)
        << "FKD_CANARY_PCT=" << bad;
  }
  ASSERT_EQ(unsetenv("FKD_CANARY_PCT"), 0);
  EXPECT_EQ(RouterOptions::CanaryPermilleFromEnvironment(), 0u);
}

// ---- hot-swap stress --------------------------------------------------------------

// The acceptance test of this PR: sustained concurrent load while 10 live
// snapshot swaps happen. Three invariants:
//   1. zero failed requests — every submitted future resolves OK;
//   2. monotone versions — no response is served by a version older than
//      the last publish that returned before its submit (no stale reads
//      after a swap is acknowledged);
//   3. the store's retired versions all drain — refcounts actually reach
//      zero once the router moved on.
// Body shared with BudgetTest::HotSwapStressHoldsUnderTightBudget, which
// replays the identical lifecycle against a store whose budget forces a
// demote/promote cycle on every swap.
void RunHotSwapStress(VersionedModelStore& store) {
  const auto& fixture = SharedFixture();
  RouterOptions options = FastRouterOptions();
  options.num_replicas = 2;
  Router router(options);
  auto initial = LoadVersion(&store);
  ASSERT_TRUE(store.Publish(initial->version).ok());
  ASSERT_TRUE(router.Start(initial).ok());
  initial.reset();

  constexpr size_t kSwaps = 10;
  constexpr size_t kSubmitters = 3;

  // The floor: highest version whose Publish() has returned. Submitters
  // read it before each submit; the response they get must be >= it.
  std::atomic<uint64_t> published_floor{1};
  std::atomic<bool> swapping_done{false};
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_failed{0};
  std::atomic<uint64_t> stale_responses{0};
  std::atomic<uint64_t> cache_hits_seen{0};

  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      size_t i = 0;
      while (!swapping_done.load(std::memory_order_acquire)) {
        const uint64_t floor =
            published_floor.load(std::memory_order_acquire);
        ArticleRequest request;
        // A mix of repeats (cache-hit candidates) and per-thread uniques.
        request.text = (i % 3 == 0)
                           ? fixture.dataset.articles[i % 7].text
                           : SampleText(t * 1000 + i) + std::to_string(i);
        auto submitted = router.Submit(std::move(request));
        if (!submitted.ok()) {
          requests_failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        auto result = submitted.value().get();
        if (!result.ok()) {
          requests_failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        requests_ok.fetch_add(1, std::memory_order_relaxed);
        if (result.value().from_cache) {
          cache_hits_seen.fetch_add(1, std::memory_order_relaxed);
        }
        if (result.value().model_version < floor) {
          stale_responses.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }

  // Swap loop: load → publish to store → hot-swap the router → retire the
  // predecessor. Each iteration is a full version lifecycle under load.
  for (size_t swap = 0; swap < kSwaps; ++swap) {
    auto loaded = store.Load(fixture.snapshot_dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto model = std::move(loaded).value();
    const uint64_t previous = store.Active()->version;
    ASSERT_TRUE(store.Publish(model->version).ok());
    ASSERT_TRUE(router.Publish(model).ok());
    published_floor.store(model->version, std::memory_order_release);
    ASSERT_TRUE(store.Retire(previous).ok());
    model.reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  swapping_done.store(true, std::memory_order_release);
  for (auto& thread : submitters) thread.join();
  const RouterStats router_stats = router.Stats();  // before Stop clears it
  const uint64_t final_version = router.active_version();
  router.Stop();

  EXPECT_EQ(requests_failed.load(), 0u)
      << "hot swaps must never fail a request";
  EXPECT_EQ(stale_responses.load(), 0u)
      << "no response from a version older than an acknowledged publish";
  EXPECT_GT(requests_ok.load(), kSwaps) << "the load ran through the swaps";
  EXPECT_EQ(router_stats.swaps, kSwaps);
  EXPECT_EQ(final_version, 1u + kSwaps);

  // Counter-consistency audit: every Submit() call resolved exactly one
  // way, even while versions were being swapped underneath it.
  EXPECT_EQ(router_stats.submitted,
            router_stats.cache_hits + router_stats.primary_requests +
                router_stats.canary_requests)
      << "a request was double-counted or dropped across outcomes";
  EXPECT_EQ(router_stats.rejected, 0u);
  EXPECT_EQ(router_stats.submitted, requests_ok.load())
      << "router accounting must match the per-future tally";
  EXPECT_EQ(router_stats.cache_hits, cache_hits_seen.load());
  EXPECT_EQ(router_stats.submitted,
            router_stats.cache_hits + router_stats.cache_misses);

  // Every retired version must actually die once the router and the
  // submitters released it — the RCU drain is not a leak.
  const ModelStoreStats stats = store.Stats();
  EXPECT_EQ(stats.retired, kSwaps);
  EXPECT_EQ(stats.retired_still_alive, 0u)
      << "a retired version is still pinned after its drain";
  EXPECT_EQ(stats.active_version, 1u + kSwaps);
}

TEST(RouterTest, HotSwapStressZeroDowntime) {
  VersionedModelStore store;
  RunHotSwapStress(store);
}

// ==== BudgetTest: memory-budgeted residency ==================================

/// Exact fp32 residency of one loaded fixture snapshot, measured through a
/// throwaway unlimited store — the unit the budget tests size themselves in.
size_t OneModelBytes() {
  VersionedModelStore probe;
  auto model = probe.Load(SharedFixture().snapshot_dir);
  FKD_CHECK_OK(model.status());
  return probe.Stats().resident_bytes;
}

std::string BudgetSpillDir(const std::string& stem) {
  const std::string path = (std::filesystem::temp_directory_path() /
                            (stem + "_" + std::to_string(::getpid())))
                               .string();
  std::filesystem::remove_all(path);
  return path;
}

ModelStoreOptions BudgetOptions(size_t budget_bytes, const std::string& stem) {
  ModelStoreOptions options;
  options.memory_budget_bytes = budget_bytes;
  options.spill_directory = BudgetSpillDir(stem);
  return options;
}

TEST(BudgetTest, MemoryBudgetEnvKnobParsing) {
  ASSERT_EQ(setenv("FKD_MEMORY_BUDGET_MB", "64", 1), 0);
  EXPECT_EQ(ModelStoreOptions::FromEnv().memory_budget_bytes,
            size_t{64} * 1024 * 1024);
  // Garbage is ignored (unlimited), not honoured.
  ASSERT_EQ(setenv("FKD_MEMORY_BUDGET_MB", "lots", 1), 0);
  EXPECT_EQ(ModelStoreOptions::FromEnv().memory_budget_bytes, 0u);
  ASSERT_EQ(unsetenv("FKD_MEMORY_BUDGET_MB"), 0);
  EXPECT_EQ(ModelStoreOptions::FromEnv().memory_budget_bytes, 0u);
}

TEST(BudgetTest, RegisteringOverBudgetDemotesLeastRecentlyUsed) {
  const auto& fixture = SharedFixture();
  const size_t one = OneModelBytes();
  // Room for two resident versions, not three.
  VersionedModelStore store(BudgetOptions(one * 2 + one / 2, "fkd_budget_lru"));
  auto v1 = store.Load(fixture.snapshot_dir);
  auto v2 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v1.ok() && v2.ok());
  ModelStoreStats stats = store.Stats();
  EXPECT_EQ(stats.demoted, 0u);
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes);

  // Touch v1 so v2 becomes the coldest, then blow the budget with v3:
  // the LRU victim must be v2, not the most recently used v1.
  ASSERT_TRUE(store.Get(1).ok());
  auto v3 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v3.ok());
  stats = store.Stats();
  EXPECT_EQ(stats.demoted, 1u);
  EXPECT_EQ(stats.demotions, 1u);
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes)
      << "the accountant let the registry exceed its budget";

  // All three versions are still addressable; v2 comes back via promotion
  // (the promotions counter is the witness that v2 was the one demoted).
  EXPECT_EQ(store.ResidentVersions(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(store.Stats().promotions, 0u);
  auto back = store.Get(2);
  ASSERT_TRUE(back.ok());
  EXPECT_NE(back.value()->snapshot, nullptr);
  stats = store.Stats();
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes)
      << "the promotion was not paid for by demoting someone colder";
}

TEST(BudgetTest, GetRePromotesBitIdentically) {
  const auto& fixture = SharedFixture();
  const size_t one = OneModelBytes();
  // Exactly one version fits: the second load demotes the first.
  VersionedModelStore store(BudgetOptions(one, "fkd_budget_bits"));
  auto v1 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v1.ok());

  // Reference scores through the still-resident v1.
  std::vector<std::vector<float>> reference;
  for (size_t i = 0; i < 4; ++i) {
    const auto& article = fixture.dataset.articles[i];
    const Tensor logits = v1.value()->snapshot->Score(
        {article.text}, {article.creator}, {article.subjects});
    std::vector<float> row(logits.cols());
    for (size_t c = 0; c < logits.cols(); ++c) row[c] = logits.At(0, c);
    reference.push_back(std::move(row));
  }

  auto v2 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v2.ok());
  ASSERT_EQ(store.Stats().demoted, 1u) << "v1 should be on the disk tier";

  auto promoted = store.Get(1);
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  ASSERT_NE(promoted.value()->snapshot, nullptr);
  EXPECT_NE(promoted.value()->snapshot, v1.value()->snapshot)
      << "promotion reloads from the spill, it does not resurrect the object";
  EXPECT_EQ(store.Stats().promotions, 1u);

  // The lossless spill + deterministic load make the round trip exact:
  // every logit is bitwise identical to the pre-demotion scores.
  for (size_t i = 0; i < reference.size(); ++i) {
    const auto& article = fixture.dataset.articles[i];
    const Tensor logits = promoted.value()->snapshot->Score(
        {article.text}, {article.creator}, {article.subjects});
    ASSERT_EQ(logits.cols(), reference[i].size());
    for (size_t c = 0; c < reference[i].size(); ++c) {
      EXPECT_EQ(logits.At(0, c), reference[i][c])
          << "article " << i << " class " << c << " drifted through demotion";
    }
  }
}

TEST(BudgetTest, ActiveAndPinnedVersionsAreNeverDemoted) {
  const auto& fixture = SharedFixture();
  // A 1-byte budget wants to demote everything; only the active/pinned
  // exemptions keep anything resident.
  VersionedModelStore store(BudgetOptions(1, "fkd_budget_pin"));
  auto v1 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(store.Stats().demoted, 1u) << "nothing protects an idle version";

  // Publishing promotes v1 and shields it from then on.
  ASSERT_TRUE(store.Publish(1).ok());
  EXPECT_EQ(store.Stats().demoted, 0u);
  const uint64_t promotions_after_publish = store.Stats().promotions;

  // A canary: loaded, immediately demoted, then pinned (which promotes it
  // and exempts it like the active version).
  auto v2 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(store.Stats().demoted, 1u);
  ASSERT_TRUE(store.Pin(2).ok());
  EXPECT_EQ(store.Stats().demoted, 0u);

  // A third version churns through the budget loop; the active and the
  // pinned versions must not be touched by it.
  auto v3 = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(v3.ok());
  ModelStoreStats stats = store.Stats();
  EXPECT_EQ(stats.demoted, 1u) << "only v3 is demotable";
  // Get on the active and pinned versions is promotion-free.
  ASSERT_TRUE(store.Get(1).ok());
  ASSERT_TRUE(store.Get(2).ok());
  EXPECT_EQ(store.Stats().promotions, promotions_after_publish + 1)
      << "active/pinned Get must not need a promotion";

  // Unpin drops the shield: the budget loop reclaims v2.
  ASSERT_TRUE(store.Unpin(2).ok());
  EXPECT_EQ(store.Stats().demoted, 2u);
  // The active version remains the only resident one, over budget by
  // design: the store never demotes what is being served.
  EXPECT_EQ(store.Stats().active_version, 1u);
  auto active = store.Get(1);
  ASSERT_TRUE(active.ok());
  EXPECT_NE(active.value()->snapshot, nullptr);
}

// The PR-5 acceptance stress, replayed against a store that can hold ~1.5
// versions: every swap forces a demote (the incoming version) and a
// promote (its publish), and the three invariants — zero failed requests,
// no stale version after an acknowledged publish, full refcount drain —
// must survive the extra churn.
TEST(BudgetTest, HotSwapStressHoldsUnderTightBudget) {
  const size_t one = OneModelBytes();
  VersionedModelStore store(BudgetOptions(one + one / 2, "fkd_budget_swap"));
  RunHotSwapStress(store);
  const ModelStoreStats stats = store.Stats();
  EXPECT_GT(stats.demotions, 0u) << "the budget never bit — not a tight run";
  EXPECT_EQ(stats.demotions, stats.promotions)
      << "every demoted version was published, so each demote has a promote";
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes)
      << "steady state (one active version) must fit the budget";
}

// ==== QuarantineTest: replica quarantine + self-healing ======================

/// Router options tuned so the monitor reacts within a few hundred ms:
/// fast intervals, tiny sample floor, single probe to reinstate. The score
/// cache is disabled so every request exercises an engine.
RouterOptions QuarantineRouterOptions() {
  RouterOptions options = FastRouterOptions();
  options.cache_capacity = 0;
  options.quarantine.interval_ms = 50;
  options.quarantine.min_samples = 2;
  options.quarantine.probe_successes = 1;
  return options;
}

/// Spins until `predicate` holds or `timeout_ms` passes.
bool WaitFor(const std::function<bool()>& predicate, int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

TEST(QuarantineTest, SickReplicaIsQuarantinedAndReinstated) {
  const auto& fixture = SharedFixture();
  FaultInjector::Global().Clear();
  VersionedModelStore store;
  auto model = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(model.ok());

  Router router(QuarantineRouterOptions());
  ASSERT_TRUE(router.Start(model.value()).ok());

  // Make replica 0's private fault site fail every batch; replica 1 stays
  // healthy, so this is exactly the one-sick-replica scenario quarantine
  // exists for.
  ASSERT_TRUE(
      FaultInjector::Global().Configure("serve.replica0.batch:fail").ok());

  // Drive engine-bound traffic until the monitor quarantines replica 0.
  // Requests on the sick replica fail (retries exhausted -> IoError);
  // that is the signal being scored, not a test failure.
  std::atomic<bool> stop{false};
  std::thread driver([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ArticleRequest request;
      request.text = SampleText(i) + " #" + std::to_string(i);
      ++i;
      auto submitted = router.Submit(std::move(request));
      if (submitted.ok()) (void)submitted.value().get();
    }
  });

  EXPECT_TRUE(WaitFor([&] { return router.Stats().quarantines >= 1; }, 5000))
      << "sick replica was never quarantined";

  // Heal the replica: probes must now succeed and reinstate it.
  FaultInjector::Global().Clear();
  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().reinstatements >= 1; }, 5000))
      << "healed replica was never reinstated";

  stop.store(true, std::memory_order_release);
  driver.join();
  const RouterStats stats = router.Stats();
  router.Stop();

  // While quarantined, replica 0's hash range was re-placed onto replica 1.
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_GE(stats.reinstatements, 1u);
  EXPECT_GE(stats.probes, 1u);
  EXPECT_GT(stats.rerouted, 0u);
  EXPECT_EQ(stats.quarantined_now, 0u);
  // Probes bypass Submit, so the router accounting invariant is intact.
  EXPECT_EQ(stats.submitted,
            stats.cache_hits + stats.primary_requests +
                stats.canary_requests);
}

TEST(QuarantineTest, HealthyFleetIsNeverQuarantined) {
  const auto& fixture = SharedFixture();
  FaultInjector::Global().Clear();
  VersionedModelStore store;
  auto model = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(model.ok());

  Router router(QuarantineRouterOptions());
  ASSERT_TRUE(router.Start(model.value()).ok());
  for (size_t i = 0; i < 64; ++i) {
    ArticleRequest request;
    request.text = SampleText(i) + " healthy" + std::to_string(i);
    auto submitted = router.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    auto result = submitted.value().get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  // Give the monitor a few intervals to (wrongly) react.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const RouterStats stats = router.Stats();
  router.Stop();
  EXPECT_EQ(stats.quarantines, 0u);
  EXPECT_EQ(stats.rerouted, 0u);
  EXPECT_EQ(stats.quarantined_now, 0u);
}

TEST(QuarantineTest, AllQuarantinedFallsBackToOriginalPlacement) {
  const auto& fixture = SharedFixture();
  FaultInjector::Global().Clear();
  VersionedModelStore store;
  auto model = store.Load(fixture.snapshot_dir);
  ASSERT_TRUE(model.ok());

  // Every replica sick: the shared serve.batch site fails everything, so
  // both replicas degrade. Submission must still be attempted (serving
  // beats refusing), not crash or spin.
  Router router(QuarantineRouterOptions());
  ASSERT_TRUE(router.Start(model.value()).ok());
  ASSERT_TRUE(FaultInjector::Global().Configure("serve.batch:fail").ok());

  std::atomic<bool> stop{false};
  std::thread driver([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ArticleRequest request;
      request.text = SampleText(i) + " sick" + std::to_string(i);
      ++i;
      auto submitted = router.Submit(std::move(request));
      if (submitted.ok()) (void)submitted.value().get();
    }
  });
  EXPECT_TRUE(WaitFor([&] { return router.Stats().quarantines >= 2; }, 5000))
      << "both replicas should quarantine";

  // Still accepting work while the whole fleet is quarantined.
  ArticleRequest request;
  request.text = SampleText(1) + " fallback";
  auto submitted = router.Submit(std::move(request));
  if (submitted.ok()) (void)submitted.value().get();

  FaultInjector::Global().Clear();
  EXPECT_TRUE(
      WaitFor([&] { return router.Stats().reinstatements >= 2; }, 5000))
      << "both replicas should heal";
  stop.store(true, std::memory_order_release);
  driver.join();
  const RouterStats stats = router.Stats();
  router.Stop();
  EXPECT_EQ(stats.quarantined_now, 0u);
  EXPECT_EQ(stats.submitted,
            stats.cache_hits + stats.primary_requests +
                stats.canary_requests);
}

}  // namespace
}  // namespace serve
}  // namespace fkd
