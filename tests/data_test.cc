#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/labels.h"
#include "data/split.h"
#include "graph/stats.h"

namespace fkd {
namespace data {
namespace {

// ---- labels ----------------------------------------------------------------

TEST(LabelsTest, NumericScoreMapping) {
  EXPECT_EQ(NumericScore(CredibilityLabel::kPantsOnFire), 1);
  EXPECT_EQ(NumericScore(CredibilityLabel::kTrue), 6);
  EXPECT_EQ(NumericScore(CredibilityLabel::kHalfTrue), 4);
}

TEST(LabelsTest, LabelFromScoreRoundsAndClamps) {
  EXPECT_EQ(LabelFromScore(1.0), CredibilityLabel::kPantsOnFire);
  EXPECT_EQ(LabelFromScore(5.6), CredibilityLabel::kTrue);
  EXPECT_EQ(LabelFromScore(3.4), CredibilityLabel::kMostlyFalse);
  EXPECT_EQ(LabelFromScore(3.5), CredibilityLabel::kHalfTrue);
  EXPECT_EQ(LabelFromScore(-5.0), CredibilityLabel::kPantsOnFire);
  EXPECT_EQ(LabelFromScore(99.0), CredibilityLabel::kTrue);
}

TEST(LabelsTest, RoundTripAllScores) {
  for (size_t c = 0; c < kNumCredibilityClasses; ++c) {
    const auto label = static_cast<CredibilityLabel>(c);
    EXPECT_EQ(LabelFromScore(NumericScore(label)), label);
  }
}

TEST(LabelsTest, BiClassGrouping) {
  // Positive group: {Half True, Mostly True, True} (§5.1.3).
  EXPECT_TRUE(IsPositive(CredibilityLabel::kHalfTrue));
  EXPECT_TRUE(IsPositive(CredibilityLabel::kTrue));
  EXPECT_FALSE(IsPositive(CredibilityLabel::kMostlyFalse));
  EXPECT_FALSE(IsPositive(CredibilityLabel::kPantsOnFire));
  EXPECT_EQ(BiClassOf(CredibilityLabel::kTrue), 1);
  EXPECT_EQ(BiClassOf(CredibilityLabel::kFalse), 0);
}

TEST(LabelsTest, NamesRoundTrip) {
  for (size_t c = 0; c < kNumCredibilityClasses; ++c) {
    const auto label = static_cast<CredibilityLabel>(c);
    auto parsed = LabelFromName(LabelName(label));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), label);
  }
  EXPECT_FALSE(LabelFromName("Entirely Bogus").ok());
}

TEST(LabelsTest, LabelFromClassIdValidates) {
  EXPECT_TRUE(LabelFromClassId(0).ok());
  EXPECT_TRUE(LabelFromClassId(5).ok());
  EXPECT_FALSE(LabelFromClassId(6).ok());
  EXPECT_FALSE(LabelFromClassId(-1).ok());
}

// ---- Dataset ----------------------------------------------------------------

Dataset TinyDataset() {
  Dataset dataset;
  dataset.creators = {{0, "c0", "profile zero", CredibilityLabel::kHalfTrue},
                      {1, "c1", "profile one", CredibilityLabel::kHalfTrue}};
  dataset.subjects = {{0, "s0", "subject zero", CredibilityLabel::kHalfTrue}};
  Article a0;
  a0.id = 0;
  a0.text = "text zero";
  a0.label = CredibilityLabel::kTrue;
  a0.creator = 0;
  a0.subjects = {0};
  Article a1 = a0;
  a1.id = 1;
  a1.label = CredibilityLabel::kFalse;
  a1.creator = 1;
  dataset.articles = {a0, a1};
  return dataset;
}

TEST(DatasetTest, ValidatesGoodData) {
  EXPECT_TRUE(TinyDataset().Validate().ok());
}

TEST(DatasetTest, RejectsBadIds) {
  auto dataset = TinyDataset();
  dataset.articles[1].id = 5;
  EXPECT_EQ(dataset.Validate().code(), StatusCode::kCorruption);
}

TEST(DatasetTest, RejectsDanglingCreator) {
  auto dataset = TinyDataset();
  dataset.articles[0].creator = 9;
  EXPECT_FALSE(dataset.Validate().ok());
}

TEST(DatasetTest, RejectsArticleWithoutSubjects) {
  auto dataset = TinyDataset();
  dataset.articles[0].subjects.clear();
  EXPECT_FALSE(dataset.Validate().ok());
}

TEST(DatasetTest, RejectsDuplicateSubjectLinks) {
  auto dataset = TinyDataset();
  dataset.articles[0].subjects = {0, 0};
  EXPECT_FALSE(dataset.Validate().ok());
}

TEST(DatasetTest, BuildGraphMatchesLinks) {
  auto dataset = TinyDataset();
  auto graph = dataset.BuildGraph();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().NumEdges(graph::EdgeType::kAuthorship), 2u);
  EXPECT_EQ(graph.value().NumEdges(graph::EdgeType::kSubjectIndication), 2u);
  EXPECT_EQ(
      graph.value().ReverseNeighbors(graph::EdgeType::kSubjectIndication, 0)
          .size(),
      2u);
}

TEST(DatasetTest, DeriveEntityLabelsWeightedMean) {
  auto dataset = TinyDataset();
  dataset.DeriveEntityLabels();
  // Creator 0 wrote one True (6) article -> "True".
  EXPECT_EQ(dataset.creators[0].label, CredibilityLabel::kTrue);
  EXPECT_EQ(dataset.creators[1].label, CredibilityLabel::kFalse);
  // Subject 0 has True (6) + False (2) -> mean 4 -> Half True.
  EXPECT_EQ(dataset.subjects[0].label, CredibilityLabel::kHalfTrue);
}

TEST(DatasetTest, DeriveKeepsLabelForEntityWithoutArticles) {
  auto dataset = TinyDataset();
  dataset.creators.push_back(
      {2, "lonely", "no articles", CredibilityLabel::kMostlyTrue});
  dataset.DeriveEntityLabels();
  EXPECT_EQ(dataset.creators[2].label, CredibilityLabel::kMostlyTrue);
}

// ---- generator ----------------------------------------------------------------

TEST(GeneratorTest, ProducesExactCounts) {
  GeneratorOptions options = GeneratorOptions::Scaled(800, 1);
  auto result = GeneratePolitiFact(options);
  ASSERT_TRUE(result.ok());
  const Dataset& dataset = result.value();
  EXPECT_EQ(dataset.articles.size(), options.num_articles);
  EXPECT_EQ(dataset.creators.size(), options.num_creators);
  EXPECT_EQ(dataset.subjects.size(), options.num_subjects);
  EXPECT_TRUE(dataset.Validate().ok());
}

TEST(GeneratorTest, DeterministicPerSeed) {
  auto a = GeneratePolitiFact(GeneratorOptions::Scaled(300, 9));
  auto b = GeneratePolitiFact(GeneratorOptions::Scaled(300, 9));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().articles.size(), b.value().articles.size());
  for (size_t i = 0; i < a.value().articles.size(); ++i) {
    EXPECT_EQ(a.value().articles[i].text, b.value().articles[i].text);
    EXPECT_EQ(a.value().articles[i].label, b.value().articles[i].label);
  }
  auto c = GeneratePolitiFact(GeneratorOptions::Scaled(300, 10));
  ASSERT_TRUE(c.ok());
  bool any_different = false;
  for (size_t i = 0; i < a.value().articles.size(); ++i) {
    any_different |= a.value().articles[i].text != c.value().articles[i].text;
  }
  EXPECT_TRUE(any_different);
}

TEST(GeneratorTest, EveryCreatorPublishes) {
  auto result = GeneratePolitiFact(GeneratorOptions::Scaled(500, 2));
  ASSERT_TRUE(result.ok());
  std::vector<size_t> counts(result.value().creators.size(), 0);
  for (const auto& article : result.value().articles) {
    ++counts[article.creator];
  }
  for (size_t count : counts) EXPECT_GE(count, 1u);
}

TEST(GeneratorTest, PersonasPresentWithScaledHistograms) {
  auto result = GeneratePolitiFact(GeneratorOptions::Scaled(2000, 3));
  ASSERT_TRUE(result.ok());
  const Dataset& dataset = result.value();
  for (const auto& name : PersonaNames()) {
    const auto it = std::find_if(
        dataset.creators.begin(), dataset.creators.end(),
        [&](const Creator& c) { return c.name == name; });
    ASSERT_NE(it, dataset.creators.end()) << name;
  }
  // Obama-like persona is the most prolific creator, as in Fig 1a.
  std::vector<size_t> counts(dataset.creators.size(), 0);
  for (const auto& article : dataset.articles) ++counts[article.creator];
  const auto obama = std::find_if(
      dataset.creators.begin(), dataset.creators.end(),
      [](const Creator& c) { return c.name == "Barack Obama"; });
  const size_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(counts[obama->id], max_count);
  // Obama leans true, Trump leans false (Fig 1e/1f).
  const auto trump = std::find_if(
      dataset.creators.begin(), dataset.creators.end(),
      [](const Creator& c) { return c.name == "Donald Trump"; });
  EXPECT_TRUE(IsPositive(obama->label));
  EXPECT_FALSE(IsPositive(trump->label));
}

TEST(GeneratorTest, MeanSubjectsPerArticleNearTarget) {
  GeneratorOptions options = GeneratorOptions::Scaled(2000, 4);
  auto result = GeneratePolitiFact(options);
  ASSERT_TRUE(result.ok());
  const double mean =
      static_cast<double>(result.value().NumSubjectLinks()) /
      static_cast<double>(result.value().articles.size());
  EXPECT_NEAR(mean, options.mean_subjects_per_article, 0.4);
}

TEST(GeneratorTest, CreatorDistributionIsHeavyTailed) {
  auto result = GeneratePolitiFact(GeneratorOptions::Scaled(3000, 5));
  ASSERT_TRUE(result.ok());
  std::vector<size_t> counts(result.value().creators.size(), 0);
  for (const auto& article : result.value().articles) ++counts[article.creator];
  const auto summary = graph::SummarizeDegrees(counts);
  // Mean ~3.87 like the paper; max far above mean (power-law head).
  EXPECT_NEAR(summary.mean, 3.87, 0.5);
  EXPECT_GT(summary.max, 20u * static_cast<size_t>(summary.median));
}

TEST(GeneratorTest, TextCarriesClassSignal) {
  auto result = GeneratePolitiFact(GeneratorOptions::Scaled(2000, 6));
  ASSERT_TRUE(result.ok());
  // True articles use true-pool words more often than false articles do.
  size_t true_hits = 0, true_words = 0, false_hits = 0, false_words = 0;
  const std::set<std::string> true_pool(TrueLeaningWords().begin(),
                                        TrueLeaningWords().end());
  for (const auto& article : result.value().articles) {
    std::istringstream stream(article.text);
    std::string word;
    while (stream >> word) {
      const bool hit = true_pool.count(word) != 0;
      if (IsPositive(article.label)) {
        ++true_words;
        true_hits += hit;
      } else {
        ++false_words;
        false_hits += hit;
      }
    }
  }
  const double true_rate = static_cast<double>(true_hits) / true_words;
  const double false_rate = static_cast<double>(false_hits) / false_words;
  EXPECT_GT(true_rate, false_rate * 1.5);
}

TEST(GeneratorTest, EntityLabelsAreDerivedConsistently) {
  auto result = GeneratePolitiFact(GeneratorOptions::Scaled(600, 7));
  ASSERT_TRUE(result.ok());
  Dataset dataset = result.value();
  const auto creators_before = dataset.creators;
  dataset.DeriveEntityLabels();  // Idempotent: already derived.
  for (size_t i = 0; i < dataset.creators.size(); ++i) {
    EXPECT_EQ(dataset.creators[i].label, creators_before[i].label);
  }
}

TEST(GeneratorTest, RejectsInvalidOptions) {
  GeneratorOptions options;
  options.num_articles = 10;
  options.num_creators = 20;  // More creators than articles.
  options.include_personas = false;
  EXPECT_FALSE(GeneratePolitiFact(options).ok());

  options = GeneratorOptions::Scaled(100, 1);
  options.power_law_alpha = 0.5;
  EXPECT_FALSE(GeneratePolitiFact(options).ok());

  options = GeneratorOptions::Scaled(100, 1);
  options.min_article_words = 30;
  options.max_article_words = 10;
  EXPECT_FALSE(GeneratePolitiFact(options).ok());

  options = GeneratorOptions::Scaled(100, 1);
  options.mean_subjects_per_article = 0.2;
  EXPECT_FALSE(GeneratePolitiFact(options).ok());

  options = GeneratorOptions::Scaled(100, 1);
  options.num_articles = 0;
  EXPECT_FALSE(GeneratePolitiFact(options).ok());
}

class GeneratorScaleSweep
    : public ::testing::TestWithParam<std::pair<size_t, uint64_t>> {};

TEST_P(GeneratorScaleSweep, InvariantsHoldAcrossScalesAndSeeds) {
  const auto [articles, seed] = GetParam();
  auto result = GeneratePolitiFact(GeneratorOptions::Scaled(articles, seed));
  ASSERT_TRUE(result.ok());
  const Dataset& dataset = result.value();
  EXPECT_TRUE(dataset.Validate().ok());
  EXPECT_EQ(dataset.articles.size(), articles);
  // Labels of creators match the weighted-mean derivation.
  std::vector<double> score(dataset.creators.size(), 0.0);
  std::vector<size_t> count(dataset.creators.size(), 0);
  for (const auto& article : dataset.articles) {
    score[article.creator] += NumericScore(article.label);
    ++count[article.creator];
  }
  for (const auto& creator : dataset.creators) {
    if (count[creator.id] == 0) continue;
    EXPECT_EQ(creator.label,
              LabelFromScore(score[creator.id] / count[creator.id]));
  }
  // Graph builds.
  EXPECT_TRUE(dataset.BuildGraph().ok());
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndSeeds, GeneratorScaleSweep,
    ::testing::Values(std::make_pair<size_t, uint64_t>(60, 1),
                      std::make_pair<size_t, uint64_t>(200, 2),
                      std::make_pair<size_t, uint64_t>(200, 77),
                      std::make_pair<size_t, uint64_t>(1000, 3),
                      std::make_pair<size_t, uint64_t>(2500, 4)));

// ---- io ---------------------------------------------------------------------

TEST(IoTest, SaveLoadRoundTrip) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "fkd_io_test").string();
  auto original = GeneratePolitiFact(GeneratorOptions::Scaled(150, 8));
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveDataset(original.value(), prefix).ok());

  auto loaded = LoadDataset(prefix);
  ASSERT_TRUE(loaded.ok());
  const Dataset& a = original.value();
  const Dataset& b = loaded.value();
  ASSERT_EQ(a.articles.size(), b.articles.size());
  ASSERT_EQ(a.creators.size(), b.creators.size());
  ASSERT_EQ(a.subjects.size(), b.subjects.size());
  for (size_t i = 0; i < a.articles.size(); ++i) {
    EXPECT_EQ(a.articles[i].text, b.articles[i].text);
    EXPECT_EQ(a.articles[i].label, b.articles[i].label);
    EXPECT_EQ(a.articles[i].creator, b.articles[i].creator);
    EXPECT_EQ(a.articles[i].subjects, b.articles[i].subjects);
  }
  for (size_t i = 0; i < a.creators.size(); ++i) {
    EXPECT_EQ(a.creators[i].name, b.creators[i].name);
    EXPECT_EQ(a.creators[i].profile, b.creators[i].profile);
  }
  for (const char* suffix : {".articles.tsv", ".creators.tsv", ".subjects.tsv"}) {
    std::filesystem::remove(prefix + suffix);
  }
}

TEST(IoTest, LoadMissingFilesIsIoError) {
  EXPECT_EQ(LoadDataset("/no/such/prefix").status().code(),
            StatusCode::kIoError);
}

TEST(IoTest, MalformedRowsAreCorruption) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "fkd_io_bad").string();
  std::ofstream(prefix + ".articles.tsv") << "0\t0\tnot_a_class\t0\ttext\n";
  std::ofstream(prefix + ".creators.tsv") << "0\t3\tname\tprofile\n";
  std::ofstream(prefix + ".subjects.tsv") << "0\t3\tname\tdescription\n";
  EXPECT_EQ(LoadDataset(prefix).status().code(), StatusCode::kCorruption);

  std::ofstream(prefix + ".articles.tsv") << "0\t0\t3\n";  // Too few fields.
  EXPECT_EQ(LoadDataset(prefix).status().code(), StatusCode::kCorruption);

  // Structurally invalid (creator id out of range) is also corruption.
  std::ofstream(prefix + ".articles.tsv") << "0\t7\t3\t0\ttext\n";
  EXPECT_EQ(LoadDataset(prefix).status().code(), StatusCode::kCorruption);

  for (const char* suffix : {".articles.tsv", ".creators.tsv", ".subjects.tsv"}) {
    std::filesystem::remove(prefix + suffix);
  }
}

// ---- splits ---------------------------------------------------------------------

TEST(SplitTest, KFoldPartitionsTestSets) {
  Rng rng(1);
  auto splits = KFoldSplits(103, 10, &rng);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits.value().size(), 10u);
  std::set<int32_t> all_test;
  for (const auto& split : splits.value()) {
    EXPECT_EQ(split.train.size() + split.test.size(), 103u);
    for (int32_t id : split.test) {
      EXPECT_TRUE(all_test.insert(id).second) << "duplicate test id " << id;
    }
    // Train and test disjoint.
    std::set<int32_t> train(split.train.begin(), split.train.end());
    for (int32_t id : split.test) EXPECT_EQ(train.count(id), 0u);
  }
  EXPECT_EQ(all_test.size(), 103u);
}

TEST(SplitTest, FoldSizesBalanced) {
  Rng rng(2);
  auto splits = KFoldSplits(10, 3, &rng);
  ASSERT_TRUE(splits.ok());
  for (const auto& split : splits.value()) {
    EXPECT_GE(split.test.size(), 3u);
    EXPECT_LE(split.test.size(), 4u);
  }
}

TEST(SplitTest, RejectsBadK) {
  Rng rng(3);
  EXPECT_FALSE(KFoldSplits(10, 1, &rng).ok());
  EXPECT_FALSE(KFoldSplits(5, 6, &rng).ok());
  EXPECT_TRUE(KFoldSplits(5, 5, &rng).ok());
}

TEST(SplitTest, SubsampleProportions) {
  Rng rng(4);
  std::vector<int32_t> train(200);
  std::iota(train.begin(), train.end(), 0);
  const auto half = SubsampleTraining(train, 0.5, &rng);
  EXPECT_EQ(half.size(), 100u);
  std::set<int32_t> unique(half.begin(), half.end());
  EXPECT_EQ(unique.size(), 100u);

  const auto all = SubsampleTraining(train, 1.0, &rng);
  EXPECT_EQ(all.size(), 200u);

  const auto tiny = SubsampleTraining({42}, 0.1, &rng);
  ASSERT_EQ(tiny.size(), 1u);  // Never empty for non-empty input.
  EXPECT_EQ(tiny[0], 42);

  EXPECT_TRUE(SubsampleTraining({}, 0.5, &rng).empty());
}

class ThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThetaSweep, SubsampleSizeMatchesTheta) {
  Rng rng(5);
  std::vector<int32_t> train(1000);
  std::iota(train.begin(), train.end(), 0);
  const auto sampled = SubsampleTraining(train, GetParam(), &rng);
  EXPECT_NEAR(static_cast<double>(sampled.size()), GetParam() * 1000.0, 1.0);
  std::set<int32_t> unique(sampled.begin(), sampled.end());
  EXPECT_EQ(unique.size(), sampled.size());
}

INSTANTIATE_TEST_SUITE_P(Ratios, ThetaSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0));

TEST(SplitTest, TriSplitsCoverAllTypes) {
  Rng rng(6);
  auto splits = KFoldTriSplits(50, 20, 10, 5, &rng);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits.value().size(), 5u);
  size_t article_test_total = 0;
  for (const auto& split : splits.value()) {
    article_test_total += split.articles.test.size();
    EXPECT_EQ(split.creators.train.size() + split.creators.test.size(), 20u);
    EXPECT_EQ(split.subjects.train.size() + split.subjects.test.size(), 10u);
  }
  EXPECT_EQ(article_test_total, 50u);
}

}  // namespace
}  // namespace data
}  // namespace fkd
