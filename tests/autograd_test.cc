#include "tensor/autograd.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace fkd {
namespace {

namespace ag = ::fkd::autograd;
using ::fkd::testing::ExpectGradientsMatch;
using ::fkd::testing::RandomTensor;
using ::fkd::testing::WeightedSum;

TEST(VariableTest, DefinedAndScalar) {
  ag::Variable empty;
  EXPECT_FALSE(empty.defined());
  ag::Variable v(Tensor::FromRows({{2.5f}}));
  EXPECT_TRUE(v.defined());
  EXPECT_FLOAT_EQ(v.scalar(), 2.5f);
  EXPECT_FALSE(v.requires_grad());
}

TEST(BackwardTest, SimpleChainGradient) {
  ag::Variable x(Tensor::FromRows({{3.0f}}), true);
  // loss = (2x)^2 = 4x^2; dloss/dx = 8x = 24.
  ag::Variable loss = ag::SumSquares(ag::Scale(x, 2.0f));
  ag::Backward(loss);
  EXPECT_FLOAT_EQ(loss.scalar(), 36.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 24.0f);
}

TEST(BackwardTest, GradAccumulatesAcrossBackwards) {
  ag::Variable x(Tensor::FromRows({{1.0f}}), true);
  ag::Backward(ag::SumSquares(x));
  ag::Backward(ag::SumSquares(x));
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);  // 2x twice.
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(BackwardTest, DiamondGraphAccumulates) {
  // loss = sum((x + x)^2) -> d/dx = 8x.
  ag::Variable x(Tensor::FromRows({{1.5f}}), true);
  ag::Variable y = ag::Add(x, x);
  ag::Backward(ag::SumSquares(y));
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f * 1.5f);
}

TEST(BackwardTest, StopsAtNonGradLeaves) {
  ag::Variable x(Tensor::FromRows({{1.0f, 2.0f}}), true);
  ag::Variable c(Tensor::FromRows({{3.0f, 4.0f}}), false);
  ag::Backward(ag::SumSquares(ag::Mul(x, c)));
  EXPECT_EQ(c.grad().size(), 0u);
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f * 3.0f * 3.0f);  // 2*c^2*x
}

// ---- gradcheck per op -------------------------------------------------------

TEST(GradCheck, MatMul) {
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::MatMul(leaves[0], leaves[1]));
      },
      {RandomTensor(3, 4, 1, 0.5f), RandomTensor(4, 2, 2, 0.5f)});
}

TEST(GradCheck, AddSubMul) {
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        const auto sum = ag::Add(leaves[0], leaves[1]);
        const auto diff = ag::Sub(sum, leaves[2]);
        return WeightedSum(ag::Mul(diff, leaves[0]));
      },
      {RandomTensor(2, 3, 3, 0.5f), RandomTensor(2, 3, 4, 0.5f),
       RandomTensor(2, 3, 5, 0.5f)});
}

TEST(GradCheck, ScaleAndOneMinus) {
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::OneMinus(ag::Scale(leaves[0], -1.7f)));
      },
      {RandomTensor(3, 3, 6, 0.5f)});
}

TEST(GradCheck, AddRowBroadcast) {
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::AddRowBroadcast(leaves[0], leaves[1]));
      },
      {RandomTensor(4, 3, 7, 0.5f), RandomTensor(1, 3, 8, 0.5f)});
}

TEST(GradCheck, Sigmoid) {
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::Sigmoid(leaves[0]));
      },
      {RandomTensor(3, 4, 9, 1.0f)});
}

TEST(GradCheck, Tanh) {
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::Tanh(leaves[0]));
      },
      {RandomTensor(3, 4, 10, 1.0f)});
}

TEST(GradCheck, Relu) {
  // Keep values away from the kink at 0.
  Tensor x = RandomTensor(3, 4, 11, 1.0f);
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::Relu(leaves[0]));
      },
      {x});
}

TEST(GradCheck, ConcatCols) {
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::ConcatCols({leaves[0], leaves[1], leaves[2]}));
      },
      {RandomTensor(2, 2, 12, 0.5f), RandomTensor(2, 3, 13, 0.5f),
       RandomTensor(2, 1, 14, 0.5f)});
}

TEST(GradCheck, GatherRowsWithRepeats) {
  const std::vector<int32_t> indices = {0, 2, 2, 1};
  ExpectGradientsMatch(
      [&indices](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::GatherRows(leaves[0], indices));
      },
      {RandomTensor(3, 3, 15, 0.5f)});
}

TEST(GradCheck, GroupMeanRowsIncludingEmptyGroup) {
  const std::vector<std::vector<int32_t>> groups = {{0, 1}, {}, {2}, {0, 2, 3}};
  ExpectGradientsMatch(
      [&groups](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::GroupMeanRows(leaves[0], groups));
      },
      {RandomTensor(4, 3, 16, 0.5f)});
}

TEST(GradCheck, ScaleRows) {
  const std::vector<float> scales = {0.0f, 1.0f, 0.5f};
  ExpectGradientsMatch(
      [&scales](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::ScaleRows(leaves[0], scales));
      },
      {RandomTensor(3, 4, 17, 0.5f)});
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  const std::vector<int32_t> labels = {0, 2, 1, 2};
  ExpectGradientsMatch(
      [&labels](const std::vector<ag::Variable>& leaves) {
        return ag::SoftmaxCrossEntropy(leaves[0], labels);
      },
      {RandomTensor(4, 3, 18, 1.0f)});
}

TEST(GradCheck, SumSquares) {
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        return ag::SumSquares(leaves[0]);
      },
      {RandomTensor(3, 3, 19, 0.5f)});
}

TEST(GradCheck, AddN) {
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        return ag::AddN({ag::SumSquares(leaves[0]), ag::SumSquares(leaves[1]),
                         ag::Scale(ag::SumSquares(leaves[0]), 0.5f)});
      },
      {RandomTensor(2, 2, 20, 0.5f), RandomTensor(2, 2, 21, 0.5f)});
}

TEST(GradCheck, DeepComposite) {
  // A GDU-like composite: gates, Hadamard mixing, shared weights.
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        const auto& x = leaves[0];
        const auto& w = leaves[1];
        const auto gate = ag::Sigmoid(ag::MatMul(x, w));
        const auto candidate = ag::Tanh(ag::MatMul(x, w));
        const auto mixed =
            ag::Add(ag::Mul(gate, candidate),
                    ag::Mul(ag::OneMinus(gate), ag::Scale(candidate, 0.5f)));
        return WeightedSum(mixed);
      },
      {RandomTensor(3, 4, 22, 0.5f), RandomTensor(4, 4, 23, 0.5f)});
}

// Parameterized shape sweep for the workhorse ops.
class ShapeSweep : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(ShapeSweep, MatMulChainGradients) {
  const auto [m, k] = GetParam();
  ExpectGradientsMatch(
      [](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(
            ag::Tanh(ag::MatMul(leaves[0], leaves[1])));
      },
      {RandomTensor(m, k, 31 + m, 0.4f), RandomTensor(k, 3, 41 + k, 0.4f)});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 1),
                      std::make_pair<size_t, size_t>(1, 5),
                      std::make_pair<size_t, size_t>(4, 1),
                      std::make_pair<size_t, size_t>(5, 7),
                      std::make_pair<size_t, size_t>(8, 3)));

// ---- semantics beyond gradients --------------------------------------------

TEST(AutogradTest, DropoutIdentityWhenNotTraining) {
  Rng rng(1);
  ag::Variable x(RandomTensor(4, 4, 50), true);
  ag::Variable y = ag::Dropout(x, 0.5f, &rng, /*training=*/false);
  EXPECT_TRUE(y.value() == x.value());
}

TEST(AutogradTest, DropoutMaskScalesSurvivors) {
  Rng rng(2);
  ag::Variable x(Tensor::Full(20, 20, 1.0f), true);
  ag::Variable y = ag::Dropout(x, 0.25f, &rng, /*training=*/true);
  size_t zeros = 0;
  for (size_t i = 0; i < y.value().size(); ++i) {
    const float v = y.value()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5f);
    }
  }
  EXPECT_GT(zeros, 40u);   // ~100 expected.
  EXPECT_LT(zeros, 180u);
}

TEST(AutogradTest, GroupMeanEmptyGroupYieldsZeros) {
  ag::Variable x(Tensor::FromRows({{1, 2}, {3, 4}}), false);
  ag::Variable y = ag::GroupMeanRows(x, {{}, {0, 1}});
  EXPECT_EQ(y.value().At(0, 0), 0.0f);
  EXPECT_EQ(y.value().At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.value().At(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.value().At(1, 1), 3.0f);
}

TEST(AutogradTest, SoftmaxCrossEntropyValueMatchesHand) {
  // Uniform logits over 4 classes -> loss = log(4).
  ag::Variable logits(Tensor(3, 4), true);
  Tensor probs;
  ag::Variable loss = ag::SoftmaxCrossEntropy(logits, {0, 1, 2}, &probs);
  EXPECT_NEAR(loss.scalar(), std::log(4.0f), 1e-5f);
  EXPECT_NEAR(probs.At(0, 0), 0.25f, 1e-6f);
}

TEST(AutogradTest, GatherRowsValues) {
  ag::Variable x(Tensor::FromRows({{1, 2}, {3, 4}, {5, 6}}), false);
  ag::Variable y = ag::GatherRows(x, {2, 0, 2});
  EXPECT_TRUE(y.value().AllClose(Tensor::FromRows({{5, 6}, {1, 2}, {5, 6}})));
}

// ---- inference mode ---------------------------------------------------------------

TEST(InferenceModeTest, GuardTogglesAndRestores) {
  EXPECT_FALSE(ag::InInferenceMode());
  {
    ag::InferenceModeGuard guard;
    EXPECT_TRUE(ag::InInferenceMode());
    {
      ag::InferenceModeGuard nested;  // nesting keeps the mode on
      EXPECT_TRUE(ag::InInferenceMode());
    }
    EXPECT_TRUE(ag::InInferenceMode());
  }
  EXPECT_FALSE(ag::InInferenceMode());
}

TEST(InferenceModeTest, OpsProduceDetachedResults) {
  ag::Variable a(Tensor::FromRows({{1, 2}, {3, 4}}), true);
  ag::Variable b(Tensor::FromRows({{5, 6}, {7, 8}}), true);

  ag::InferenceModeGuard guard;
  ag::Variable sum = ag::Add(a, b);
  // Same forward values, but no tape: the result is a detached leaf.
  EXPECT_TRUE(sum.value().AllClose(Tensor::FromRows({{6, 8}, {10, 12}})));
  EXPECT_FALSE(sum.requires_grad());
}

TEST(InferenceModeTest, NoTapeNodesCountedUnderGuard) {
  ag::Variable a(RandomTensor(3, 3, 11), true);
  ag::Variable b(RandomTensor(3, 3, 12), true);

  // Outside the guard the op retains a tape node.
  const uint64_t before_tape = ag::TapeNodesCreated();
  ag::Variable tracked = ag::MatMul(a, b);
  EXPECT_GT(ag::TapeNodesCreated(), before_tape);

  // Under the guard the identical op retains none.
  ag::InferenceModeGuard guard;
  const uint64_t before_inference = ag::TapeNodesCreated();
  ag::Variable untracked = ag::MatMul(a, b);
  EXPECT_EQ(ag::TapeNodesCreated(), before_inference);
  EXPECT_TRUE(untracked.value().AllClose(tracked.value()));
}

TEST(InferenceModeTest, TrainingGraphsUnaffectedAfterGuard) {
  {
    ag::InferenceModeGuard guard;
    ag::Variable warmup =
        ag::Add(ag::Variable(RandomTensor(2, 2, 13), true),
                ag::Variable(RandomTensor(2, 2, 14), true));
  }
  // Gradients still flow on graphs built after the guard is gone.
  ag::Variable x(Tensor::FromRows({{2.0f}}), true);
  ag::Backward(ag::SumSquares(x));
  EXPECT_FLOAT_EQ(x.grad().At(0, 0), 4.0f);
}

}  // namespace
}  // namespace fkd
