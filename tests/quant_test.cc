// Quantization + cold-tier property suite. What must hold:
//
//  1. fp16: encode/decode are pure bit manipulation — decode(encode(x)) is
//     the correctly-rounded (RNE) half value, decode is exact, and every
//     finite half survives a decode→encode round trip bit for bit;
//  2. int8: the affine grid covers [min, max], reconstruction error is
//     bounded by scale/2 (+ one float rounding), dequant→requant is
//     exactly idempotent, and edge cases (constant tensors, zeros,
//     denormals, FLT_MAX-wide ranges) neither trap nor drift;
//  3. both codecs are bitwise deterministic: element-independent math, so
//     re-encoding the same bytes — in any chunking — reproduces them;
//  4. the FKDZ cold tier round-trips losslessly, rejects every byte flip
//     through its per-block CRC-32C, and fails loudly on truncation;
//  5. the FKDW v2 container round-trips quantized tensors through the one
//     deterministic dequant path and keeps v1 fp32 files byte-stable.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/block_codec.h"
#include "common/file_io.h"
#include "common/memory_accountant.h"
#include "common/mmap_file.h"
#include "common/rng.h"
#include "nn/quantize.h"
#include "nn/serialize.h"
#include "tensor/tensor.h"

namespace fkd {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& stem) {
  const std::string path =
      (fs::temp_directory_path() / (stem + "_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

uint32_t FloatBits(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// ---- fp16 ------------------------------------------------------------------

TEST(QuantTest, Fp16KnownValues) {
  EXPECT_EQ(nn::Fp16FromFloat(0.0f), 0x0000);
  EXPECT_EQ(nn::Fp16FromFloat(-0.0f), 0x8000);
  EXPECT_EQ(nn::Fp16FromFloat(1.0f), 0x3C00);
  EXPECT_EQ(nn::Fp16FromFloat(-2.0f), 0xC000);
  EXPECT_EQ(nn::Fp16FromFloat(65504.0f), 0x7BFF);  // largest finite half
  // Above the largest finite half: rounds to infinity.
  EXPECT_EQ(nn::Fp16FromFloat(65520.0f), 0x7C00);
  EXPECT_EQ(nn::Fp16FromFloat(1e30f), 0x7C00);
  EXPECT_EQ(nn::Fp16FromFloat(-1e30f), 0xFC00);
  // Smallest subnormal half is 2^-24.
  EXPECT_EQ(nn::Fp16FromFloat(std::ldexp(1.0f, -24)), 0x0001);
  // Half of it ties to even → zero; a hair more rounds up.
  EXPECT_EQ(nn::Fp16FromFloat(std::ldexp(1.0f, -25)), 0x0000);
  EXPECT_EQ(nn::Fp16FromFloat(std::ldexp(1.5f, -25)), 0x0001);
  // Underflow to (signed) zero.
  EXPECT_EQ(nn::Fp16FromFloat(std::ldexp(1.0f, -30)), 0x0000);
  EXPECT_EQ(nn::Fp16FromFloat(-std::ldexp(1.0f, -30)), 0x8000);
}

TEST(QuantTest, Fp16RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between half grid points 1.0 and
  // 1 + 2^-10; the tie goes to the even mantissa (1.0).
  EXPECT_EQ(nn::Fp16FromFloat(1.0f + std::ldexp(1.0f, -11)), 0x3C00);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9 → even is 1+2^-9.
  EXPECT_EQ(nn::Fp16FromFloat(1.0f + 3 * std::ldexp(1.0f, -11)), 0x3C02);
  // Just past the halfway points rounds away.
  EXPECT_EQ(nn::Fp16FromFloat(1.0f + std::ldexp(1.01f, -11)), 0x3C01);
}

TEST(QuantTest, Fp16DecodeEncodeIsIdentityForEveryFiniteHalf) {
  // decode is exact (every half is a float), so encode(decode(h)) must
  // reproduce h for every non-NaN pattern — all 63490 of them, including
  // both zeros, all subnormals and both infinities.
  for (uint32_t h = 0; h <= 0xFFFF; ++h) {
    const uint16_t half = static_cast<uint16_t>(h);
    const bool is_nan = (half & 0x7C00) == 0x7C00 && (half & 0x03FF) != 0;
    if (is_nan) continue;
    const float decoded = nn::Fp16ToFloat(half);
    EXPECT_EQ(nn::Fp16FromFloat(decoded), half) << "half bits 0x" << std::hex
                                                << h;
  }
}

TEST(QuantTest, Fp16NanStaysNanAndInfStaysInf) {
  EXPECT_TRUE(std::isnan(
      nn::Fp16ToFloat(nn::Fp16FromFloat(std::nanf("")))));
  EXPECT_EQ(nn::Fp16ToFloat(0x7C00), std::numeric_limits<float>::infinity());
  EXPECT_EQ(nn::Fp16ToFloat(0xFC00), -std::numeric_limits<float>::infinity());
  EXPECT_EQ(nn::Fp16FromFloat(std::numeric_limits<float>::infinity()), 0x7C00);
}

TEST(QuantTest, Fp16RoundTripErrorIsBoundedByHalfUlp) {
  Rng rng(2024);
  for (int trial = 0; trial < 20000; ++trial) {
    const float x =
        static_cast<float>(rng.Uniform(-60000.0, 60000.0));
    const float back = nn::Fp16ToFloat(nn::Fp16FromFloat(x));
    // RNE: |x - back| <= ulp_half(x) / 2. For |x| in [2^e, 2^e+1) the half
    // ulp is 2^(e-10).
    const int e = std::max(std::ilogb(std::fabs(x) == 0 ? 1.0f : std::fabs(x)),
                           -14);
    const float half_ulp = std::ldexp(1.0f, e - 11);
    EXPECT_LE(std::fabs(x - back), half_ulp) << "x=" << x;
  }
}

// ---- int8 ------------------------------------------------------------------

TEST(QuantTest, Int8GridEndpointsAreExactlyRepresentable) {
  const std::vector<float> values = {-3.5f, 0.25f, 7.75f, 1.0f};
  const nn::Int8Params params =
      nn::ChooseInt8Params(values.data(), values.size());
  EXPECT_DOUBLE_EQ(params.offset, -3.5);
  EXPECT_DOUBLE_EQ(params.scale, (7.75 + 3.5) / 255.0);
  std::vector<int8_t> q(values.size());
  nn::QuantizeInt8(values.data(), values.size(), params, q.data());
  EXPECT_EQ(q[0], -128);  // min maps to the lowest grid point
  EXPECT_EQ(q[2], 127);   // max maps to the highest
}

TEST(QuantTest, Int8MaxAbsErrorBoundedByScaleMath) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.UniformInt(uint64_t{512});
    const double lo = rng.Uniform(-100.0, 0.0);
    const double hi = rng.Uniform(0.0, 100.0);
    std::vector<float> values(n);
    for (auto& v : values) v = static_cast<float>(rng.Uniform(lo, hi));
    const nn::Int8Params params = nn::ChooseInt8Params(values.data(), n);
    std::vector<int8_t> q(n);
    std::vector<float> back(n);
    nn::QuantizeInt8(values.data(), n, params, q.data());
    nn::DequantizeInt8(q.data(), n, params, back.data());
    // scale/2 from rounding to the grid, plus one float narrowing of the
    // reconstructed value (≤ half its ulp, comfortably under 1e-4 here).
    const double bound = params.scale / 2 + 1e-4 * (std::fabs(lo) + hi);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::fabs(static_cast<double>(values[i]) - back[i]), bound)
          << "element " << i << " of trial " << trial;
    }
  }
}

TEST(QuantTest, Int8DequantRequantIsExactlyIdempotent) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 64;
    std::vector<float> values(n);
    for (auto& v : values) v = static_cast<float>(rng.Normal(0.0, 3.0));
    const nn::Int8Params params = nn::ChooseInt8Params(values.data(), n);
    std::vector<int8_t> q1(n), q2(n);
    std::vector<float> d1(n), d2(n);
    nn::QuantizeInt8(values.data(), n, params, q1.data());
    nn::DequantizeInt8(q1.data(), n, params, d1.data());
    // Requantizing the dequantized floats lands on the same grid points...
    nn::QuantizeInt8(d1.data(), n, params, q2.data());
    EXPECT_EQ(std::memcmp(q1.data(), q2.data(), n), 0);
    // ...so a second dequant is bitwise identical: the lossy step happens
    // exactly once, no matter how many times a snapshot cycles through
    // the tier.
    nn::DequantizeInt8(q2.data(), n, params, d2.data());
    EXPECT_EQ(std::memcmp(d1.data(), d2.data(), n * sizeof(float)), 0);
  }
}

TEST(QuantTest, Int8ConstantTensorIsExact) {
  const std::vector<float> values(37, 1.375f);
  const nn::Int8Params params =
      nn::ChooseInt8Params(values.data(), values.size());
  EXPECT_EQ(params.scale, 0.0);
  std::vector<int8_t> q(values.size());
  std::vector<float> back(values.size());
  nn::QuantizeInt8(values.data(), values.size(), params, q.data());
  nn::DequantizeInt8(q.data(), values.size(), params, back.data());
  for (float v : back) EXPECT_EQ(v, 1.375f);  // exact, not approximate
}

TEST(QuantTest, Int8EdgeCasesZeroDenormalExtreme) {
  // All zeros: constant-tensor path, exact.
  {
    const std::vector<float> zeros(8, 0.0f);
    const auto params = nn::ChooseInt8Params(zeros.data(), zeros.size());
    std::vector<int8_t> q(8);
    std::vector<float> back(8);
    nn::QuantizeInt8(zeros.data(), 8, params, q.data());
    nn::DequantizeInt8(q.data(), 8, params, back.data());
    for (float v : back) EXPECT_EQ(v, 0.0f);
  }
  // Denormal range: scale is a tiny double, no underflow to 0/0.
  {
    const std::vector<float> tiny = {0.0f, FLT_TRUE_MIN, 8 * FLT_TRUE_MIN};
    const auto params = nn::ChooseInt8Params(tiny.data(), tiny.size());
    EXPECT_GT(params.scale, 0.0);
    std::vector<int8_t> q(tiny.size());
    std::vector<float> back(tiny.size());
    nn::QuantizeInt8(tiny.data(), tiny.size(), params, q.data());
    nn::DequantizeInt8(q.data(), tiny.size(), params, back.data());
    for (size_t i = 0; i < tiny.size(); ++i) {
      EXPECT_LE(std::fabs(back[i] - tiny[i]),
                static_cast<float>(params.scale));
    }
  }
  // FLT_MAX-wide range: the scale math runs in double, so the range
  // (2*FLT_MAX) neither overflows nor produces inf grid points.
  {
    const std::vector<float> wide = {-FLT_MAX, 0.0f, FLT_MAX};
    const auto params = nn::ChooseInt8Params(wide.data(), wide.size());
    EXPECT_TRUE(std::isfinite(params.scale));
    std::vector<int8_t> q(wide.size());
    std::vector<float> back(wide.size());
    nn::QuantizeInt8(wide.data(), wide.size(), params, q.data());
    nn::DequantizeInt8(q.data(), wide.size(), params, back.data());
    EXPECT_EQ(q[0], -128);
    EXPECT_EQ(q[2], 127);
    for (float v : back) EXPECT_TRUE(std::isfinite(v));
    EXPECT_FLOAT_EQ(back[0], -FLT_MAX);
    EXPECT_FLOAT_EQ(back[2], FLT_MAX);
  }
}

TEST(QuantTest, Int8ChunkingInvariance) {
  // Elements are independent, so quantizing in any chunking — the whole
  // span at once or split as a thread pool would — yields identical bytes.
  Rng rng(31);
  const size_t n = 1024;
  std::vector<float> values(n);
  for (auto& v : values) v = static_cast<float>(rng.Normal(0.0, 1.0));
  const nn::Int8Params params = nn::ChooseInt8Params(values.data(), n);
  std::vector<int8_t> whole(n), chunked(n);
  nn::QuantizeInt8(values.data(), n, params, whole.data());
  for (size_t start = 0, chunk = 0; start < n; start += 192, ++chunk) {
    const size_t len = std::min<size_t>(192, n - start);
    nn::QuantizeInt8(values.data() + start, len, params,
                     chunked.data() + start);
  }
  EXPECT_EQ(std::memcmp(whole.data(), chunked.data(), n), 0);
}

TEST(QuantTest, EncodedImageIsBitwiseDeterministic) {
  Rng rng(5);
  Tensor a = Tensor::Randn(17, 9, &rng);
  Tensor b = Tensor::Rand(3, 33, &rng, -4.0f, 4.0f);
  const std::vector<std::pair<std::string, const Tensor*>> tensors = {
      {"a", &a}, {"b", &b}};
  for (const auto codec :
       {nn::TensorCodec::kFp32, nn::TensorCodec::kFp16,
        nn::TensorCodec::kInt8}) {
    const std::string once = nn::EncodeTensorsImage(tensors, codec);
    const std::string twice = nn::EncodeTensorsImage(tensors, codec);
    EXPECT_EQ(once, twice) << nn::TensorCodecName(codec);
  }
}

// ---- FKDW v2 container -----------------------------------------------------

TEST(QuantTest, SaveLoadEncodedRoundTripMatchesScalarCodec) {
  const std::string dir = TestDir("fkd_quant_fkdw");
  Rng rng(11);
  Tensor weights = Tensor::Randn(40, 30, &rng);
  Tensor bias = Tensor::Rand(1, 30, &rng, -0.5f, 0.5f);
  const std::vector<std::pair<std::string, const Tensor*>> tensors = {
      {"weights", &weights}, {"bias", &bias}};
  for (const auto codec :
       {nn::TensorCodec::kFp32, nn::TensorCodec::kFp16,
        nn::TensorCodec::kInt8}) {
    const std::string path =
        dir + "/t_" + nn::TensorCodecName(codec) + ".fkdw";
    ASSERT_TRUE(nn::SaveTensorsEncoded(tensors, path, codec).ok());
    auto loaded = nn::LoadTensors(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded.value().size(), 2u);
    for (size_t i = 0; i < tensors.size(); ++i) {
      EXPECT_EQ(loaded.value()[i].first, tensors[i].first);
      // The file round trip must equal the in-memory scalar round trip
      // bit for bit: one deterministic dequant path, no second opinion.
      const Tensor expected =
          nn::RoundTripThroughCodec(*tensors[i].second, codec);
      const Tensor& got = loaded.value()[i].second;
      ASSERT_EQ(got.shape(), expected.shape());
      EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                            got.size() * sizeof(float)),
                0)
          << tensors[i].first << " via " << nn::TensorCodecName(codec);
    }
  }
  fs::remove_all(dir);
}

TEST(QuantTest, EncodedFileSizesShrinkAsAdvertised) {
  const std::string dir = TestDir("fkd_quant_sizes");
  Rng rng(13);
  Tensor big = Tensor::Randn(128, 128, &rng);
  const std::vector<std::pair<std::string, const Tensor*>> tensors = {
      {"big", &big}};
  uintmax_t sizes[3] = {0, 0, 0};
  for (const auto codec :
       {nn::TensorCodec::kFp32, nn::TensorCodec::kFp16,
        nn::TensorCodec::kInt8}) {
    const std::string path =
        dir + "/s_" + nn::TensorCodecName(codec) + ".fkdw";
    ASSERT_TRUE(nn::SaveTensorsEncoded(tensors, path, codec).ok());
    sizes[static_cast<int>(codec)] = fs::file_size(path);
  }
  EXPECT_LE(sizes[1], sizes[0] * 55 / 100);  // fp16 ≤ 55% of fp32
  EXPECT_LE(sizes[2], sizes[0] * 30 / 100);  // int8 ≤ 30% of fp32
  fs::remove_all(dir);
}

TEST(QuantTest, V1Fp32FilesStayByteStable) {
  // SaveTensors and SaveTensorsEncoded(kFp32) must write identical bytes —
  // the checkpoint bitwise-resume contract depends on the v1 layout.
  const std::string dir = TestDir("fkd_quant_v1");
  Rng rng(17);
  Tensor t = Tensor::Randn(6, 5, &rng);
  const std::vector<std::pair<std::string, const Tensor*>> tensors = {
      {"t", &t}};
  ASSERT_TRUE(nn::SaveTensors(tensors, dir + "/a.fkdw").ok());
  ASSERT_TRUE(
      nn::SaveTensorsEncoded(tensors, dir + "/b.fkdw", nn::TensorCodec::kFp32)
          .ok());
  auto a = ReadFileToString(dir + "/a.fkdw");
  auto b = ReadFileToString(dir + "/b.fkdw");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.value(), nn::EncodeTensorsImage(tensors, nn::TensorCodec::kFp32));
  fs::remove_all(dir);
}

TEST(QuantTest, DecodeRejectsTruncationBadDtypeAndTrailingBytes) {
  Rng rng(23);
  Tensor t = Tensor::Randn(4, 4, &rng);
  const std::vector<std::pair<std::string, const Tensor*>> tensors = {
      {"t", &t}};
  const std::string image =
      nn::EncodeTensorsImage(tensors, nn::TensorCodec::kInt8);
  // Any truncation point fails loudly.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{11}, image.size() - 1}) {
    auto r = nn::DecodeTensors(image.data(), cut, "truncated");
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
  // Trailing garbage after the last record is corruption, not ignored.
  {
    std::string padded = image + "x";
    auto r = nn::DecodeTensors(padded.data(), padded.size(), "trailing");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
  // An out-of-range dtype byte is corruption. The dtype of the first v2
  // record sits right after magic+version+count+name_len+name.
  {
    std::string bad = image;
    const size_t dtype_at = 4 + 4 + 4 + 4 + 1;
    ASSERT_EQ(static_cast<uint8_t>(bad[dtype_at]),
              static_cast<uint8_t>(nn::TensorCodec::kInt8));
    bad[dtype_at] = 0x7F;
    auto r = nn::DecodeTensors(bad.data(), bad.size(), "bad dtype");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
}

// ---- block codec / FKDZ ----------------------------------------------------

std::string RedundantData(size_t size) {
  std::string data;
  data.reserve(size);
  const char* phrase = "the quick brown fox jumps over the lazy dog. ";
  while (data.size() < size) data.append(phrase);
  data.resize(size);
  return data;
}

std::string RandomData(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::string data(size, '\0');
  for (auto& c : data) c = static_cast<char>(rng.UniformInt(uint64_t{256}));
  return data;
}

TEST(TierTest, LzRoundTripsCompressibleAndIncompressibleData) {
  const BlockCodec* lz = GetBlockCodec(BlockCodecId::kLz);
  ASSERT_NE(lz, nullptr);
  for (const std::string& input :
       {std::string(), std::string("a"), std::string("abcd"),
        RedundantData(10), RedundantData(100000), RandomData(65536, 3),
        std::string(200000, 'z')}) {
    std::string compressed;
    lz->Compress(input, &compressed);
    std::string back;
    ASSERT_TRUE(lz->Decompress(compressed, input.size(), &back).ok());
    EXPECT_EQ(back, input);
  }
}

TEST(TierTest, LzActuallyCompressesRedundantData) {
  const BlockCodec* lz = GetBlockCodec(BlockCodecId::kLz);
  const std::string input = RedundantData(64 * 1024);
  std::string compressed;
  lz->Compress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 2);
}

TEST(TierTest, LzCompressionIsDeterministic) {
  const BlockCodec* lz = GetBlockCodec(BlockCodecId::kLz);
  const std::string input = RedundantData(50000) + RandomData(5000, 9);
  std::string once, twice;
  lz->Compress(input, &once);
  lz->Compress(input, &twice);
  EXPECT_EQ(once, twice);
}

TEST(TierTest, LzDecompressRejectsGarbage) {
  const BlockCodec* lz = GetBlockCodec(BlockCodecId::kLz);
  Rng rng(41);
  // Random byte soup must never crash or over-read: either it happens to
  // decode to the wrong size (Corruption) or a token is invalid
  // (Corruption). Valid-looking decodes of the exact size are
  // astronomically unlikely at this length.
  for (int trial = 0; trial < 200; ++trial) {
    const std::string garbage = RandomData(64 + rng.UniformInt(uint64_t{256}),
                                           1000 + trial);
    std::string out;
    const Status s = lz->Decompress(garbage, 1 << 16, &out);
    if (s.ok()) EXPECT_EQ(out.size(), 1u << 16);
  }
}

TEST(TierTest, FkdzRoundTripsAcrossSizesAndCodecs) {
  const std::string dir = TestDir("fkd_tier_fkdz");
  const size_t kBlock = 4096;
  size_t case_id = 0;
  for (const auto codec : {BlockCodecId::kRaw, BlockCodecId::kLz}) {
    for (const std::string& input :
         {std::string(), std::string("x"), RedundantData(kBlock - 1),
          RedundantData(kBlock), RedundantData(kBlock + 1),
          RedundantData(10 * kBlock + 17), RandomData(3 * kBlock, 77)}) {
      const std::string path = dir + "/f" + std::to_string(case_id++);
      ASSERT_TRUE(WriteCompressedFile(path, input, codec, kBlock).ok());
      auto back = ReadCompressedFile(path);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      EXPECT_EQ(back.value(), input);
    }
  }
  fs::remove_all(dir);
}

TEST(TierTest, FkdzDetectsEveryByteFlip) {
  const std::string dir = TestDir("fkd_tier_flip");
  const std::string path = dir + "/blob";
  const std::string input = RedundantData(3 * 4096 + 100);
  ASSERT_TRUE(
      WriteCompressedFile(path, input, BlockCodecId::kLz, 4096).ok());
  auto pristine = ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());
  const std::string bytes = pristine.value();
  // Flip one byte at a sweep of offsets covering the header, each block
  // header and each block body; every flip must be caught (magic/version/
  // codec check or per-block CRC), never decoded into silently-wrong data.
  for (size_t at = 0; at < bytes.size();
       at += std::max<size_t>(1, bytes.size() / 64)) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x20);
    ASSERT_TRUE(WriteStringToFile(path, corrupt).ok());
    auto r = ReadCompressedFile(path);
    ASSERT_FALSE(r.ok()) << "byte flip at " << at << " went undetected";
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << "at " << at;
  }
  fs::remove_all(dir);
}

TEST(TierTest, FkdzDetectsTruncationAndTrailingBytes) {
  const std::string dir = TestDir("fkd_tier_trunc");
  const std::string path = dir + "/blob";
  const std::string input = RedundantData(2 * 4096 + 9);
  ASSERT_TRUE(
      WriteCompressedFile(path, input, BlockCodecId::kLz, 4096).ok());
  auto pristine = ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());
  const std::string bytes = pristine.value();
  for (size_t keep : {size_t{0}, size_t{4}, bytes.size() / 2,
                      bytes.size() - 1}) {
    ASSERT_TRUE(WriteStringToFile(path, bytes.substr(0, keep)).ok());
    auto r = ReadCompressedFile(path);
    ASSERT_FALSE(r.ok()) << "kept " << keep;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
  ASSERT_TRUE(WriteStringToFile(path, bytes + "zz").ok());
  auto r = ReadCompressedFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  fs::remove_all(dir);
}

TEST(TierTest, FkdzWritesAreDeterministic) {
  const std::string dir = TestDir("fkd_tier_det");
  const std::string input = RedundantData(100000);
  ASSERT_TRUE(
      WriteCompressedFile(dir + "/a", input, BlockCodecId::kLz).ok());
  ASSERT_TRUE(
      WriteCompressedFile(dir + "/b", input, BlockCodecId::kLz).ok());
  auto a = ReadFileToString(dir + "/a");
  auto b = ReadFileToString(dir + "/b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
  fs::remove_all(dir);
}

// ---- mmap + accountant -----------------------------------------------------

TEST(TierTest, MappedFileExposesExactBytes) {
  const std::string dir = TestDir("fkd_tier_mmap");
  const std::string path = dir + "/data";
  const std::string content = RandomData(12345, 55);
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().size(), content.size());
  EXPECT_EQ(mapped.value().view(), content);
  fs::remove_all(dir);
}

TEST(TierTest, MappedFileHandlesEmptyAndMissing) {
  const std::string dir = TestDir("fkd_tier_mmap2");
  const std::string empty = dir + "/empty";
  ASSERT_TRUE(WriteStringToFile(empty, "").ok());
  auto mapped = MappedFile::Open(empty);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value().size(), 0u);
  EXPECT_TRUE(mapped.value().is_open());

  auto missing = MappedFile::Open(dir + "/nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
  fs::remove_all(dir);
}

TEST(TierTest, MemoryAccountantLedgerInvariants) {
  MemoryAccountant accountant(1000);
  EXPECT_FALSE(accountant.unlimited());
  EXPECT_FALSE(accountant.OverBudget());
  accountant.Charge(1, 600);
  accountant.Charge(2, 300);
  EXPECT_EQ(accountant.total(), 900u);
  EXPECT_FALSE(accountant.OverBudget());
  accountant.Charge(3, 400);
  EXPECT_TRUE(accountant.OverBudget());
  EXPECT_EQ(accountant.Excess(), 300u);
  // Re-charging a key replaces, never double-counts.
  accountant.Charge(1, 100);
  EXPECT_EQ(accountant.total(), 800u);
  EXPECT_FALSE(accountant.OverBudget());
  EXPECT_EQ(accountant.Release(2), 300u);
  EXPECT_EQ(accountant.Release(2), 0u);  // idempotent
  EXPECT_EQ(accountant.total(), 500u);
  EXPECT_EQ(accountant.ChargeOf(3), 400u);
  EXPECT_EQ(accountant.entries(), 2u);

  MemoryAccountant unlimited(0);
  unlimited.Charge(1, size_t{1} << 40);
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_FALSE(unlimited.OverBudget());
  EXPECT_EQ(unlimited.Excess(), 0u);
}

}  // namespace
}  // namespace fkd
