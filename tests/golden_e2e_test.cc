// Golden end-to-end regression: fixed-seed synthetic PolitiFact → train →
// snapshot to disk → serve round-trip. The checked-in accuracy/F1 numbers
// are exact (not tolerances): the whole pipeline — generator, tokenizer,
// HFLU/GDU forwards, training loop, snapshot codec — is bitwise
// deterministic, so any drift in these constants is a behaviour change
// that must be reviewed, not absorbed.
//
// The parity test closes the loop on the determinism contract: scores
// served through the Router (engine micro-batching, worker threads) are
// bitwise identical to direct Snapshot::Score calls, at 1 and at 4 intra-op
// threads (ThreadPool chunk bounds are a pure function of range+grain).

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/fake_detector.h"
#include "core/hflu.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "common/thread_pool.h"
#include "serve/model_store.h"
#include "serve/router.h"
#include "serve/snapshot.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "text/features.h"

namespace fkd {
namespace serve {
namespace {

// ---- fixed-seed pipeline ----------------------------------------------------------
//
// Every seed below is load-bearing: the golden constants are a function of
// all of them. Change any, re-bake the constants.

constexpr size_t kArticles = 120;
constexpr size_t kCreators = 90;
constexpr uint64_t kSplitSeed = 77;
constexpr uint64_t kTrainSeed = 7;
constexpr size_t kFolds = 5;

core::FakeDetectorConfig GoldenConfig() {
  core::FakeDetectorConfig config;
  config.epochs = 20;
  config.explicit_words = 60;
  config.latent_vocabulary = 200;
  config.hflu.max_sequence_length = 10;
  config.hflu.gru_hidden = 12;
  config.hflu.latent_dim = 10;
  config.hflu.embed_dim = 10;
  config.gdu_hidden = 16;
  config.verbose = false;
  return config;
}

struct GoldenFixture {
  data::Dataset dataset;
  graph::HeterogeneousGraph graph;
  core::FakeDetector detector;
  std::vector<int32_t> test_articles;
  std::string snapshot_dir;
};

const GoldenFixture& Fixture() {
  static GoldenFixture* fixture = [] {
    auto dataset = data::GeneratePolitiFact(
        data::GeneratorOptions::Scaled(kArticles, kCreators));
    FKD_CHECK_OK(dataset.status());
    auto graph = dataset.value().BuildGraph();
    FKD_CHECK_OK(graph.status());
    auto* f = new GoldenFixture{std::move(dataset).value(),
                                std::move(graph).value(),
                                core::FakeDetector(GoldenConfig()),
                                {},
                                {}};
    Rng rng(kSplitSeed);
    auto splits = data::KFoldTriSplits(f->dataset.articles.size(),
                                       f->dataset.creators.size(),
                                       f->dataset.subjects.size(), kFolds,
                                       &rng);
    FKD_CHECK_OK(splits.status());
    eval::TrainContext context;
    context.dataset = &f->dataset;
    context.graph = &f->graph;
    context.train_articles = splits.value()[0].articles.train;
    context.train_creators = splits.value()[0].creators.train;
    context.train_subjects = splits.value()[0].subjects.train;
    context.granularity = eval::LabelGranularity::kBinary;
    context.seed = kTrainSeed;
    FKD_CHECK_OK(f->detector.Train(context));
    f->test_articles = splits.value()[0].articles.test;

    f->snapshot_dir = (std::filesystem::temp_directory_path() /
                       ("fkd_golden_snapshot_" + std::to_string(::getpid())))
                          .string();
    std::filesystem::remove_all(f->snapshot_dir);
    FKD_CHECK_OK(ExportSnapshot(f->detector, f->snapshot_dir));
    return f;
  }();
  return *fixture;
}

/// Builds the serving request for one test article, carrying its full graph
/// context so the e2e path exercises the creator/subject GDU ports too.
ArticleRequest RequestFor(const data::Article& article) {
  ArticleRequest request;
  request.text = article.text;
  request.creator_id = article.creator;
  request.subject_ids = article.subjects;
  return request;
}

/// Direct (non-router) scores for one article through the reloaded
/// snapshot, as class probabilities.
std::vector<float> DirectProbabilities(const Snapshot& snapshot,
                                       const data::Article& article) {
  const Tensor logits = snapshot.Score({article.text}, {article.creator},
                                       {article.subjects});
  const Tensor probabilities = SoftmaxRows(logits);
  std::vector<float> row(probabilities.cols());
  for (size_t c = 0; c < probabilities.cols(); ++c) {
    row[c] = probabilities.At(0, c);
  }
  return row;
}

/// Held-out-fold metrics served through a reloaded snapshot.
eval::BinaryMetrics MetricsThroughSnapshot(const Snapshot& snapshot) {
  const GoldenFixture& fixture = Fixture();
  eval::ConfusionMatrix matrix(snapshot.num_classes);
  for (int32_t id : fixture.test_articles) {
    const data::Article& article = fixture.dataset.articles[id];
    const Tensor logits =
        snapshot.Score({article.text}, {article.creator}, {article.subjects});
    int32_t predicted = 0;
    for (size_t c = 1; c < logits.cols(); ++c) {
      if (logits.At(0, c) > logits.At(0, predicted)) {
        predicted = static_cast<int32_t>(c);
      }
    }
    matrix.Add(eval::TargetOf(article.label, snapshot.granularity), predicted);
  }
  return eval::ComputeBinaryMetrics(matrix);
}

/// Quantized twins of the golden snapshot, exported once from the same
/// trained detector: fp16 and int8 weights, both with the LZ-compressed
/// cold tier (the production shape of a quantized artifact).
struct QuantizedTwins {
  std::string fp16_dir;
  std::string int8_dir;
};

const QuantizedTwins& Twins() {
  static QuantizedTwins* twins = [] {
    const GoldenFixture& fixture = Fixture();
    auto* t = new QuantizedTwins();
    const std::string stem =
        (std::filesystem::temp_directory_path() /
         ("fkd_golden_quant_" + std::to_string(::getpid())))
            .string();
    t->fp16_dir = stem + "_fp16";
    t->int8_dir = stem + "_int8";
    std::filesystem::remove_all(t->fp16_dir);
    std::filesystem::remove_all(t->int8_dir);
    SnapshotOptions fp16;
    fp16.weights_codec = nn::TensorCodec::kFp16;
    fp16.cold_codec = BlockCodecId::kLz;
    FKD_CHECK_OK(ExportSnapshot(fixture.detector, t->fp16_dir, fp16));
    SnapshotOptions int8;
    int8.weights_codec = nn::TensorCodec::kInt8;
    int8.cold_codec = BlockCodecId::kLz;
    FKD_CHECK_OK(ExportSnapshot(fixture.detector, t->int8_dir, int8));
    return t;
  }();
  return *twins;
}

// ---- golden metrics ---------------------------------------------------------------

// Baked from one run of this exact pipeline (seeds above). Exact equality
// on purpose — see the file comment.
constexpr double kGoldenAccuracy = 0.70833333333333337;   // 17/24
constexpr double kGoldenPrecision = 0.70588235294117652;  // 12/17
constexpr double kGoldenRecall = 0.8571428571428571;      // 12/14
constexpr double kGoldenF1 = 0.77419354838709675;         // 24/31

TEST(GoldenE2ETest, HeldOutMetricsMatchCheckedInGolden) {
  const GoldenFixture& fixture = Fixture();
  ASSERT_FALSE(fixture.test_articles.empty());

  // Serve the held-out fold through the durable path: snapshot reloaded
  // from disk (manifest-verified), not the in-memory trained model.
  auto loaded = LoadSnapshot(fixture.snapshot_dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Snapshot& snapshot = loaded.value();

  const eval::BinaryMetrics metrics = MetricsThroughSnapshot(snapshot);

  EXPECT_DOUBLE_EQ(metrics.accuracy, kGoldenAccuracy);
  EXPECT_DOUBLE_EQ(metrics.precision, kGoldenPrecision);
  EXPECT_DOUBLE_EQ(metrics.recall, kGoldenRecall);
  EXPECT_DOUBLE_EQ(metrics.f1, kGoldenF1);
  // The golden constants must also describe a model that actually learned
  // something, or a regression to coin-flipping could hide inside an
  // accidentally-matching constant update.
  EXPECT_GT(metrics.accuracy, 0.5);
}

// ---- bitwise parity: direct vs router, 1 vs 4 threads -----------------------------

std::vector<std::vector<float>> ScoreThroughRouter(
    const std::vector<int32_t>& article_ids, uint64_t* served_version) {
  const GoldenFixture& fixture = Fixture();
  VersionedModelStore store;
  auto model = store.Load(fixture.snapshot_dir);
  FKD_CHECK_OK(model.status());

  RouterOptions options;
  options.num_replicas = 2;
  options.engine.num_workers = 1;
  options.engine.max_batch_delay_us = 0;
  options.canary_permille = 0;
  Router router(options);
  FKD_CHECK_OK(router.Start(model.value()));

  std::vector<std::vector<float>> scores;
  for (int32_t id : article_ids) {
    // One request at a time: singleton batches on both paths, so padding
    // cannot differ between direct and routed scoring.
    auto submitted =
        router.Submit(RequestFor(fixture.dataset.articles[id]));
    FKD_CHECK_OK(submitted.status());
    auto result = submitted.value().get();
    FKD_CHECK_OK(result.status());
    FKD_CHECK(!result.value().from_cache) << "distinct articles cannot hit";
    scores.push_back(result.value().probabilities);
    *served_version = result.value().model_version;
  }
  router.Stop();
  return scores;
}

TEST(GoldenE2ETest, RouterScoresBitwiseMatchDirectAtOneAndFourThreads) {
  const GoldenFixture& fixture = Fixture();
  auto loaded = LoadSnapshot(fixture.snapshot_dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Snapshot& snapshot = loaded.value();

  const size_t sample = std::min<size_t>(fixture.test_articles.size(), 8);
  const std::vector<int32_t> ids(fixture.test_articles.begin(),
                                 fixture.test_articles.begin() + sample);

  // Reference scores on the direct path with a single-thread pool.
  ThreadPool::ResetGlobal(1);
  std::vector<std::vector<float>> direct;
  for (int32_t id : ids) {
    direct.push_back(DirectProbabilities(snapshot, fixture.dataset.articles[id]));
  }
  uint64_t version_one = 0;
  const auto routed_one = ScoreThroughRouter(ids, &version_one);

  // Same work at 4 intra-op threads: chunk bounds are thread-count
  // independent, so every float must be identical.
  ThreadPool::ResetGlobal(4);
  std::vector<std::vector<float>> direct_four;
  for (int32_t id : ids) {
    direct_four.push_back(
        DirectProbabilities(snapshot, fixture.dataset.articles[id]));
  }
  uint64_t version_four = 0;
  const auto routed_four = ScoreThroughRouter(ids, &version_four);
  ThreadPool::ResetGlobal(0);  // back to the environment's sizing

  EXPECT_EQ(version_one, 1u);
  EXPECT_EQ(version_four, 1u);
  ASSERT_EQ(routed_one.size(), ids.size());
  ASSERT_EQ(routed_four.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(direct[i].size(), snapshot.num_classes);
    ASSERT_EQ(routed_one[i].size(), snapshot.num_classes);
    for (size_t c = 0; c < snapshot.num_classes; ++c) {
      // EXPECT_EQ on floats: bitwise-or-bust, not almost-equal.
      EXPECT_EQ(routed_one[i][c], direct[i][c])
          << "router vs direct, article " << ids[i] << " class " << c;
      EXPECT_EQ(direct_four[i][c], direct[i][c])
          << "direct 4 threads vs 1 thread, article " << ids[i];
      EXPECT_EQ(routed_four[i][c], direct[i][c])
          << "router 4 threads vs direct 1 thread, article " << ids[i];
    }
  }
}

// ---- bitwise parity: fused ScoreArticles vs the tape-based Step path --------------

// ScoreArticles now runs the cache-blocked GduCell::StepInference (packed
// gate GEMM, fused bias+activation epilogues). This case pins it to the
// original serving formulation — tape-based GDU Step over the unfused
// kernels — float for float, at 1 and 4 intra-op threads.
TEST(GoldenE2ETest, ScoreArticlesBitwiseMatchesTapeBasedStepPath) {
  const GoldenFixture& fixture = Fixture();
  auto loaded = LoadSnapshot(fixture.snapshot_dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Snapshot& snapshot = loaded.value();
  const core::DiffusionModel& model = *snapshot.model;

  const size_t sample = std::min<size_t>(fixture.test_articles.size(), 8);
  std::vector<std::string> texts;
  std::vector<std::vector<int32_t>> subject_groups;
  std::vector<std::vector<int32_t>> creator_groups;
  for (size_t i = 0; i < sample; ++i) {
    const data::Article& article =
        fixture.dataset.articles[fixture.test_articles[i]];
    texts.push_back(article.text);
    subject_groups.push_back(article.subjects);
    creator_groups.push_back(article.creator >= 0
                                 ? std::vector<int32_t>{article.creator}
                                 : std::vector<int32_t>{});
  }
  const auto documents = text::TokenizeDocuments(texts);
  const core::HfluInput input = model.article_hflu().PrepareBatch(documents);

  namespace ag = ::fkd::autograd;
  for (const size_t threads : {1u, 4u}) {
    ThreadPool::ResetGlobal(threads);
    const Tensor fused =
        model.ScoreArticles(input, subject_groups, creator_groups,
                            snapshot.creator_states, snapshot.subject_states);

    ag::InferenceModeGuard no_grad;
    const ag::Variable xa = model.article_hflu().Forward(input);
    const ag::Variable za = ag::GroupMeanRows(
        ag::Variable(snapshot.subject_states, false, "hs"), subject_groups);
    const ag::Variable ta = ag::GroupMeanRows(
        ag::Variable(snapshot.creator_states, false, "hu"), creator_groups);
    const ag::Variable ha = model.article_gdu().Step(xa, za, ta);
    const Tensor seed_path = model.article_head().Forward(ha).value();

    EXPECT_TRUE(fused == seed_path)
        << "fused ScoreArticles diverged from the tape-based Step path at "
        << threads << " thread(s)";
  }
  ThreadPool::ResetGlobal(0);
}

// ---- quantized twins: accuracy lock + determinism ---------------------------------

// The accuracy gate of the quantization harness: the same trained model,
// exported at fp16 and int8, served end to end from disk. fp16 perturbs
// this model too little to move a single argmax on the held-out fold, so
// its metrics are locked to the fp32 golden constants EXACTLY; int8 is
// held to a small delta gate on accuracy and F1.
TEST(GoldenE2ETest, QuantizedTwinsHoldTheAccuracyGate) {
  const QuantizedTwins& twins = Twins();

  auto fp16 = LoadSnapshot(twins.fp16_dir);
  ASSERT_TRUE(fp16.ok()) << fp16.status().ToString();
  const eval::BinaryMetrics fp16_metrics = MetricsThroughSnapshot(fp16.value());
  EXPECT_DOUBLE_EQ(fp16_metrics.accuracy, kGoldenAccuracy);
  EXPECT_DOUBLE_EQ(fp16_metrics.precision, kGoldenPrecision);
  EXPECT_DOUBLE_EQ(fp16_metrics.recall, kGoldenRecall);
  EXPECT_DOUBLE_EQ(fp16_metrics.f1, kGoldenF1);

  auto int8 = LoadSnapshot(twins.int8_dir);
  ASSERT_TRUE(int8.ok()) << int8.status().ToString();
  const eval::BinaryMetrics int8_metrics = MetricsThroughSnapshot(int8.value());
  EXPECT_NEAR(int8_metrics.accuracy, kGoldenAccuracy, 0.05);
  EXPECT_NEAR(int8_metrics.f1, kGoldenF1, 0.05);
  // A quantized model must still clearly beat coin-flipping.
  EXPECT_GT(int8_metrics.accuracy, 0.6);
}

// Dequantisation is one deterministic element-wise path, so a quantized
// snapshot served at 1 and at 4 intra-op threads — and across independent
// loads — produces bitwise identical probabilities.
TEST(GoldenE2ETest, QuantizedServingIsBitwiseReproducible) {
  const GoldenFixture& fixture = Fixture();
  const QuantizedTwins& twins = Twins();
  for (const std::string& dir : {twins.fp16_dir, twins.int8_dir}) {
    auto first = LoadSnapshot(dir);
    auto second = LoadSnapshot(dir);
    ASSERT_TRUE(first.ok() && second.ok());

    const size_t sample = std::min<size_t>(fixture.test_articles.size(), 6);
    for (size_t i = 0; i < sample; ++i) {
      const data::Article& article =
          fixture.dataset.articles[fixture.test_articles[i]];
      ThreadPool::ResetGlobal(1);
      const std::vector<float> one =
          DirectProbabilities(first.value(), article);
      ThreadPool::ResetGlobal(4);
      const std::vector<float> four =
          DirectProbabilities(first.value(), article);
      const std::vector<float> reloaded =
          DirectProbabilities(second.value(), article);
      ThreadPool::ResetGlobal(0);
      ASSERT_EQ(one.size(), four.size());
      for (size_t c = 0; c < one.size(); ++c) {
        EXPECT_EQ(one[c], four[c]) << dir << " thread-count drift, class " << c;
        EXPECT_EQ(one[c], reloaded[c]) << dir << " reload drift, class " << c;
      }
    }
  }
}

// ---- storage gate -----------------------------------------------------------------

uintmax_t DirectoryBytes(const std::string& directory) {
  uintmax_t total = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

// Size regression gate (also registered as the `storage_gate` ctest): the
// quantized artifacts must deliver their bytes. The weights container —
// what quantization actually targets — is held to the hard int8 ≤ 30% /
// fp16 ≤ 55% ratios. Whole-directory totals (config, labels, manifest,
// compressed cold tier) get two points of slack: the golden model is tiny,
// so the fixed per-snapshot metadata footprint is proportionally large,
// and on production-sized models the directory ratio converges to the
// weights ratio.
TEST(StorageGateTest, QuantizedSnapshotsShrinkAsAdvertised) {
  const GoldenFixture& fixture = Fixture();
  const QuantizedTwins& twins = Twins();

  const uintmax_t fp32_weights =
      std::filesystem::file_size(fixture.snapshot_dir + "/weights.fkdw");
  const uintmax_t fp16_weights =
      std::filesystem::file_size(twins.fp16_dir + "/weights.fkdw");
  const uintmax_t int8_weights =
      std::filesystem::file_size(twins.int8_dir + "/weights.fkdw");
  ASSERT_GT(fp32_weights, 0u);
  EXPECT_LE(fp16_weights, fp32_weights * 55 / 100)
      << "fp16 weights are " << fp16_weights << " of " << fp32_weights
      << " fp32 bytes";
  EXPECT_LE(int8_weights, fp32_weights * 30 / 100)
      << "int8 weights are " << int8_weights << " of " << fp32_weights
      << " fp32 bytes";

  const uintmax_t fp32_bytes = DirectoryBytes(fixture.snapshot_dir);
  const uintmax_t fp16_bytes = DirectoryBytes(twins.fp16_dir);
  const uintmax_t int8_bytes = DirectoryBytes(twins.int8_dir);
  EXPECT_LE(fp16_bytes, fp32_bytes * 57 / 100)
      << "fp16 snapshot is " << fp16_bytes << " of " << fp32_bytes
      << " fp32 bytes";
  EXPECT_LE(int8_bytes, fp32_bytes * 32 / 100)
      << "int8 snapshot is " << int8_bytes << " of " << fp32_bytes
      << " fp32 bytes";
}

}  // namespace
}  // namespace serve
}  // namespace fkd
