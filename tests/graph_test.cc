#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/alias_table.h"
#include "graph/hetero_graph.h"
#include "graph/random_walk.h"
#include "graph/stats.h"

namespace fkd {
namespace graph {
namespace {

HeterogeneousGraph MakeSmallGraph() {
  // 3 articles, 2 creators, 2 subjects.
  HeterogeneousGraph graph(3, 2, 2);
  FKD_CHECK_OK(graph.AddEdge(EdgeType::kAuthorship, 0, 0));
  FKD_CHECK_OK(graph.AddEdge(EdgeType::kAuthorship, 1, 0));
  FKD_CHECK_OK(graph.AddEdge(EdgeType::kAuthorship, 2, 1));
  FKD_CHECK_OK(graph.AddEdge(EdgeType::kSubjectIndication, 0, 0));
  FKD_CHECK_OK(graph.AddEdge(EdgeType::kSubjectIndication, 0, 1));
  FKD_CHECK_OK(graph.AddEdge(EdgeType::kSubjectIndication, 1, 1));
  FKD_CHECK_OK(graph.AddEdge(EdgeType::kSubjectIndication, 2, 1));
  FKD_CHECK_OK(graph.Finalize());
  return graph;
}

TEST(HeteroGraphTest, NodeCounts) {
  const auto graph = MakeSmallGraph();
  EXPECT_EQ(graph.NumNodes(NodeType::kArticle), 3u);
  EXPECT_EQ(graph.NumNodes(NodeType::kCreator), 2u);
  EXPECT_EQ(graph.NumNodes(NodeType::kSubject), 2u);
  EXPECT_EQ(graph.TotalNodes(), 7u);
  EXPECT_EQ(graph.NumEdges(EdgeType::kAuthorship), 3u);
  EXPECT_EQ(graph.NumEdges(EdgeType::kSubjectIndication), 4u);
}

TEST(HeteroGraphTest, ForwardNeighbors) {
  const auto graph = MakeSmallGraph();
  const auto creators = graph.ArticleNeighbors(EdgeType::kAuthorship, 0);
  ASSERT_EQ(creators.size(), 1u);
  EXPECT_EQ(creators[0], 0);
  const auto subjects = graph.ArticleNeighbors(EdgeType::kSubjectIndication, 0);
  ASSERT_EQ(subjects.size(), 2u);
  EXPECT_EQ(subjects[0], 0);
  EXPECT_EQ(subjects[1], 1);
}

TEST(HeteroGraphTest, ReverseNeighbors) {
  const auto graph = MakeSmallGraph();
  const auto articles_of_creator0 =
      graph.ReverseNeighbors(EdgeType::kAuthorship, 0);
  ASSERT_EQ(articles_of_creator0.size(), 2u);
  EXPECT_EQ(articles_of_creator0[0], 0);
  EXPECT_EQ(articles_of_creator0[1], 1);
  const auto articles_of_subject1 =
      graph.ReverseNeighbors(EdgeType::kSubjectIndication, 1);
  EXPECT_EQ(articles_of_subject1.size(), 3u);
}

TEST(HeteroGraphTest, GlobalIdRoundTrip) {
  const auto graph = MakeSmallGraph();
  EXPECT_EQ(graph.GlobalId(NodeType::kArticle, 2), 2);
  EXPECT_EQ(graph.GlobalId(NodeType::kCreator, 0), 3);
  EXPECT_EQ(graph.GlobalId(NodeType::kSubject, 1), 6);
  for (int32_t g = 0; g < 7; ++g) {
    const NodeType type = graph.TypeOfGlobal(g);
    const int32_t local = graph.LocalIndexOfGlobal(g);
    EXPECT_EQ(graph.GlobalId(type, local), g);
  }
}

TEST(HeteroGraphTest, GlobalNeighborsAreSymmetric) {
  const auto graph = MakeSmallGraph();
  for (int32_t g = 0; g < 7; ++g) {
    for (int32_t neighbor : graph.GlobalNeighbors(g)) {
      const auto back = graph.GlobalNeighbors(neighbor);
      EXPECT_NE(std::find(back.begin(), back.end(), g), back.end())
          << g << " <-> " << neighbor;
    }
  }
}

TEST(HeteroGraphTest, GlobalEdgesBothDirections) {
  const auto graph = MakeSmallGraph();
  EXPECT_EQ(graph.GlobalEdges().size(), 2u * (3u + 4u));
}

TEST(HeteroGraphTest, AddEdgeRangeChecks) {
  HeterogeneousGraph graph(2, 1, 1);
  EXPECT_EQ(graph.AddEdge(EdgeType::kAuthorship, 5, 0).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(graph.AddEdge(EdgeType::kAuthorship, 0, 3).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(graph.AddEdge(EdgeType::kSubjectIndication, -1, 0).code(),
            StatusCode::kOutOfRange);
}

TEST(HeteroGraphTest, DuplicateEdgeDetectedAtFinalize) {
  HeterogeneousGraph graph(2, 1, 1);
  ASSERT_TRUE(graph.AddEdge(EdgeType::kAuthorship, 0, 0).ok());
  ASSERT_TRUE(graph.AddEdge(EdgeType::kAuthorship, 0, 0).ok());
  EXPECT_EQ(graph.Finalize().code(), StatusCode::kCorruption);
}

TEST(HeteroGraphTest, FinalizeTwiceRejected) {
  HeterogeneousGraph graph(1, 1, 1);
  ASSERT_TRUE(graph.AddEdge(EdgeType::kAuthorship, 0, 0).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  EXPECT_EQ(graph.Finalize().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(graph.AddEdge(EdgeType::kSubjectIndication, 0, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(HeteroGraphTest, IsolatedNodesHaveNoNeighbors) {
  HeterogeneousGraph graph(2, 2, 2);
  ASSERT_TRUE(graph.AddEdge(EdgeType::kAuthorship, 0, 0).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  EXPECT_TRUE(graph.ArticleNeighbors(EdgeType::kSubjectIndication, 0).empty());
  EXPECT_TRUE(graph.ReverseNeighbors(EdgeType::kAuthorship, 1).empty());
  EXPECT_EQ(graph.GlobalDegree(graph.GlobalId(NodeType::kSubject, 0)), 0u);
}

TEST(NodeTypeTest, Names) {
  EXPECT_STREQ(NodeTypeName(NodeType::kArticle), "article");
  EXPECT_STREQ(EdgeTypeName(EdgeType::kSubjectIndication),
               "subject_indication");
}

// ---- AliasTable ------------------------------------------------------------------

TEST(AliasTableTest, UniformWeights) {
  Rng rng(1);
  AliasTable table({1.0, 1.0, 1.0, 1.0});
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[table.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(AliasTableTest, SkewedWeights) {
  Rng rng(2);
  AliasTable table({8.0, 1.0, 1.0});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 50000; ++i) ++counts[table.Sample(&rng)];
  EXPECT_NEAR(counts[0] / 50000.0, 0.8, 0.02);
  EXPECT_NEAR(counts[1] / 50000.0, 0.1, 0.02);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  Rng rng(3);
  AliasTable table({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.Sample(&rng), 1u);
}

TEST(AliasTableTest, SingleEntry) {
  Rng rng(4);
  AliasTable table({42.0});
  EXPECT_EQ(table.Sample(&rng), 0u);
}

class AliasDistribution : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasDistribution, EmpiricalMatchesTheoretical) {
  const auto weights = GetParam();
  double total = 0.0;
  for (double w : weights) total += w;
  Rng rng(5);
  AliasTable table(weights);
  std::vector<int> counts(weights.size(), 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  for (size_t k = 0; k < weights.size(); ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), weights[k] / total, 0.015)
        << "bucket " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, AliasDistribution,
    ::testing::Values(std::vector<double>{1, 2, 3, 4},
                      std::vector<double>{100, 1},
                      std::vector<double>{0.1, 0.1, 0.1, 5.0},
                      std::vector<double>{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}));

// ---- Random walks ------------------------------------------------------------------

TEST(RandomWalkTest, WalkCountAndLength) {
  const auto graph = MakeSmallGraph();
  Rng rng(6);
  RandomWalkOptions options;
  options.walks_per_node = 3;
  options.walk_length = 5;
  const auto walks = GenerateRandomWalks(graph, options, &rng);
  EXPECT_EQ(walks.size(), 3u * graph.TotalNodes());
  for (const auto& walk : walks) {
    EXPECT_GE(walk.size(), 1u);
    EXPECT_LE(walk.size(), 5u);
  }
}

TEST(RandomWalkTest, StepsFollowEdges) {
  const auto graph = MakeSmallGraph();
  Rng rng(7);
  RandomWalkOptions options;
  options.walks_per_node = 2;
  options.walk_length = 6;
  for (const auto& walk : GenerateRandomWalks(graph, options, &rng)) {
    for (size_t i = 1; i < walk.size(); ++i) {
      const auto neighbors = graph.GlobalNeighbors(walk[i - 1]);
      EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), walk[i]),
                neighbors.end());
    }
  }
}

TEST(RandomWalkTest, IsolatedNodeGivesSingletonWalk) {
  HeterogeneousGraph graph(1, 1, 1);
  FKD_CHECK_OK(graph.AddEdge(EdgeType::kAuthorship, 0, 0));
  FKD_CHECK_OK(graph.Finalize());
  Rng rng(8);
  RandomWalkOptions options;
  options.walks_per_node = 1;
  options.walk_length = 4;
  const auto walks = GenerateRandomWalks(graph, options, &rng);
  const int32_t isolated = graph.GlobalId(NodeType::kSubject, 0);
  bool found = false;
  for (const auto& walk : walks) {
    if (walk[0] == isolated) {
      EXPECT_EQ(walk.size(), 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RandomWalkTest, EveryNodeStartsWalks) {
  const auto graph = MakeSmallGraph();
  Rng rng(9);
  RandomWalkOptions options;
  options.walks_per_node = 1;
  options.walk_length = 3;
  const auto walks = GenerateRandomWalks(graph, options, &rng);
  std::set<int32_t> starts;
  for (const auto& walk : walks) starts.insert(walk[0]);
  EXPECT_EQ(starts.size(), graph.TotalNodes());
}

// ---- stats ------------------------------------------------------------------------

TEST(StatsTest, DegreeHistogramAndFractions) {
  const std::vector<size_t> degrees = {1, 1, 1, 2, 5};
  const auto histogram = DegreeHistogram(degrees);
  EXPECT_EQ(histogram.at(1), 3u);
  EXPECT_EQ(histogram.at(2), 1u);
  const auto fractions = DegreeFractionDistribution(degrees);
  EXPECT_DOUBLE_EQ(fractions.at(1), 0.6);
}

TEST(StatsTest, PowerLawFitRecoversExponent) {
  // Sample from a known power law and check MLE recovery. The discrete
  // (k_min - 0.5) approximation of Clauset et al. is accurate only for
  // k_min >~ 6, so the fit runs on the tail.
  Rng rng(10);
  std::vector<size_t> degrees;
  for (int i = 0; i < 60000; ++i) {
    degrees.push_back(rng.PowerLaw(2.5, 1000000));
  }
  const auto fit = FitPowerLaw(degrees, /*k_min=*/6);
  EXPECT_NEAR(fit.alpha, 2.5, 0.15);
  EXPECT_GT(fit.num_samples, 1000u);
  EXPECT_LT(fit.num_samples, degrees.size());
}

TEST(StatsTest, PowerLawFitDegenerate) {
  EXPECT_EQ(FitPowerLaw({}).num_samples, 0u);
  EXPECT_EQ(FitPowerLaw({1}).num_samples, 1u);
  EXPECT_EQ(FitPowerLaw({1}).alpha, 0.0);
}

TEST(StatsTest, SummarizeDegrees) {
  const auto summary = SummarizeDegrees({4, 1, 3, 2});
  EXPECT_EQ(summary.min, 1u);
  EXPECT_EQ(summary.max, 4u);
  EXPECT_DOUBLE_EQ(summary.mean, 2.5);
  EXPECT_DOUBLE_EQ(summary.median, 2.5);
  const auto odd = SummarizeDegrees({5, 1, 3});
  EXPECT_DOUBLE_EQ(odd.median, 3.0);
}

TEST(StatsTest, SummarizeEmpty) {
  const auto summary = SummarizeDegrees({});
  EXPECT_EQ(summary.max, 0u);
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
}

}  // namespace
}  // namespace graph
}  // namespace fkd
