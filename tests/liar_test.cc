#include "data/liar.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace fkd {
namespace data {
namespace {

std::string WriteFixture(const std::string& name, const std::string& body) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::ofstream(path) << body;
  return path;
}

constexpr char kGoodRows[] =
    "1.json\ttrue\tIncome tax revenue grew last year\teconomy,taxes\t"
    "alice\tsenator\tohio\tdemocrat\t1\t2\t3\t4\t5\ta speech\n"
    "2.json\tfalse\tSecret gun hoax spreads online\tguns\tbob\tblogger\t"
    "texas\trepublican\t0\t0\t0\t0\t0\tfacebook post\n"
    "3.json\tbarely-true\tTaxes doubled overnight they said\ttaxes\t"
    "alice\tsenator\tohio\tdemocrat\t1\t2\t3\t4\t5\tdebate\n";

TEST(LiarLabelTest, AllSixTokens) {
  EXPECT_EQ(LiarLabelFromToken("pants-fire").value(),
            CredibilityLabel::kPantsOnFire);
  EXPECT_EQ(LiarLabelFromToken("false").value(), CredibilityLabel::kFalse);
  EXPECT_EQ(LiarLabelFromToken("barely-true").value(),
            CredibilityLabel::kMostlyFalse);
  EXPECT_EQ(LiarLabelFromToken("half-true").value(),
            CredibilityLabel::kHalfTrue);
  EXPECT_EQ(LiarLabelFromToken("mostly-true").value(),
            CredibilityLabel::kMostlyTrue);
  EXPECT_EQ(LiarLabelFromToken("true").value(), CredibilityLabel::kTrue);
  EXPECT_FALSE(LiarLabelFromToken("sorta-true").ok());
}

TEST(LiarImportTest, ParsesEntitiesAndLinks) {
  const std::string path = WriteFixture("fkd_liar_good.tsv", kGoodRows);
  auto result = LoadLiarDataset(path);
  ASSERT_TRUE(result.ok()) << result.status();
  const Dataset& dataset = result.value();

  ASSERT_EQ(dataset.articles.size(), 3u);
  ASSERT_EQ(dataset.creators.size(), 2u);  // alice, bob interned once.
  ASSERT_EQ(dataset.subjects.size(), 3u);  // economy, taxes, guns.

  EXPECT_EQ(dataset.articles[0].label, CredibilityLabel::kTrue);
  EXPECT_EQ(dataset.articles[0].text, "Income tax revenue grew last year");
  EXPECT_EQ(dataset.articles[0].subjects.size(), 2u);
  EXPECT_EQ(dataset.articles[2].label, CredibilityLabel::kMostlyFalse);
  // Articles 0 and 2 share creator alice.
  EXPECT_EQ(dataset.articles[0].creator, dataset.articles[2].creator);
  EXPECT_EQ(dataset.creators[dataset.articles[0].creator].name, "alice");
  EXPECT_EQ(dataset.creators[dataset.articles[0].creator].profile,
            "senator ohio democrat");

  // Creator labels derived via the weighted-mean rule: alice wrote
  // True (6) + Mostly False (3) -> mean 4.5 -> rounds via 4 or 5?
  // std::round(4.5) = 5 -> Mostly True.
  EXPECT_EQ(dataset.creators[dataset.articles[0].creator].label,
            CredibilityLabel::kMostlyTrue);
  EXPECT_EQ(dataset.creators[dataset.articles[1].creator].label,
            CredibilityLabel::kFalse);

  // The dataset is graph-ready.
  EXPECT_TRUE(dataset.BuildGraph().ok());
  std::filesystem::remove(path);
}

TEST(LiarImportTest, DeduplicatesSubjectsWithinRow) {
  const std::string path = WriteFixture(
      "fkd_liar_dup.tsv",
      "1.json\ttrue\tsome words here\tTaxes, taxes ,ECONOMY\tcara\tjob\t"
      "state\tparty\t0\t0\t0\t0\t0\tctx\n");
  auto result = LoadLiarDataset(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().subjects.size(), 2u);
  EXPECT_EQ(result.value().articles[0].subjects.size(), 2u);
  std::filesystem::remove(path);
}

TEST(LiarImportTest, MalformedRowsAreCorruption) {
  const std::string path = WriteFixture(
      "fkd_liar_bad.tsv",
      "1.json\tkinda-true\ttext\tsubj\twho\tj\ts\tp\t0\t0\t0\t0\t0\tctx\n");
  EXPECT_EQ(LoadLiarDataset(path).status().code(), StatusCode::kCorruption);

  std::ofstream(path) << "1.json\ttrue\t\tsubj\twho\tj\ts\tp\n";  // No text.
  EXPECT_EQ(LoadLiarDataset(path).status().code(), StatusCode::kCorruption);

  std::ofstream(path) << "only\tthree\tcolumns\n";
  EXPECT_EQ(LoadLiarDataset(path).status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(LiarImportTest, SkipBadRowsDropsInsteadOfFailing) {
  const std::string path = WriteFixture(
      "fkd_liar_mixed.tsv",
      std::string("bad\tnot-a-label\ttext\tsubj\twho\tj\ts\tp\t0\t0\t0\t0\t0\tc\n") +
          kGoodRows);
  LiarImportOptions options;
  options.skip_bad_rows = true;
  auto result = LoadLiarDataset(path, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().articles.size(), 3u);
  std::filesystem::remove(path);
}

TEST(LiarImportTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadLiarDataset("/no/such/liar.tsv").status().code(),
            StatusCode::kIoError);
}

TEST(LiarImportTest, AllBadRowsIsCorruptionEvenWhenSkipping) {
  const std::string path = WriteFixture(
      "fkd_liar_allbad.tsv",
      "x\tnope\ttext\tsubj\twho\tj\ts\tp\t0\t0\t0\t0\t0\tc\n");
  LiarImportOptions options;
  options.skip_bad_rows = true;
  EXPECT_EQ(LoadLiarDataset(path, options).status().code(),
            StatusCode::kCorruption);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace data
}  // namespace fkd
