#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "nn/init.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tests/test_util.h"

namespace fkd {
namespace {

namespace ag = ::fkd::autograd;
using ::fkd::testing::ExpectGradientsMatch;
using ::fkd::testing::RandomTensor;
using ::fkd::testing::WeightedSum;

// ---- init --------------------------------------------------------------------

TEST(InitTest, XavierBounds) {
  Rng rng(1);
  const Tensor w = nn::XavierUniform(100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -bound);
    EXPECT_LE(w[i], bound);
  }
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(2);
  const Tensor w = nn::HeNormal(200, 100, &rng);
  double sum_sq = 0.0;
  for (size_t i = 0; i < w.size(); ++i) sum_sq += w[i] * w[i];
  EXPECT_NEAR(sum_sq / w.size(), 2.0 / 200.0, 2e-3);
}

// ---- Linear ------------------------------------------------------------------

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(3);
  nn::Linear linear(2, 2, &rng);
  // Overwrite weights deterministically.
  std::vector<nn::NamedParameter> params;
  linear.CollectParameters("lin", &params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "lin/weight");
  EXPECT_EQ(params[1].name, "lin/bias");
  params[0].variable.mutable_value() = Tensor::FromRows({{1, 2}, {3, 4}});
  params[1].variable.mutable_value() = Tensor::FromRows({{10, 20}});

  ag::Variable x(Tensor::FromRows({{1, 1}}), false);
  const Tensor y = linear.Forward(x).value();
  EXPECT_TRUE(y.AllClose(Tensor::FromRows({{14, 26}})));
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(4);
  nn::Linear linear(3, 2, &rng, /*with_bias=*/false);
  std::vector<nn::NamedParameter> params;
  linear.CollectParameters("", &params);
  EXPECT_EQ(params.size(), 1u);
  EXPECT_EQ(params[0].name, "weight");
}

TEST(LinearTest, GradCheckThroughLayer) {
  Rng rng(5);
  nn::Linear linear(3, 2, &rng);
  ExpectGradientsMatch(
      [&linear](const std::vector<ag::Variable>& leaves) {
        return WeightedSum(ag::Tanh(linear.Forward(leaves[0])));
      },
      {RandomTensor(4, 3, 6, 0.5f)});
}

// ---- Embedding ----------------------------------------------------------------

TEST(EmbeddingTest, LookupRowsMatchTable) {
  Rng rng(7);
  nn::Embedding embedding(5, 3, &rng);
  const Tensor& table = embedding.table().value();
  const Tensor out = embedding.Forward({4, 0, 4}).value();
  EXPECT_EQ(out.rows(), 3u);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(out.At(0, c), table.At(4, c));
    EXPECT_EQ(out.At(1, c), table.At(0, c));
    EXPECT_EQ(out.At(2, c), table.At(4, c));
  }
}

// ---- GruCell ------------------------------------------------------------------

TEST(GruCellTest, StepShapesAndRange) {
  Rng rng(8);
  nn::GruCell cell(4, 3, &rng);
  ag::Variable x(RandomTensor(5, 4, 9), false);
  ag::Variable h = cell.InitialState(5);
  const ag::Variable h1 = cell.Step(x, h);
  EXPECT_EQ(h1.value().rows(), 5u);
  EXPECT_EQ(h1.value().cols(), 3u);
  // GRU state is a convex-ish mix of tanh values: bounded by 1.
  EXPECT_LE(h1.value().MaxAbs(), 1.0f);
}

TEST(GruCellTest, ParameterCount) {
  Rng rng(10);
  nn::GruCell cell(4, 3, &rng);
  std::vector<nn::NamedParameter> params;
  cell.CollectParameters("gru", &params);
  // 3 input linears (weight+bias) + 3 hidden linears (weight only).
  EXPECT_EQ(params.size(), 9u);
}

TEST(GruCellTest, GradCheckTwoSteps) {
  Rng rng(11);
  nn::GruCell cell(2, 3, &rng);
  ExpectGradientsMatch(
      [&cell](const std::vector<ag::Variable>& leaves) {
        ag::Variable h = cell.InitialState(2);
        h = cell.Step(leaves[0], h);
        h = cell.Step(leaves[1], h);
        return WeightedSum(h);
      },
      {RandomTensor(2, 2, 12, 0.5f), RandomTensor(2, 2, 13, 0.5f)});
}

// ---- GruEncoder ----------------------------------------------------------------

TEST(GruEncoderTest, PaddingLeavesStateUnchanged) {
  Rng rng(14);
  nn::GruEncoder encoder(10, 4, 3, &rng, nn::SequencePooling::kLastState);
  // Sequence B is a prefix of sequence A; after A's extra step B's state
  // must equal its own final state (padding no-ops).
  const std::vector<std::vector<int32_t>> both = {{1, 2, 3}, {1, 2, -1}};
  const std::vector<std::vector<int32_t>> prefix = {{1, 2}};
  const Tensor with_pad = encoder.Forward(both, 3).value();
  const Tensor alone = encoder.Forward(prefix, 2).value();
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(with_pad.At(1, c), alone.At(0, c), 1e-6f);
  }
}

TEST(GruEncoderTest, SumPoolingSkipsPaddedSteps) {
  Rng rng(15);
  nn::GruEncoder encoder(10, 4, 3, &rng, nn::SequencePooling::kSumStates);
  const Tensor padded = encoder.Forward({{5, -1, -1}}, 3).value();
  const Tensor exact = encoder.Forward({{5}}, 1).value();
  EXPECT_TRUE(padded.AllClose(exact, 1e-6f));
}

TEST(GruEncoderTest, AllEmptySequencesYieldZeroState) {
  Rng rng(16);
  nn::GruEncoder encoder(10, 4, 3, &rng, nn::SequencePooling::kLastState);
  const Tensor out = encoder.Forward({{-1, -1}, {-1, -1}}, 2).value();
  EXPECT_EQ(out.MaxAbs(), 0.0f);
}

TEST(GruEncoderTest, NumericGradientOfEmbeddingTable) {
  // Gradcheck through the whole encoder w.r.t. its internal embedding
  // table: perturb the parameter in place and compare finite differences
  // against the analytic gradient from Backward().
  Rng rng(17);
  nn::GruEncoder encoder(6, 3, 2, &rng, nn::SequencePooling::kSumStates);
  std::vector<nn::NamedParameter> params;
  encoder.CollectParameters("", &params);
  ASSERT_EQ(params[0].name, "embedding/table");
  ag::Variable table = params[0].variable;
  const std::vector<std::vector<int32_t>> sequences = {{0, 1, 2}, {3, -1, -1}};

  auto loss_value = [&]() {
    return WeightedSum(encoder.Forward(sequences, 3)).scalar();
  };
  table.ZeroGrad();
  ag::Backward(WeightedSum(encoder.Forward(sequences, 3)));
  const Tensor analytic = table.grad();

  const float eps = 5e-3f;
  for (size_t i = 0; i < 8; ++i) {  // Spot-check the first rows.
    const float saved = table.value()[i];
    table.mutable_value()[i] = saved + eps;
    const float up = loss_value();
    table.mutable_value()[i] = saved - eps;
    const float down = loss_value();
    table.mutable_value()[i] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    const float scale = std::max({1.0f, std::fabs(numeric)});
    EXPECT_NEAR(analytic[i], numeric, 5e-2f * scale) << "entry " << i;
  }
}

TEST(GruEncoderTest, LossDecreasesWhenTrained) {
  // Sanity: a GRU classifier separates two token patterns.
  Rng rng(18);
  nn::GruEncoder encoder(4, 4, 4, &rng, nn::SequencePooling::kLastState);
  nn::Linear head(4, 2, &rng);
  std::vector<ag::Variable> params;
  {
    std::vector<nn::NamedParameter> named;
    encoder.CollectParameters("e", &named);
    head.CollectParameters("h", &named);
    for (auto& p : named) params.push_back(p.variable);
  }
  nn::Adam optimizer(params, 0.05f);
  const std::vector<std::vector<int32_t>> sequences = {
      {0, 1, 0}, {1, 0, 1}, {2, 3, 2}, {3, 2, 3}};
  const std::vector<int32_t> labels = {0, 0, 1, 1};
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int epoch = 0; epoch < 60; ++epoch) {
    optimizer.ZeroGrad();
    ag::Variable loss = ag::SoftmaxCrossEntropy(
        head.Forward(encoder.Forward(sequences, 3)), labels);
    ag::Backward(loss);
    optimizer.Step();
    if (epoch == 0) first_loss = loss.scalar();
    last_loss = loss.scalar();
  }
  EXPECT_LT(last_loss, first_loss * 0.5f);
}

// ---- optimizers -----------------------------------------------------------------

class OptimizerConvergence : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerConvergence, MinimisesQuadratic) {
  // loss = sum((x - 3)^2); optimum x = 3.
  ag::Variable x(Tensor::Full(2, 2, 10.0f), true);
  ag::Variable target(Tensor::Full(2, 2, 3.0f), false);
  std::unique_ptr<nn::Optimizer> optimizer;
  switch (GetParam()) {
    case 0:
      optimizer = std::make_unique<nn::Sgd>(
          std::vector<ag::Variable>{x}, 0.05f);
      break;
    case 1:
      optimizer = std::make_unique<nn::Sgd>(
          std::vector<ag::Variable>{x}, 0.02f, 0.9f);
      break;
    case 2:
      optimizer = std::make_unique<nn::Adam>(
          std::vector<ag::Variable>{x}, 0.3f);
      break;
    default:
      optimizer = std::make_unique<nn::AdaGrad>(
          std::vector<ag::Variable>{x}, 2.0f);
      break;
  }
  for (int step = 0; step < 200; ++step) {
    optimizer->ZeroGrad();
    ag::Backward(ag::SumSquares(ag::Sub(x, target)));
    optimizer->Step();
  }
  for (size_t i = 0; i < x.value().size(); ++i) {
    EXPECT_NEAR(x.value()[i], 3.0f, 0.05f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergence,
                         ::testing::Values(0, 1, 2, 3));

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  ag::Variable x(Tensor::Full(1, 4, 1.0f), true);
  nn::Sgd sgd({x}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  // Zero gradient: only decay acts.
  sgd.ZeroGrad();
  ag::Backward(ag::Scale(ag::SumSquares(ag::Scale(x, 0.0f)), 1.0f));
  sgd.Step();
  EXPECT_NEAR(x.value()[0], 1.0f - 0.1f * 0.5f, 1e-5f);
}

TEST(OptimizerTest, SkipsNeverUsedParameters) {
  ag::Variable used(Tensor::Full(1, 1, 1.0f), true);
  ag::Variable unused(Tensor::Full(1, 1, 5.0f), true);
  nn::Adam adam({used, unused}, 0.1f);
  adam.ZeroGrad();
  ag::Backward(ag::SumSquares(used));
  adam.Step();
  EXPECT_EQ(unused.value()[0], 5.0f);
  EXPECT_NE(used.value()[0], 1.0f);
}

TEST(ClipGradTest, ScalesDownLargeGradients) {
  ag::Variable x(Tensor::Full(1, 4, 10.0f), true);
  ag::Backward(ag::SumSquares(x));  // grad = 20 each; norm = 40.
  const float before = nn::ClipGradNorm({x}, 1.0f);
  EXPECT_NEAR(before, 40.0f, 1e-3f);
  double norm_sq = 0.0;
  for (size_t i = 0; i < 4; ++i) norm_sq += x.grad()[i] * x.grad()[i];
  EXPECT_NEAR(std::sqrt(norm_sq), 1.0f, 1e-4f);
}

TEST(ClipGradTest, LeavesSmallGradientsAlone) {
  ag::Variable x(Tensor::Full(1, 2, 0.01f), true);
  ag::Backward(ag::SumSquares(x));
  const Tensor grad_before = x.grad();
  nn::ClipGradNorm({x}, 10.0f);
  EXPECT_TRUE(x.grad().AllClose(grad_before));
}

// ---- serialization ----------------------------------------------------------------

class TwoLayer : public nn::Module {
 public:
  explicit TwoLayer(Rng* rng) : a_(3, 4, rng), b_(4, 2, rng) {}
  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParameter>* out) const override {
    a_.CollectParameters(nn::JoinName(prefix, "a"), out);
    b_.CollectParameters(nn::JoinName(prefix, "b"), out);
  }
  nn::Linear a_;
  nn::Linear b_;
};

TEST(SerializeTest, RoundTripRestoresValues) {
  const std::string path =
      std::filesystem::temp_directory_path() / "fkd_weights_test.bin";
  Rng rng1(20);
  TwoLayer original(&rng1);
  ASSERT_TRUE(nn::SaveParameters(original, path).ok());

  Rng rng2(999);
  TwoLayer restored(&rng2);
  ASSERT_FALSE(
      restored.Parameters()[0].value().AllClose(original.Parameters()[0].value()));
  ASSERT_TRUE(nn::LoadParameters(&restored, path).ok());
  const auto original_params = original.Parameters();
  const auto restored_params = restored.Parameters();
  ASSERT_EQ(original_params.size(), restored_params.size());
  for (size_t i = 0; i < original_params.size(); ++i) {
    EXPECT_TRUE(restored_params[i].value() == original_params[i].value());
  }
  std::filesystem::remove(path);
}

TEST(SerializeTest, MissingFileIsIoError) {
  Rng rng(21);
  TwoLayer module(&rng);
  EXPECT_EQ(nn::LoadParameters(&module, "/nonexistent/dir/w.bin").code(),
            StatusCode::kIoError);
}

TEST(SerializeTest, CorruptMagicDetected) {
  const std::string path =
      std::filesystem::temp_directory_path() / "fkd_corrupt_test.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const char junk[16] = "not a weights f";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  Rng rng(22);
  TwoLayer module(&rng);
  EXPECT_EQ(nn::LoadParameters(&module, path).code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(SerializeTest, ParameterCountMismatchRejected) {
  const std::string path =
      std::filesystem::temp_directory_path() / "fkd_mismatch_test.bin";
  Rng rng(23);
  TwoLayer big(&rng);
  ASSERT_TRUE(nn::SaveParameters(big, path).ok());

  class OneLayer : public nn::Module {
   public:
    explicit OneLayer(Rng* rng) : a_(3, 4, rng) {}
    void CollectParameters(const std::string& prefix,
                           std::vector<nn::NamedParameter>* out) const override {
      a_.CollectParameters(nn::JoinName(prefix, "a"), out);
    }
    nn::Linear a_;
  };
  OneLayer small(&rng);
  EXPECT_EQ(nn::LoadParameters(&small, path).code(),
            StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(SerializeTest, ShapeMismatchErrorNamesParameterAndShapes) {
  const std::string path =
      std::filesystem::temp_directory_path() / "fkd_shape_mismatch_test.bin";
  Rng rng(25);

  class WideLayer : public nn::Module {
   public:
    explicit WideLayer(Rng* rng) : a_(3, 7, rng), b_(7, 2, rng) {}
    void CollectParameters(const std::string& prefix,
                           std::vector<nn::NamedParameter>* out) const override {
      a_.CollectParameters(nn::JoinName(prefix, "a"), out);
      b_.CollectParameters(nn::JoinName(prefix, "b"), out);
    }
    nn::Linear a_;
    nn::Linear b_;
  };
  WideLayer wide(&rng);
  ASSERT_TRUE(nn::SaveParameters(wide, path).ok());

  // Same parameter names, different shapes (TwoLayer is 3->4->2).
  TwoLayer narrow(&rng);
  const Status status = nn::LoadParameters(&narrow, path);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The message must identify the offending parameter and both shapes so
  // architecture drift is debuggable from the error alone.
  EXPECT_NE(status.message().find("a/weight"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("[3 x 4]"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("[3 x 7]"), std::string::npos)
      << status.message();
  std::filesystem::remove(path);
}

TEST(SerializeTest, MissingParameterErrorNamesIt) {
  const std::string path =
      std::filesystem::temp_directory_path() / "fkd_missing_param_test.bin";
  Rng rng(26);
  TwoLayer big(&rng);
  ASSERT_TRUE(nn::SaveParameters(big, path).ok());

  class OneLayer : public nn::Module {
   public:
    explicit OneLayer(Rng* rng) : a_(3, 4, rng) {}
    void CollectParameters(const std::string& prefix,
                           std::vector<nn::NamedParameter>* out) const override {
      a_.CollectParameters(nn::JoinName(prefix, "a"), out);
    }
    nn::Linear a_;
  };
  OneLayer small(&rng);
  const Status status = nn::LoadParameters(&small, path);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("b/"), std::string::npos)
      << status.message();
  std::filesystem::remove(path);
}

TEST(ModuleTest, ParameterCountSumsSizes) {
  Rng rng(24);
  TwoLayer module(&rng);
  // a: 3*4 + 4; b: 4*2 + 2.
  EXPECT_EQ(module.ParameterCount(), 12u + 4u + 8u + 2u);
}

}  // namespace
}  // namespace fkd
