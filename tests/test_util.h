#ifndef FKD_TESTS_TEST_UTIL_H_
#define FKD_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/autograd.h"
#include "tensor/tensor.h"

namespace fkd {
namespace testing {

/// Builds a scalar graph from a set of leaf parameters. The callable
/// receives the leaves (requires_grad=true) and must return a [1x1]
/// Variable.
using GraphFn =
    std::function<autograd::Variable(const std::vector<autograd::Variable>&)>;

/// Verifies analytic gradients of `fn` against central differences on every
/// entry of every leaf. float32 forward math limits precision, so the check
/// uses a mixed absolute/relative tolerance.
inline void ExpectGradientsMatch(const GraphFn& fn,
                                 std::vector<Tensor> leaf_values,
                                 float epsilon = 5e-3f,
                                 float tolerance = 5e-2f) {
  // Analytic pass.
  std::vector<autograd::Variable> leaves;
  leaves.reserve(leaf_values.size());
  for (auto& value : leaf_values) {
    leaves.emplace_back(value, /*requires_grad=*/true, "leaf");
  }
  autograd::Variable loss = fn(leaves);
  ASSERT_EQ(loss.value().size(), 1u) << "graph must produce a scalar";
  autograd::Backward(loss);

  for (size_t leaf_index = 0; leaf_index < leaves.size(); ++leaf_index) {
    const Tensor& analytic = leaves[leaf_index].grad();
    ASSERT_EQ(analytic.size(), leaf_values[leaf_index].size())
        << "missing gradient for leaf " << leaf_index;
    for (size_t i = 0; i < leaf_values[leaf_index].size(); ++i) {
      // Numeric pass: rebuild fresh graphs at value +/- epsilon.
      auto eval_at = [&](float delta) {
        std::vector<autograd::Variable> probe_leaves;
        for (size_t l = 0; l < leaf_values.size(); ++l) {
          Tensor value = leaf_values[l];
          if (l == leaf_index) value[i] += delta;
          probe_leaves.emplace_back(value, /*requires_grad=*/true, "probe");
        }
        return fn(probe_leaves).value()[0];
      };
      const float numeric =
          (eval_at(epsilon) - eval_at(-epsilon)) / (2.0f * epsilon);
      const float got = analytic[i];
      const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(got)});
      EXPECT_NEAR(got, numeric, tolerance * scale)
          << "leaf " << leaf_index << " entry " << i;
    }
  }
}

/// Deterministic random tensor helper for tests.
inline Tensor RandomTensor(size_t rows, size_t cols, uint64_t seed,
                           float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(rows, cols, &rng, 0.0f, scale);
}

/// Reduces an arbitrary Variable to a scalar with fixed pseudo-random
/// weights, so gradcheck exercises non-uniform upstream gradients.
inline autograd::Variable WeightedSum(const autograd::Variable& v,
                                      uint64_t seed = 99) {
  Rng rng(seed);
  Tensor weights(v.value().shape());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<float>(rng.Uniform(0.5, 1.5));
  }
  autograd::Variable w(weights, /*requires_grad=*/false, "sum_weights");
  // sum(v (*) w) via SumSquares trick is wrong; use Mul then full sum:
  // we reuse SumSquares(sqrt) alternatives; simplest: Mul + AddN over rows
  // is costly, so use: s = SumSquares(v + w) - SumSquares(v) - SumSquares(w)
  // = 2 * sum(v*w); scaled by 0.5 gives sum(v*w).
  autograd::Variable sum_vw = autograd::Scale(
      autograd::Sub(autograd::SumSquares(autograd::Add(v, w)),
                    autograd::Add(autograd::SumSquares(v),
                                  autograd::SumSquares(w))),
      0.5f);
  return sum_vw;
}

}  // namespace testing
}  // namespace fkd

#endif  // FKD_TESTS_TEST_UTIL_H_
