#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/fake_detector.h"
#include "core/hflu.h"
#include "data/generator.h"
#include "data/split.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "text/features.h"

namespace fkd {
namespace serve {
namespace {

namespace ag = ::fkd::autograd;

// ---- shared trained fixture -------------------------------------------------------
//
// Training even a tiny detector dominates test runtime, so one detector is
// trained once and shared (const) by every test in the file.

struct TrainedFixture {
  data::Dataset dataset;
  graph::HeterogeneousGraph graph;
  core::FakeDetector detector;
  std::shared_ptr<const Snapshot> snapshot;
  std::string snapshot_dir;
};

core::FakeDetectorConfig TinyConfig() {
  core::FakeDetectorConfig config;
  config.epochs = 6;
  config.explicit_words = 40;
  config.latent_vocabulary = 120;
  config.hflu.max_sequence_length = 10;
  config.hflu.gru_hidden = 10;
  config.hflu.latent_dim = 8;
  config.hflu.embed_dim = 8;
  config.gdu_hidden = 12;
  config.verbose = false;
  return config;
}

const TrainedFixture& SharedFixture() {
  static TrainedFixture* fixture = [] {
    auto dataset = data::GeneratePolitiFact(data::GeneratorOptions::Scaled(60, 55));
    FKD_CHECK_OK(dataset.status());
    auto graph = dataset.value().BuildGraph();
    FKD_CHECK_OK(graph.status());
    auto* f = new TrainedFixture{std::move(dataset).value(),
                                 std::move(graph).value(),
                                 core::FakeDetector(TinyConfig()),
                                 nullptr,
                                 {}};

    Rng rng(77);
    auto splits = data::KFoldTriSplits(f->dataset.articles.size(),
                                       f->dataset.creators.size(),
                                       f->dataset.subjects.size(), 5, &rng);
    FKD_CHECK_OK(splits.status());
    eval::TrainContext context;
    context.dataset = &f->dataset;
    context.graph = &f->graph;
    context.train_articles = splits.value()[0].articles.train;
    context.train_creators = splits.value()[0].creators.train;
    context.train_subjects = splits.value()[0].subjects.train;
    context.granularity = eval::LabelGranularity::kBinary;
    context.seed = 7;
    FKD_CHECK_OK(f->detector.Train(context));

    // Per-process directory: ctest runs each test in its own process, in
    // parallel, and they must not race on one shared snapshot path.
    f->snapshot_dir = (std::filesystem::temp_directory_path() /
                       ("fkd_serve_snapshot_" + std::to_string(::getpid())))
                          .string();
    std::filesystem::remove_all(f->snapshot_dir);
    FKD_CHECK_OK(ExportSnapshot(f->detector, f->snapshot_dir));
    auto loaded = LoadSnapshot(f->snapshot_dir);
    FKD_CHECK_OK(loaded.status());
    f->snapshot = std::make_shared<const Snapshot>(std::move(loaded).value());
    return f;
  }();
  return *fixture;
}

std::vector<std::string> SampleTexts(size_t n) {
  const auto& fixture = SharedFixture();
  std::vector<std::string> texts;
  for (size_t i = 0; i < n; ++i) {
    texts.push_back(fixture.dataset.articles[i % fixture.dataset.articles.size()].text);
  }
  return texts;
}

// ---- snapshot ---------------------------------------------------------------------

TEST(ServeSnapshotTest, ExportUntrainedDetectorFails) {
  core::FakeDetector untrained(TinyConfig());
  const Status status = ExportSnapshot(
      untrained,
      (std::filesystem::temp_directory_path() / "fkd_serve_untrained").string());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ServeSnapshotTest, LoadMissingDirectoryFails) {
  auto result = LoadSnapshot("/nonexistent/fkd/snapshot");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(ServeSnapshotTest, ConfigSurvivesRoundTrip) {
  const auto& fixture = SharedFixture();
  const Snapshot& snapshot = *fixture.snapshot;
  const core::FakeDetectorConfig& expect = fixture.detector.config();
  EXPECT_EQ(snapshot.num_classes, 2u);
  EXPECT_EQ(snapshot.granularity, eval::LabelGranularity::kBinary);
  EXPECT_EQ(snapshot.class_names.size(), 2u);
  EXPECT_EQ(snapshot.config.gdu_hidden, expect.gdu_hidden);
  EXPECT_EQ(snapshot.config.diffusion_steps, expect.diffusion_steps);
  EXPECT_EQ(snapshot.config.hflu.gru_hidden, expect.hflu.gru_hidden);
  EXPECT_EQ(snapshot.config.hflu.max_sequence_length,
            expect.hflu.max_sequence_length);
  EXPECT_EQ(snapshot.creator_states.rows(),
            fixture.detector.frozen_creator_states().rows());
  EXPECT_EQ(snapshot.subject_states.rows(),
            fixture.detector.frozen_subject_states().rows());
}

TEST(ServeSnapshotTest, ReloadedLogitsBitwiseIdenticalToTrainedModel) {
  const auto& fixture = SharedFixture();
  // Held-out batch: raw texts scored through the reloaded snapshot must
  // match the still-in-memory trained model bit for bit.
  const std::vector<std::string> texts = SampleTexts(8);
  std::vector<int32_t> creator_ids(texts.size(), -1);
  std::vector<std::vector<int32_t>> subject_ids(texts.size());
  creator_ids[0] = 0;
  subject_ids[1] = {0};

  const auto documents = text::TokenizeDocuments(texts);
  const core::HfluInput input =
      fixture.detector.model()->article_hflu().PrepareBatch(documents);
  std::vector<std::vector<int32_t>> creator_groups(texts.size());
  creator_groups[0] = {0};
  const Tensor expected = fixture.detector.model()->ScoreArticles(
      input, subject_ids, creator_groups,
      fixture.detector.frozen_creator_states(),
      fixture.detector.frozen_subject_states());

  const Tensor actual =
      fixture.snapshot->Score(texts, creator_ids, subject_ids);
  ASSERT_EQ(actual.rows(), expected.rows());
  ASSERT_EQ(actual.cols(), expected.cols());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "logit " << i << " drifted";
  }
}

TEST(ServeSnapshotTest, ValidateIdsChecksBounds) {
  const auto& fixture = SharedFixture();
  const Snapshot& snapshot = *fixture.snapshot;
  EXPECT_TRUE(snapshot.ValidateIds(-1, {}).ok());
  EXPECT_TRUE(snapshot.ValidateIds(0, {0}).ok());
  EXPECT_EQ(snapshot
                .ValidateIds(static_cast<int32_t>(snapshot.creator_states.rows()),
                             {})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(snapshot
                .ValidateIds(-1, {static_cast<int32_t>(
                                     snapshot.subject_states.rows())})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(snapshot.ValidateIds(-1, {-3}).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeSnapshotTest, ScoringAllocatesNoGradState) {
  const auto& fixture = SharedFixture();
  const std::vector<std::string> texts = SampleTexts(4);
  const uint64_t tape_before = ag::TapeNodesCreated();
  const Tensor logits = fixture.snapshot->Score(
      texts, std::vector<int32_t>(texts.size(), -1),
      std::vector<std::vector<int32_t>>(texts.size()));
  EXPECT_EQ(ag::TapeNodesCreated(), tape_before)
      << "served forward must not retain autograd tape nodes";
  EXPECT_EQ(logits.rows(), texts.size());
  EXPECT_EQ(logits.cols(), fixture.snapshot->num_classes);
}

// ---- engine -----------------------------------------------------------------------

TEST(ServeEngineTest, ServesSubmittedRequests) {
  const auto& fixture = SharedFixture();
  EngineOptions options;
  options.num_workers = 2;
  options.max_batch_size = 4;
  options.max_batch_delay_us = 500;
  InferenceEngine engine(fixture.snapshot, options);
  ASSERT_TRUE(engine.Start().ok());

  const std::vector<std::string> texts = SampleTexts(10);
  std::vector<ClassificationFuture> futures;
  for (const auto& text : texts) {
    ArticleRequest request;
    request.text = text;
    auto submitted = engine.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) {
    Result<Classification> result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const Classification& c = result.value();
    EXPECT_GE(c.class_id, 0);
    EXPECT_LT(c.class_id, static_cast<int32_t>(fixture.snapshot->num_classes));
    EXPECT_EQ(c.probabilities.size(), fixture.snapshot->num_classes);
    float sum = 0.0f;
    for (float p : c.probabilities) sum += p;
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
    EXPECT_FALSE(c.class_name.empty());
    EXPECT_GE(c.batch_size, 1u);
    // Every engine-served response carries the request context and a
    // per-stage latency breakdown that never exceeds the total.
    EXPECT_NE(c.request_id, 0u);
    EXPECT_GE(c.queue_us, 0.0);
    EXPECT_GE(c.batch_us, 0.0);
    EXPECT_GT(c.compute_us, 0.0);
    EXPECT_LE(c.queue_us + c.batch_us + c.compute_us, c.total_us * 1.01 + 1.0);
    EXPECT_DOUBLE_EQ(c.cache_us, 0.0);  // no router, no cache stage
  }
  engine.Stop();
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.submitted, texts.size());
  EXPECT_EQ(stats.completed, texts.size());
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, stats.completed);
}

TEST(ServeEngineTest, EngineMatchesDirectScore) {
  const auto& fixture = SharedFixture();
  const std::vector<std::string> texts = SampleTexts(3);
  InferenceEngine engine(fixture.snapshot);
  ASSERT_TRUE(engine.Start().ok());
  ArticleRequest request;
  request.text = texts[0];
  auto future = engine.Submit(request);
  ASSERT_TRUE(future.ok());
  auto result = future.value().get();
  ASSERT_TRUE(result.ok());

  const Tensor logits = fixture.snapshot->Score({texts[0]}, {-1}, {{}});
  const Tensor probabilities = SoftmaxRows(logits);
  ASSERT_EQ(result.value().probabilities.size(), probabilities.cols());
  for (size_t c = 0; c < probabilities.cols(); ++c) {
    EXPECT_EQ(result.value().probabilities[c], probabilities.At(0, c));
  }
}

TEST(ServeEngineTest, InvalidGraphIdsRejectedAtSubmit) {
  const auto& fixture = SharedFixture();
  InferenceEngine engine(fixture.snapshot);
  ArticleRequest request;
  request.text = "whatever";
  request.creator_id =
      static_cast<int32_t>(fixture.snapshot->creator_states.rows()) + 5;
  auto result = engine.Submit(std::move(request));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeEngineTest, BoundedQueueRejectsWithBackpressure) {
  const auto& fixture = SharedFixture();
  EngineOptions options;
  options.max_queue_depth = 3;
  // Never started: the queue fills deterministically.
  InferenceEngine engine(fixture.snapshot, options);
  std::vector<ClassificationFuture> futures;
  for (size_t i = 0; i < options.max_queue_depth; ++i) {
    auto submitted = engine.Submit(ArticleRequest{"text", -1, {}, 0});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  auto overflow = engine.Submit(ArticleRequest{"text", -1, {}, 0});
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable);

  // Stop without starting: queued futures fail instead of blocking.
  engine.Stop();
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  }
  const EngineStats stats = engine.Stats();
  // Disjoint outcomes: the overflow submission was refused (rejected), the
  // three accepted-but-never-served requests are unavailable — so every
  // submission is accounted exactly once.
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.unavailable, options.max_queue_depth);
  EXPECT_EQ(stats.submitted, options.max_queue_depth);
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.expired + stats.failed + stats.unavailable);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServeEngineTest, SubmitAfterStopIsUnavailable) {
  const auto& fixture = SharedFixture();
  InferenceEngine engine(fixture.snapshot);
  ASSERT_TRUE(engine.Start().ok());
  engine.Stop();
  auto result = engine.Submit(ArticleRequest{"text", -1, {}, 0});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(engine.Start().ok());  // one Start/Stop cycle per engine
}

TEST(ServeEngineTest, LapsedDeadlineFailsFutureInsteadOfServing) {
  const auto& fixture = SharedFixture();
  // Enqueue into a stopped-clock engine (not started yet) with a 1ms
  // deadline, let it lapse, then start: the worker must expire it.
  InferenceEngine engine(fixture.snapshot);
  ArticleRequest request;
  request.text = "deadline victim";
  request.deadline_us = 1000;
  auto submitted = engine.Submit(std::move(request));
  ASSERT_TRUE(submitted.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(engine.Start().ok());
  auto result = submitted.value().get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  engine.Stop();
  EXPECT_EQ(engine.Stats().expired, 1u);
  EXPECT_EQ(engine.Stats().completed, 0u);
}

TEST(ServeEngineTest, StopDrainsQueuedRequests) {
  const auto& fixture = SharedFixture();
  EngineOptions options;
  options.num_workers = 1;
  options.max_batch_size = 2;
  options.max_batch_delay_us = 50000;  // long delay: drain must waive it
  InferenceEngine engine(fixture.snapshot, options);
  const std::vector<std::string> texts = SampleTexts(6);
  std::vector<ClassificationFuture> futures;
  for (const auto& text : texts) {
    auto submitted = engine.Submit(ArticleRequest{text, -1, {}, 0});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  ASSERT_TRUE(engine.Start().ok());
  engine.Stop();  // must not return until every future is fulfilled
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_EQ(engine.Stats().completed, texts.size());
}

TEST(ServeEngineTest, ServingRecordsMetrics) {
  const auto& fixture = SharedFixture();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::Counter* ok =
      registry.GetCounter("fkd.serve.requests", {{"result", "ok"}});
  obs::Histogram* batch_size = registry.GetHistogram("fkd.serve.batch_size");
  obs::Histogram* latency = registry.GetHistogram("fkd.serve.latency_us");
  const double ok_before = ok->Value();
  const uint64_t latency_before = latency->Count();

  InferenceEngine engine(fixture.snapshot);
  ASSERT_TRUE(engine.Start().ok());
  auto future = engine.Submit(ArticleRequest{SampleTexts(1)[0], -1, {}, 0});
  ASSERT_TRUE(future.ok());
  ASSERT_TRUE(future.value().get().ok());
  engine.Stop();

  EXPECT_EQ(ok->Value(), ok_before + 1);
  EXPECT_EQ(latency->Count(), latency_before + 1);
  EXPECT_GE(batch_size->Count(), 1u);
  EXPECT_GE(latency->Percentile(0.99), latency->Percentile(0.5));
}

TEST(ServeEngineTest, ConcurrentSubmittersAndWorkers) {
  const auto& fixture = SharedFixture();
  EngineOptions options;
  options.num_workers = 4;
  options.max_batch_size = 8;
  options.max_batch_delay_us = 200;
  options.max_queue_depth = 1024;
  InferenceEngine engine(fixture.snapshot, options);
  ASSERT_TRUE(engine.Start().ok());

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 25;
  const std::vector<std::string> texts = SampleTexts(kThreads * kPerThread);
  std::vector<std::thread> submitters;
  std::vector<std::vector<ClassificationFuture>> futures(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        auto submitted =
            engine.Submit(ArticleRequest{texts[t * kPerThread + i], -1, {}, 0});
        if (submitted.ok()) futures[t].push_back(std::move(submitted).value());
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  size_t completed = 0;
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      if (future.get().ok()) ++completed;
    }
  }
  engine.Stop();
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(completed, kThreads * kPerThread);
  EXPECT_EQ(stats.completed + stats.rejected + stats.expired,
            kThreads * kPerThread);
}

// ---- fault tolerance --------------------------------------------------------------

/// Arms the global fault injector for one test and disarms it on exit, so a
/// failing assertion cannot leak faults into whatever runs next.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    FKD_CHECK_OK(FaultInjector::Global().Configure(spec));
  }
  ~ScopedFaults() { FaultInjector::Global().Clear(); }
};

EngineOptions DeterministicOptions() {
  EngineOptions options;
  options.num_workers = 1;
  options.max_batch_delay_us = 0;  // no straggler wait: one submit, one batch
  options.retry_backoff_us = 1;
  return options;
}

TEST(ServeEngineTest, RetriesTransientBatchFailuresUntilSuccess) {
  const auto& fixture = SharedFixture();
  obs::Counter* retries_metric =
      obs::MetricsRegistry::Default().GetCounter("fkd.serve.retries");
  const double retries_before = retries_metric->Value();

  EngineOptions options = DeterministicOptions();
  options.max_batch_retries = 2;
  InferenceEngine engine(fixture.snapshot, options);
  // First two forward attempts fail transiently; the third succeeds.
  ScopedFaults faults("serve.batch:fail*2");
  ASSERT_TRUE(engine.Start().ok());
  auto future = engine.Submit(ArticleRequest{SampleTexts(1)[0], -1, {}, 0});
  ASSERT_TRUE(future.ok());
  auto result = future.value().get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  engine.Stop();

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.batches, 3u);  // 1 batch, 3 attempts
  EXPECT_EQ(retries_metric->Value(), retries_before + 2);
}

TEST(ServeEngineTest, ExhaustedRetriesFailEveryFutureInTheBatch) {
  const auto& fixture = SharedFixture();
  EngineOptions options = DeterministicOptions();
  options.max_batch_retries = 1;
  options.max_batch_size = 4;
  InferenceEngine engine(fixture.snapshot, options);
  // Queue two requests before starting so they ride in one batch, and fail
  // every attempt: retries must give up after max_batch_retries.
  std::vector<ClassificationFuture> futures;
  for (const auto& text : SampleTexts(2)) {
    auto submitted = engine.Submit(ArticleRequest{text, -1, {}, 0});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  ScopedFaults faults("serve.batch:fail");
  ASSERT_TRUE(engine.Start().ok());
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
  engine.Stop();
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.batches, 2u);
}

TEST(ServeEngineTest, FatalBatchFailureIsNotRetried) {
  const auto& fixture = SharedFixture();
  EngineOptions options = DeterministicOptions();
  options.max_batch_retries = 5;
  InferenceEngine engine(fixture.snapshot, options);
  ScopedFaults faults("serve.batch:fatal*1");
  ASSERT_TRUE(engine.Start().ok());
  auto doomed = engine.Submit(ArticleRequest{SampleTexts(1)[0], -1, {}, 0});
  ASSERT_TRUE(doomed.ok());
  auto result = doomed.value().get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(engine.Stats().retries, 0u) << "Internal is not retryable";

  // The engine keeps serving once the fault passes.
  auto healthy = engine.Submit(ArticleRequest{SampleTexts(1)[0], -1, {}, 0});
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy.value().get().ok());
  engine.Stop();
  EXPECT_EQ(engine.Stats().failed, 1u);
  EXPECT_EQ(engine.Stats().completed, 1u);
}

TEST(ServeEngineTest, CircuitBreakerShedsThenRecovers) {
  const auto& fixture = SharedFixture();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::Counter* breaker_metric = registry.GetCounter("fkd.serve.breaker_open");
  obs::Gauge* health_gauge = registry.GetGauge("fkd.serve.health");
  const double trips_before = breaker_metric->Value();

  EngineOptions options = DeterministicOptions();
  options.max_batch_retries = 0;
  options.breaker_window = 2;
  options.breaker_failure_threshold = 0.5f;
  options.breaker_open_us = 100000;  // 100 ms: ample margin for the shed check
  InferenceEngine engine(fixture.snapshot, options);
  ScopedFaults faults("serve.batch:fail*2");
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.Health(), EngineHealth::kHealthy);

  // Two sequential failed batches fill the window and trip the breaker.
  // Outcomes are recorded before futures are fulfilled, so once get()
  // returns the breaker state is settled.
  for (int i = 0; i < 2; ++i) {
    auto future = engine.Submit(ArticleRequest{SampleTexts(1)[0], -1, {}, 0});
    ASSERT_TRUE(future.ok()) << "submit " << i;
    EXPECT_FALSE(future.value().get().ok());
  }
  EXPECT_EQ(engine.Health(), EngineHealth::kDegraded);
  EXPECT_EQ(health_gauge->Value(),
            static_cast<double>(EngineHealth::kDegraded));
  EXPECT_EQ(breaker_metric->Value(), trips_before + 1);

  // Open breaker sheds immediately with Unavailable.
  auto shed = engine.Submit(ArticleRequest{SampleTexts(1)[0], -1, {}, 0});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.Stats().shed, 1u);

  // After the cool-down, one half-open probe succeeds (the fault budget is
  // spent) and closes the breaker again.
  std::this_thread::sleep_for(std::chrono::microseconds(
      2 * options.breaker_open_us));
  auto probe = engine.Submit(ArticleRequest{SampleTexts(1)[0], -1, {}, 0});
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_TRUE(probe.value().get().ok());
  EXPECT_EQ(engine.Health(), EngineHealth::kHealthy);
  EXPECT_EQ(health_gauge->Value(),
            static_cast<double>(EngineHealth::kHealthy));

  engine.Stop();
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ServeEngineTest, DeadlineExceededCounterAndMetricAdvance) {
  const auto& fixture = SharedFixture();
  obs::Counter* metric =
      obs::MetricsRegistry::Default().GetCounter("fkd.serve.deadline_exceeded");
  const double before = metric->Value();

  InferenceEngine engine(fixture.snapshot);
  ArticleRequest request;
  request.text = "deadline victim";
  request.deadline_us = 1000;
  auto submitted = engine.Submit(std::move(request));
  ASSERT_TRUE(submitted.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(engine.Start().ok());
  auto result = submitted.value().get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  engine.Stop();
  EXPECT_EQ(engine.Stats().deadline_exceeded, 1u);
  EXPECT_EQ(engine.Stats().expired, 1u);
  EXPECT_EQ(metric->Value(), before + 1);
}

TEST(ServeEngineTest, HealthReportsDrainingOnceStopped) {
  const auto& fixture = SharedFixture();
  obs::Gauge* health_gauge =
      obs::MetricsRegistry::Default().GetGauge("fkd.serve.health");
  InferenceEngine engine(fixture.snapshot);
  EXPECT_EQ(engine.Health(), EngineHealth::kHealthy);
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.Health(), EngineHealth::kHealthy);
  engine.Stop();
  EXPECT_EQ(engine.Health(), EngineHealth::kDraining);
  EXPECT_EQ(health_gauge->Value(),
            static_cast<double>(EngineHealth::kDraining));
}

}  // namespace
}  // namespace serve
}  // namespace fkd
