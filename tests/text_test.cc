#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "text/features.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace fkd {
namespace text {
namespace {

// ---- Tokenizer ----------------------------------------------------------------

TEST(TokenizerTest, SplitsOnNonWordCharacters) {
  const auto tokens = Tokenize("Hello, world! 42 foo-bar");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "42");
  EXPECT_EQ(tokens[3], "foo");
  EXPECT_EQ(tokens[4], "bar");
}

TEST(TokenizerTest, KeepsInnerApostrophes) {
  const auto tokens = Tokenize("don't 'quoted'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "don't");
  EXPECT_EQ(tokens[1], "quoted");
}

TEST(TokenizerTest, MinLengthFilters) {
  TokenizerOptions options;
  options.min_token_length = 3;
  const auto tokens = Tokenize("a an the cat", options);
  ASSERT_EQ(tokens.size(), 2u);  // "the", "cat"
}

TEST(TokenizerTest, LowercaseCanBeDisabled) {
  TokenizerOptions options;
  options.lowercase = false;
  const auto tokens = Tokenize("Hello World", options);
  EXPECT_EQ(tokens[0], "Hello");
}

TEST(TokenizerTest, StopwordRemoval) {
  TokenizerOptions options;
  options.remove_stopwords = true;
  const auto tokens = Tokenize("the quick brown fox is over there", options);
  for (const auto& token : tokens) {
    EXPECT_FALSE(IsStopWord(token)) << token;
  }
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "quick"), tokens.end());
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ,,, !!").empty());
}

TEST(StopWordsTest, KnownMembers) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("doesn't"));
  EXPECT_FALSE(IsStopWord("president"));
}

// ---- Vocabulary ----------------------------------------------------------------

TEST(VocabularyTest, AddAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Add("a"), 0);
  EXPECT_EQ(vocab.Add("b"), 1);
  EXPECT_EQ(vocab.Add("a"), 0);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.FrequencyOf("a"), 2);
  EXPECT_EQ(vocab.FrequencyOf("missing"), 0);
}

TEST(VocabularyTest, IdOfUnknown) {
  Vocabulary vocab;
  vocab.Add("x");
  EXPECT_EQ(vocab.IdOf("y"), Vocabulary::kUnknownId);
  EXPECT_EQ(vocab.TokenOf(0), "x");
}

TEST(VocabularyTest, PrunedKeepsFrequentInOrder) {
  Vocabulary vocab;
  vocab.AddAll({"a", "b", "b", "c", "c", "c"});
  Vocabulary pruned = vocab.Pruned(2);
  EXPECT_EQ(pruned.size(), 2u);
  EXPECT_EQ(pruned.IdOf("b"), 0);
  EXPECT_EQ(pruned.IdOf("c"), 1);
  EXPECT_EQ(pruned.FrequencyOf("c"), 3);
}

TEST(VocabularyTest, TopKOrdersByFrequency) {
  Vocabulary vocab;
  vocab.AddAll({"x", "y", "y", "z", "z", "z"});
  Vocabulary top = vocab.TopK(2);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_EQ(top.IdOf("z"), 0);
  EXPECT_EQ(top.IdOf("y"), 1);
  EXPECT_EQ(top.IdOf("x"), Vocabulary::kUnknownId);
}

TEST(VocabularyTest, EncodeDropsOov) {
  Vocabulary vocab;
  vocab.AddAll({"a", "b"});
  const auto ids = vocab.Encode({"a", "zzz", "b"});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[1], 1);
}

TEST(VocabularyTest, EncodePaddedTruncatesAndPads) {
  Vocabulary vocab;
  vocab.AddAll({"a", "b", "c"});
  auto padded = vocab.EncodePadded({"a"}, 3);
  ASSERT_EQ(padded.size(), 3u);
  EXPECT_EQ(padded[0], 0);
  EXPECT_EQ(padded[1], -1);
  EXPECT_EQ(padded[2], -1);
  auto truncated = vocab.EncodePadded({"a", "b", "c", "a"}, 2);
  ASSERT_EQ(truncated.size(), 2u);
  EXPECT_EQ(truncated[1], 1);
}

TEST(VocabularyTest, SaveLoadRoundTrip) {
  const std::string path =
      std::filesystem::temp_directory_path() / "fkd_vocab_test.tsv";
  Vocabulary vocab;
  vocab.AddAll({"alpha", "beta", "beta"});
  ASSERT_TRUE(vocab.Save(path).ok());
  auto loaded = Vocabulary::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().IdOf("beta"), 1);
  EXPECT_EQ(loaded.value().FrequencyOf("beta"), 2);
  std::filesystem::remove(path);
}

TEST(VocabularyTest, LoadRejectsMalformedLines) {
  const std::string path =
      std::filesystem::temp_directory_path() / "fkd_vocab_bad.tsv";
  std::ofstream(path) << "word_without_frequency\n";
  EXPECT_EQ(Vocabulary::Load(path).status().code(), StatusCode::kCorruption);
  std::ofstream(path) << "word\tnot_a_number\n";
  EXPECT_EQ(Vocabulary::Load(path).status().code(), StatusCode::kCorruption);
  std::ofstream(path) << "dup\t1\ndup\t2\n";
  EXPECT_EQ(Vocabulary::Load(path).status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(VocabularyTest, LoadMissingFileIsIoError) {
  EXPECT_EQ(Vocabulary::Load("/no/such/file.tsv").status().code(),
            StatusCode::kIoError);
}

// ---- BowFeaturizer ----------------------------------------------------------------

TEST(BowFeaturizerTest, CountsOccurrences) {
  Vocabulary words;
  words.AddAll({"tax", "gun"});
  BowFeaturizer featurizer(words);
  const auto features = featurizer.Featurize({"tax", "tax", "gun", "other"});
  ASSERT_EQ(features.size(), 2u);
  EXPECT_EQ(features[0], 2.0f);
  EXPECT_EQ(features[1], 1.0f);
}

TEST(BowFeaturizerTest, BatchShape) {
  Vocabulary words;
  words.AddAll({"a", "b", "c"});
  BowFeaturizer featurizer(words);
  const Tensor batch = featurizer.FeaturizeBatch({{"a"}, {"b", "b"}, {}});
  EXPECT_EQ(batch.rows(), 3u);
  EXPECT_EQ(batch.cols(), 3u);
  EXPECT_EQ(batch.At(1, 1), 2.0f);
  EXPECT_EQ(batch.At(2, 0), 0.0f);
}

// ---- ClassWordStats ----------------------------------------------------------------

TEST(ClassWordStatsTest, DocumentFrequencySemantics) {
  ClassWordStats stats(2);
  stats.AddDocument({"tax", "tax", "economy"}, 1);  // "tax" counted once.
  stats.AddDocument({"gun", "tax"}, 0);
  EXPECT_EQ(stats.num_documents(), 2u);
  EXPECT_EQ(stats.DocumentCount("tax", 1), 1);
  EXPECT_EQ(stats.DocumentCount("tax", 0), 1);
  EXPECT_EQ(stats.DocumentCount("gun", 1), 0);
  EXPECT_EQ(stats.ClassDocumentCount(0), 1);
}

TEST(ClassWordStatsTest, ChiSquareDiscriminativeWordScoresHigher) {
  ClassWordStats stats(2);
  for (int i = 0; i < 20; ++i) {
    stats.AddDocument({"tax", "common"}, 1);
    stats.AddDocument({"gun", "common"}, 0);
  }
  EXPECT_GT(stats.ChiSquare("tax"), stats.ChiSquare("common") + 1.0);
  EXPECT_GT(stats.ChiSquare("gun"), stats.ChiSquare("common") + 1.0);
  EXPECT_EQ(stats.ChiSquare("never_seen"), 0.0);
}

TEST(ClassWordStatsTest, ChiSquareMatchesHandComputation) {
  // 2x2 table: word present in 8/10 class-1 docs, 2/10 class-0 docs.
  ClassWordStats stats(2);
  for (int i = 0; i < 8; ++i) stats.AddDocument({"w"}, 1);
  for (int i = 0; i < 2; ++i) stats.AddDocument({"other"}, 1);
  for (int i = 0; i < 2; ++i) stats.AddDocument({"w"}, 0);
  for (int i = 0; i < 8; ++i) stats.AddDocument({"blank"}, 0);
  // chi2 for one class: n(ad-bc)^2 / ((a+c)(b+d)(a+b)(c+d))
  // a=8, b=2, c=2, d=8, n=20 -> 20*(64-4)^2/(10*10*10*10) = 7.2;
  // summed over both one-vs-rest classes (symmetric) -> 14.4.
  EXPECT_NEAR(stats.ChiSquare("w"), 14.4, 1e-9);
}

TEST(ClassWordStatsTest, SelectTopChiSquarePicksSignalWords) {
  ClassWordStats stats(2);
  for (int i = 0; i < 30; ++i) {
    stats.AddDocument({"signal1", "noise"}, 1);
    stats.AddDocument({"signal0", "noise"}, 0);
  }
  const Vocabulary selected = stats.SelectTopChiSquare(2);
  EXPECT_EQ(selected.size(), 2u);
  EXPECT_NE(selected.IdOf("signal1"), Vocabulary::kUnknownId);
  EXPECT_NE(selected.IdOf("signal0"), Vocabulary::kUnknownId);
  EXPECT_EQ(selected.IdOf("noise"), Vocabulary::kUnknownId);
}

TEST(ClassWordStatsTest, MinDocumentFrequencyFilters) {
  ClassWordStats stats(2);
  stats.AddDocument({"rare"}, 1);
  for (int i = 0; i < 10; ++i) stats.AddDocument({"frequent"}, i % 2);
  const Vocabulary selected = stats.SelectTopChiSquare(5, 2);
  EXPECT_EQ(selected.IdOf("rare"), Vocabulary::kUnknownId);
}

TEST(ClassWordStatsTest, TopWordsForClass) {
  ClassWordStats stats(2);
  for (int i = 0; i < 5; ++i) stats.AddDocument({"big", "small"}, 1);
  for (int i = 0; i < 3; ++i) stats.AddDocument({"big"}, 1);
  const auto top = stats.TopWordsForClass(1, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "big");
  EXPECT_EQ(top[0].second, 8);
  EXPECT_EQ(top[1].first, "small");
}

// ---- shared helpers ----------------------------------------------------------------

TEST(TextHelpersTest, TokenizeDocuments) {
  const auto docs = TokenizeDocuments({"The Tax Plan", "guns and GUNS"});
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].size(), 2u);  // "the" removed as stopword.
  EXPECT_EQ(docs[1][0], "guns");
  EXPECT_EQ(docs[1][1], "guns");
}

TEST(TextHelpersTest, SelectChiSquareWordSetUsesOnlyTrainingDocs) {
  const std::vector<std::vector<std::string>> docs = {
      {"train_signal"}, {"test_only_word"}, {"train_signal"}, {"other"}};
  const std::vector<int32_t> train_ids = {0, 2, 3};
  const std::vector<int32_t> targets = {1, 0, 1, 0};
  const Vocabulary selected =
      SelectChiSquareWordSet(docs, train_ids, targets, 2, 10);
  EXPECT_EQ(selected.IdOf("test_only_word"), Vocabulary::kUnknownId);
  EXPECT_NE(selected.IdOf("train_signal"), Vocabulary::kUnknownId);
}

TEST(TextHelpersTest, BuildFrequencyVocabulary) {
  const std::vector<std::vector<std::string>> docs = {
      {"a", "b"}, {"b", "c"}, {"b"}};
  const Vocabulary vocab = BuildFrequencyVocabulary(docs, 2);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.IdOf("b"), 0);
}

TEST(VocabularyTest, ConstLookupsAreSafeFromManyThreads) {
  // Build once, then share const — the documented serving access pattern.
  Vocabulary vocabulary;
  constexpr size_t kTokens = 200;
  for (size_t i = 0; i < kTokens; ++i) {
    vocabulary.Add("token_" + std::to_string(i));
    vocabulary.Add("token_" + std::to_string(i));  // frequency 2 each
  }
  const Vocabulary& frozen = vocabulary;

  constexpr size_t kThreads = 8;
  std::vector<std::thread> readers;
  std::vector<size_t> mismatches(kThreads, 1);  // 1 = did not finish
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&frozen, &mismatches, t] {
      size_t bad = 0;
      for (size_t round = 0; round < 50; ++round) {
        for (size_t i = 0; i < kTokens; ++i) {
          const std::string token = "token_" + std::to_string(i);
          const int32_t id = frozen.IdOf(token);
          if (id != static_cast<int32_t>(i)) ++bad;
          if (frozen.TokenOf(id) != token) ++bad;
          if (frozen.FrequencyOf(token) != 2) ++bad;
        }
        if (frozen.IdOf("never_added") != Vocabulary::kUnknownId) ++bad;
        if (frozen.Encode({"token_0", "oov", "token_1"}).size() != 2) ++bad;
      }
      mismatches[t] = bad;
    });
  }
  for (auto& reader : readers) reader.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0u) << "reader thread " << t;
  }
}

}  // namespace
}  // namespace text
}  // namespace fkd
