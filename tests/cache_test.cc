// Property tests for the serving-router primitives in src/common:
//
//  - LruCache / ShardedLruCache: capacity, eviction order, and
//    hit/miss/eviction accounting invariants, pinned by randomized
//    operation sequences checked against a naive reference model;
//  - ConsistentHashRing: key balance across nodes and minimal remapping
//    when a node joins or leaves.
//
// The Cache* suites also run under TSan (tools/tsan_smoke.sh) to cover the
// sharded cache's per-shard locking.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/consistent_hash.h"
#include "common/lru_cache.h"
#include "common/rng.h"

namespace fkd {
namespace {

// ---- LRU cache --------------------------------------------------------------------

TEST(CacheTest, GetPromotesAndPutEvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(3);
  cache.Put(1, "one");
  cache.Put(2, "two");
  cache.Put(3, "three");

  // Touch 1 so 2 becomes the LRU victim.
  std::string value;
  ASSERT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(value, "one");

  cache.Put(4, "four");
  EXPECT_FALSE(cache.Contains(2)) << "LRU key must be the victim";
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.size(), 3u);

  const LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(CacheTest, PutExistingKeyUpdatesWithoutEviction) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // update, not insertion: nothing evicted
  EXPECT_EQ(cache.size(), 2u);
  int value = 0;
  ASSERT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(value, 11);
  const LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(CacheTest, EraseAndClear) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  cache.Put(2, 2);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  int value = 0;
  EXPECT_FALSE(cache.Get(2, &value));
}

/// Reference model: the same contract implemented naively (ordered vector,
/// front = most recent). The real cache must agree with it exactly after
/// every operation of a randomized sequence.
class ReferenceLru {
 public:
  explicit ReferenceLru(size_t capacity) : capacity_(capacity) {}

  bool Get(int key, int* value) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].first == key) {
        ++hits_;
        auto entry = entries_[i];
        entries_.erase(entries_.begin() + static_cast<long>(i));
        entries_.insert(entries_.begin(), entry);
        *value = entry.second;
        return true;
      }
    }
    ++misses_;
    return false;
  }

  void Put(int key, int value) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].first == key) {
        entries_.erase(entries_.begin() + static_cast<long>(i));
        entries_.insert(entries_.begin(), {key, value});
        return;
      }
    }
    if (entries_.size() >= capacity_) {
      ++evictions_;
      entries_.pop_back();
    }
    entries_.insert(entries_.begin(), {key, value});
  }

  bool Erase(int key) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].first == key) {
        entries_.erase(entries_.begin() + static_cast<long>(i));
        return true;
      }
    }
    return false;
  }

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  const std::vector<std::pair<int, int>>& entries() const { return entries_; }

 private:
  size_t capacity_;
  std::vector<std::pair<int, int>> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

TEST(CacheTest, RandomizedOpsMatchReferenceModel) {
  // Small key space (32 keys, capacity 8) so every behaviour — hit, miss,
  // update, eviction, erase — fires constantly over 20k operations.
  constexpr size_t kCapacity = 8;
  constexpr int kKeySpace = 32;
  constexpr size_t kOps = 20000;

  LruCache<int, int> cache(kCapacity);
  ReferenceLru reference(kCapacity);
  Rng rng(20260806);

  for (size_t op = 0; op < kOps; ++op) {
    const int key = static_cast<int>(rng.UniformInt(kKeySpace));
    const double which = rng.Uniform();
    if (which < 0.45) {
      int got = 0;
      int expected = 0;
      const bool hit = cache.Get(key, &got);
      const bool expected_hit = reference.Get(key, &expected);
      ASSERT_EQ(hit, expected_hit) << "op " << op << " key " << key;
      if (hit) ASSERT_EQ(got, expected);
    } else if (which < 0.9) {
      const int value = static_cast<int>(op);
      cache.Put(key, value);
      reference.Put(key, value);
    } else {
      ASSERT_EQ(cache.Erase(key), reference.Erase(key));
    }
    // Capacity invariant holds after every single operation.
    ASSERT_LE(cache.size(), kCapacity);
    ASSERT_EQ(cache.size(), reference.size());
  }

  // Exact accounting: every Get was one hit or one miss, evictions agree.
  const LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, reference.hits());
  EXPECT_EQ(stats.misses, reference.misses());
  EXPECT_EQ(stats.hits + stats.misses, reference.hits() + reference.misses());
  EXPECT_EQ(stats.evictions, reference.evictions());

  // Residency and recency order agree entry for entry.
  for (const auto& [key, value] : reference.entries()) {
    int got = 0;
    ASSERT_TRUE(cache.Get(key, &got)) << "key " << key << " missing";
    EXPECT_EQ(got, value);
  }
}

TEST(CacheTest, ShardedCapacityAndAccounting) {
  // 64 entries over 4 shards: each shard holds 16. Insert far more distinct
  // keys than capacity and verify residency stays bounded and accounting
  // stays exact.
  ShardedLruCache<uint64_t, uint64_t> cache(64, 4);
  EXPECT_EQ(cache.num_shards(), 4u);
  for (uint64_t key = 0; key < 1000; ++key) cache.Put(key, key * 3);

  LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 1000u);
  EXPECT_LE(stats.size, 64u);
  EXPECT_EQ(stats.size, stats.insertions - stats.evictions);

  uint64_t hits = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    uint64_t value = 0;
    if (cache.Get(key, &value)) {
      EXPECT_EQ(value, key * 3);
      ++hits;
    }
  }
  stats = cache.Stats();
  EXPECT_EQ(stats.hits, hits);
  EXPECT_EQ(stats.misses, 1000u - hits);
  EXPECT_EQ(stats.size, hits) << "exactly the resident keys hit";
}

TEST(CacheTest, ShardsCapAtCapacity) {
  // More shards than capacity: shard count folds down so no shard has zero
  // slots.
  ShardedLruCache<int, int> cache(3, 16);
  EXPECT_EQ(cache.num_shards(), 3u);
  cache.Put(1, 1);
  int value = 0;
  EXPECT_TRUE(cache.Get(1, &value));
}

TEST(CacheTest, ConcurrentReadersAndWritersKeepAccountingExact) {
  // 4 threads × 4k ops against a sharded cache; TSan covers the locking,
  // and the summed accounting must remain exact: every Get is one hit or
  // one miss, residency = insertions - evictions (no erases here).
  ShardedLruCache<uint64_t, uint64_t> cache(128, 8);
  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 4000;
  std::atomic<uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, t] {
      Rng rng(1000 + t);
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        const uint64_t key = rng.UniformInt(512);
        if (rng.Bernoulli(0.5)) {
          uint64_t value = 0;
          if (cache.Get(key, &value)) {
            // Values are a pure function of the key, so a concurrent
            // overwrite can never surface a torn or mismatched value.
            EXPECT_EQ(value, key * 7);
            observed_hits.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          cache.Put(key, key * 7);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_EQ((stats.hits + stats.misses) + (stats.insertions + stats.updates),
            kThreads * kOpsPerThread)
      << "every op was accounted exactly once";
  EXPECT_EQ(stats.size, stats.insertions - stats.evictions);
  EXPECT_LE(stats.size, 128u);
}

// ---- consistent hashing -----------------------------------------------------------

TEST(ConsistentHashTest, Hash64IsStableAndSensitive) {
  // Pinned value: the hash must be stable across platforms/runs (cache
  // keys and ring placement depend on it).
  EXPECT_EQ(Hash64("fakedetector"), Hash64("fakedetector"));
  EXPECT_NE(Hash64("fakedetector"), Hash64("fakedetectos"));
  EXPECT_NE(Hash64(""), Hash64("\0", 1));
  EXPECT_NE(Hash64Mix(1, 2), Hash64Mix(2, 1)) << "mix is order-sensitive";
}

TEST(ConsistentHashTest, PickIsDeterministicAndCoversAllNodes) {
  ConsistentHashRing ring(64);
  for (uint64_t node = 0; node < 4; ++node) ring.AddNode(node);
  EXPECT_EQ(ring.num_nodes(), 4u);
  EXPECT_EQ(ring.Nodes(), (std::vector<uint64_t>{0, 1, 2, 3}));

  std::map<uint64_t, size_t> assignments;
  for (uint64_t key = 0; key < 4000; ++key) {
    const uint64_t hash = Hash64Mix(7, key);
    const uint64_t node = ring.Pick(hash);
    EXPECT_EQ(node, ring.Pick(hash)) << "placement must be deterministic";
    ++assignments[node];
  }
  EXPECT_EQ(assignments.size(), 4u) << "every node owns some keys";
}

TEST(ConsistentHashTest, BalanceWithinSmallFactorOfEven) {
  // With 128 vnodes/node, no node should carry more than ~2x (or less
  // than ~1/2x) its even share of a large key population.
  constexpr size_t kNodes = 8;
  constexpr size_t kKeys = 40000;
  ConsistentHashRing ring(128);
  for (uint64_t node = 0; node < kNodes; ++node) ring.AddNode(node);

  std::map<uint64_t, size_t> load;
  for (uint64_t key = 0; key < kKeys; ++key) {
    ++load[ring.Pick(Hash64Mix(13, key))];
  }
  const double even = static_cast<double>(kKeys) / kNodes;
  for (const auto& [node, count] : load) {
    EXPECT_GT(count, even / 2) << "node " << node << " underloaded";
    EXPECT_LT(count, even * 2) << "node " << node << " overloaded";
  }
}

TEST(ConsistentHashTest, AddingNodeRemapsOnlyItsShare) {
  constexpr size_t kNodes = 8;
  constexpr size_t kKeys = 20000;
  ConsistentHashRing ring(128);
  for (uint64_t node = 0; node < kNodes; ++node) ring.AddNode(node);

  std::vector<uint64_t> before(kKeys);
  for (uint64_t key = 0; key < kKeys; ++key) {
    before[key] = ring.Pick(Hash64Mix(17, key));
  }

  ring.AddNode(kNodes);  // node 8 joins
  size_t moved = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    const uint64_t now = ring.Pick(Hash64Mix(17, key));
    if (now != before[key]) {
      ++moved;
      // Minimal-remap property: a key may only move TO the new node; no
      // key moves between two pre-existing nodes.
      EXPECT_EQ(now, kNodes) << "key " << key << " moved between old nodes";
    }
  }
  // The new node's fair share is 1/9; allow generous slack either way but
  // require far less churn than rehash-everything (which would move 8/9).
  EXPECT_GT(moved, kKeys / 30);
  EXPECT_LT(moved, kKeys / 4);
}

TEST(ConsistentHashTest, RemovingNodeOnlyRehomesItsKeys) {
  constexpr size_t kNodes = 6;
  constexpr size_t kKeys = 20000;
  ConsistentHashRing ring(128);
  for (uint64_t node = 0; node < kNodes; ++node) ring.AddNode(node);

  std::vector<uint64_t> before(kKeys);
  for (uint64_t key = 0; key < kKeys; ++key) {
    before[key] = ring.Pick(Hash64Mix(23, key));
  }

  constexpr uint64_t kVictim = 3;
  ring.RemoveNode(kVictim);
  EXPECT_EQ(ring.num_nodes(), kNodes - 1);
  EXPECT_FALSE(ring.HasNode(kVictim));

  for (uint64_t key = 0; key < kKeys; ++key) {
    const uint64_t now = ring.Pick(Hash64Mix(23, key));
    if (before[key] != kVictim) {
      EXPECT_EQ(now, before[key])
          << "key " << key << " moved though its node survived";
    } else {
      EXPECT_NE(now, kVictim);
    }
  }
}

TEST(ConsistentHashTest, AddRemoveRoundTripRestoresPlacement) {
  ConsistentHashRing ring(64);
  for (uint64_t node = 0; node < 5; ++node) ring.AddNode(node);
  std::vector<uint64_t> before;
  for (uint64_t key = 0; key < 1000; ++key) {
    before.push_back(ring.Pick(Hash64Mix(29, key)));
  }
  ring.AddNode(99);
  ring.RemoveNode(99);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(ring.Pick(Hash64Mix(29, key)), before[key]);
  }
}

}  // namespace
}  // namespace fkd
