#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "baselines/deepwalk.h"
#include "baselines/embedding_util.h"
#include "baselines/label_propagation.h"
#include "baselines/line.h"
#include "baselines/rnn_classifier.h"
#include "baselines/skipgram.h"
#include "baselines/svm.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"

namespace fkd {
namespace baselines {
namespace {

// ---- LinearSvm -----------------------------------------------------------------

TEST(LinearSvmTest, SeparatesLinearlySeparableData) {
  // y = sign(x0 - x1).
  Tensor features = Tensor::FromRows({{2, 0}, {3, 1}, {1, 0}, {4, 2},
                                      {0, 2}, {1, 3}, {0, 1}, {2, 4}});
  std::vector<int32_t> labels = {1, 1, 1, 1, -1, -1, -1, -1};
  LinearSvm svm;
  ASSERT_TRUE(svm.Train(features, labels).ok());
  for (size_t i = 0; i < labels.size(); ++i) {
    const double decision = svm.Decision(features.Row(i), 2);
    EXPECT_GT(decision * labels[i], 0.0) << "row " << i;
  }
  // Margin direction: w0 > 0 > w1.
  EXPECT_GT(svm.weights()[0], 0.0);
  EXPECT_LT(svm.weights()[1], 0.0);
}

TEST(LinearSvmTest, BiasShiftsDecision) {
  // All-positive labels with identical features: bias must dominate.
  Tensor features = Tensor::FromRows({{1.0f}, {1.0f}});
  LinearSvm svm;
  ASSERT_TRUE(svm.Train(features, {1, 1}).ok());
  const float x = 1.0f;
  EXPECT_GT(svm.Decision(&x, 1), 0.0);
}

TEST(LinearSvmTest, RejectsBadInputs) {
  LinearSvm svm;
  Tensor features(2, 2);
  EXPECT_FALSE(svm.Train(features, {1}).ok());         // Size mismatch.
  EXPECT_FALSE(svm.Train(features, {1, 2}).ok());      // Bad label value.
  Tensor empty(std::vector<size_t>{0, 2});
  EXPECT_FALSE(svm.Train(empty, {}).ok());             // Empty.
}

TEST(OneVsRestSvmTest, ThreeClassSeparation) {
  // Three clusters at simplex corners (every class OVR-separable).
  Tensor features = Tensor::FromRows({{5, 0}, {5.2, 0.1}, {0, 5}, {0.1, 5.2},
                                      {-5, -5}, {-5.2, -4.9}});
  std::vector<int32_t> labels = {0, 0, 1, 1, 2, 2};
  OneVsRestSvm svm(3);
  ASSERT_TRUE(svm.Train(features, labels).ok());
  const auto predictions = svm.PredictBatch(features);
  EXPECT_EQ(predictions, labels);
}

TEST(OneVsRestSvmTest, RejectsOutOfRangeClass) {
  OneVsRestSvm svm(2);
  Tensor features(1, 1);
  EXPECT_FALSE(svm.Train(features, {5}).ok());
}

// ---- shared fixtures -------------------------------------------------------------

struct Fixture {
  data::Dataset dataset;
  graph::HeterogeneousGraph graph;
  eval::TrainContext context;
};

Fixture MakeFixture(size_t articles,
                    eval::LabelGranularity granularity =
                        eval::LabelGranularity::kBinary) {
  auto dataset_result =
      data::GeneratePolitiFact(data::GeneratorOptions::Scaled(articles, 99));
  FKD_CHECK_OK(dataset_result.status());
  auto dataset = std::move(dataset_result).value();
  auto graph_result = dataset.BuildGraph();
  FKD_CHECK_OK(graph_result.status());
  Fixture fixture{std::move(dataset), std::move(graph_result).value(), {}};
  Rng rng(13);
  auto splits = data::KFoldTriSplits(
      fixture.dataset.articles.size(), fixture.dataset.creators.size(),
      fixture.dataset.subjects.size(), 5, &rng);
  FKD_CHECK_OK(splits.status());
  const auto& split = splits.value()[0];
  fixture.context.dataset = &fixture.dataset;
  fixture.context.graph = &fixture.graph;
  fixture.context.train_articles = split.articles.train;
  fixture.context.train_creators = split.creators.train;
  fixture.context.train_subjects = split.subjects.train;
  fixture.context.granularity = granularity;
  fixture.context.seed = 3;
  return fixture;
}

double ArticleTrainAccuracy(const Fixture& fixture,
                            const eval::Predictions& predictions) {
  eval::ConfusionMatrix matrix(
      eval::NumClasses(fixture.context.granularity));
  for (int32_t id : fixture.context.train_articles) {
    matrix.Add(eval::TargetOf(fixture.dataset.articles[id].label,
                              fixture.context.granularity),
               predictions.articles[id]);
  }
  return matrix.Accuracy();
}

// ---- SvmClassifier ------------------------------------------------------------------

TEST(SvmClassifierTest, LearnsTextSignal) {
  auto fixture = MakeFixture(300);
  SvmClassifier classifier;
  ASSERT_TRUE(classifier.Train(fixture.context).ok());
  auto predictions = classifier.Predict();
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions.value().articles.size(), 300u);
  EXPECT_GT(ArticleTrainAccuracy(fixture, predictions.value()), 0.65);
}

TEST(SvmClassifierTest, PredictBeforeTrainFails) {
  SvmClassifier classifier;
  EXPECT_EQ(classifier.Predict().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SvmClassifierTest, EmptyTrainingRejected) {
  auto fixture = MakeFixture(100);
  fixture.context.train_articles.clear();
  SvmClassifier classifier;
  EXPECT_FALSE(classifier.Train(fixture.context).ok());
}

// ---- LabelPropagation -----------------------------------------------------------------

TEST(LabelPropagationTest, ConvergesAndClampsTrainingNodes) {
  auto fixture = MakeFixture(300);
  LabelPropagation propagation;
  ASSERT_TRUE(propagation.Train(fixture.context).ok());
  EXPECT_GT(propagation.iterations_run(), 1u);
  EXPECT_LT(propagation.iterations_run(), 300u);  // Converged before cap.
  auto predictions = propagation.Predict();
  ASSERT_TRUE(predictions.ok());
  // Training articles keep their clamped label.
  for (int32_t id : fixture.context.train_articles) {
    EXPECT_EQ(predictions.value().articles[id],
              data::BiClassOf(fixture.dataset.articles[id].label));
  }
}

TEST(LabelPropagationTest, BeatsChanceOnGraphSignal) {
  auto fixture = MakeFixture(400);
  LabelPropagation propagation;
  ASSERT_TRUE(propagation.Train(fixture.context).ok());
  auto predictions = propagation.Predict();
  ASSERT_TRUE(predictions.ok());
  // Held-out articles: creator-driven labels make LP informative.
  eval::ConfusionMatrix matrix(2);
  std::set<int32_t> train(fixture.context.train_articles.begin(),
                          fixture.context.train_articles.end());
  for (const auto& article : fixture.dataset.articles) {
    if (train.count(article.id)) continue;
    matrix.Add(data::BiClassOf(article.label),
               predictions.value().articles[article.id]);
  }
  EXPECT_GT(matrix.Accuracy(), 0.55);
}

TEST(LabelPropagationTest, MultiClassScoresRoundToLabels) {
  auto fixture = MakeFixture(200, eval::LabelGranularity::kMulti);
  LabelPropagation propagation;
  ASSERT_TRUE(propagation.Train(fixture.context).ok());
  auto predictions = propagation.Predict();
  ASSERT_TRUE(predictions.ok());
  for (int32_t p : predictions.value().articles) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 6);
  }
}

TEST(LabelPropagationTest, NeedsLabels) {
  auto fixture = MakeFixture(100);
  fixture.context.train_articles.clear();
  fixture.context.train_creators.clear();
  fixture.context.train_subjects.clear();
  LabelPropagation propagation;
  EXPECT_FALSE(propagation.Train(fixture.context).ok());
}

// ---- skip-gram ---------------------------------------------------------------------

TEST(SkipGramTest, CliqueTokensClusterTogether) {
  // Two disjoint "topics": sentences alternate tokens within each group.
  std::vector<std::vector<int32_t>> sentences;
  Rng data_rng(17);
  for (int s = 0; s < 200; ++s) {
    std::vector<int32_t> sentence;
    const int32_t base = (s % 2 == 0) ? 0 : 4;
    for (int t = 0; t < 12; ++t) {
      sentence.push_back(base + static_cast<int32_t>(data_rng.UniformInt(4u)));
    }
    sentences.push_back(std::move(sentence));
  }
  SkipGramOptions options;
  options.dim = 16;
  options.epochs = 4;
  Rng rng(18);
  const Tensor embeddings = TrainSkipGram(sentences, 8, options, &rng);

  auto cosine = [&](int32_t a, int32_t b) {
    double dot = 0, na = 0, nb = 0;
    for (size_t j = 0; j < 16; ++j) {
      dot += embeddings.At(a, j) * embeddings.At(b, j);
      na += embeddings.At(a, j) * embeddings.At(a, j);
      nb += embeddings.At(b, j) * embeddings.At(b, j);
    }
    return dot / std::sqrt(na * nb);
  };
  // Within-topic similarity above cross-topic similarity.
  const double within = (cosine(0, 1) + cosine(2, 3) + cosine(4, 5)) / 3.0;
  const double across = (cosine(0, 4) + cosine(1, 5) + cosine(2, 6)) / 3.0;
  EXPECT_GT(within, across + 0.2);
}

TEST(SkipGramTest, EmptyCorpusReturnsInit) {
  Rng rng(19);
  const Tensor embeddings = TrainSkipGram({}, 5, SkipGramOptions{}, &rng);
  EXPECT_EQ(embeddings.rows(), 5u);
}

// ---- embedding util -----------------------------------------------------------------

TEST(EmbeddingUtilTest, NormalizeRows) {
  Tensor t = Tensor::FromRows({{3, 4}, {0, 0}});
  NormalizeRows(&t);
  EXPECT_NEAR(t.At(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(t.At(0, 1), 0.8f, 1e-5f);
  EXPECT_EQ(t.At(1, 0), 0.0f);  // Zero row untouched.
}

TEST(EmbeddingUtilTest, RejectsWrongRowCount) {
  auto fixture = MakeFixture(60);
  Tensor embeddings(3, 4);  // Wrong size.
  eval::Predictions predictions;
  EXPECT_FALSE(ClassifyByEmbeddings(embeddings, fixture.context, SvmOptions{},
                                    &predictions)
                   .ok());
}

// ---- DeepWalk / LINE ---------------------------------------------------------------

TEST(DeepWalkTest, EndToEndProducesFullPredictions) {
  auto fixture = MakeFixture(200);
  DeepWalkClassifier::Options options;
  options.walks.walks_per_node = 4;
  options.walks.walk_length = 12;
  options.skipgram.dim = 16;
  options.skipgram.epochs = 1;
  DeepWalkClassifier classifier(options);
  ASSERT_TRUE(classifier.Train(fixture.context).ok());
  auto predictions = classifier.Predict();
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions.value().articles.size(), 200u);
  EXPECT_EQ(predictions.value().creators.size(),
            fixture.dataset.creators.size());
  EXPECT_EQ(classifier.embeddings().rows(), fixture.graph.TotalNodes());
}

TEST(LineTest, EmbeddingsHaveUnitHalves) {
  auto fixture = MakeFixture(120);
  LineOptions options;
  options.dim = 8;
  options.samples_per_edge = 5;
  Rng rng(20);
  const Tensor embeddings = TrainLine(fixture.graph, options, &rng);
  EXPECT_EQ(embeddings.rows(), fixture.graph.TotalNodes());
  EXPECT_EQ(embeddings.cols(), 8u);
  // Each half is L2-normalised for connected nodes.
  double first_half = 0.0;
  for (size_t j = 0; j < 4; ++j) {
    first_half += embeddings.At(0, j) * embeddings.At(0, j);
  }
  EXPECT_NEAR(first_half, 1.0, 1e-4);
}

TEST(LineTest, EndToEnd) {
  auto fixture = MakeFixture(150);
  LineClassifier::Options options;
  options.line.dim = 16;
  options.line.samples_per_edge = 8;
  LineClassifier classifier(options);
  ASSERT_TRUE(classifier.Train(fixture.context).ok());
  auto predictions = classifier.Predict();
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions.value().subjects.size(),
            fixture.dataset.subjects.size());
}

// ---- RNN ----------------------------------------------------------------------------

TEST(RnnClassifierTest, LearnsTrainingSignal) {
  auto fixture = MakeFixture(150);
  RnnClassifier::Options options;
  options.epochs = 30;
  options.vocabulary = 200;
  options.max_sequence_length = 12;
  options.hidden_dim = 16;
  options.embed_dim = 12;
  RnnClassifier classifier(options);
  ASSERT_TRUE(classifier.Train(fixture.context).ok());
  auto predictions = classifier.Predict();
  ASSERT_TRUE(predictions.ok());
  EXPECT_GT(ArticleTrainAccuracy(fixture, predictions.value()), 0.6);
}

TEST(RnnClassifierTest, NameIsPaperLegend) {
  EXPECT_EQ(RnnClassifier().Name(), "rnn");
  EXPECT_EQ(SvmClassifier().Name(), "svm");
  EXPECT_EQ(LabelPropagation().Name(), "lp");
  EXPECT_EQ(DeepWalkClassifier().Name(), "deepwalk");
  EXPECT_EQ(LineClassifier().Name(), "line");
}

}  // namespace
}  // namespace baselines
}  // namespace fkd
