#include <chrono>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace fkd {
namespace {

// ---- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IoError("x"), Status::IoError("x"));
  EXPECT_FALSE(Status::IoError("x") == Status::IoError("y"));
  EXPECT_FALSE(Status::IoError("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 11; ++code) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(StatusTest, IsRetryableOnlyForTransientCodes) {
  // Retryable: the operation might succeed if simply repeated.
  EXPECT_TRUE(Status::Unavailable("overloaded").IsRetryable());
  EXPECT_TRUE(Status::IoError("disk hiccup").IsRetryable());
  // Everything else is either success or a deterministic failure.
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("bad").IsRetryable());
  EXPECT_FALSE(Status::NotFound("gone").IsRetryable());
  EXPECT_FALSE(Status::Corruption("torn").IsRetryable());
  EXPECT_FALSE(Status::Internal("bug").IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("late").IsRetryable());
  EXPECT_FALSE(Status::FailedPrecondition("not ready").IsRetryable());
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, ValueAndError) {
  auto good = HalveEven(8);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 4);

  auto bad = HalveEven(7);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(HalveEven(8).value_or(-1), 4);
  EXPECT_EQ(HalveEven(7).value_or(-1), -1);
}

Status UseMacros(int x, int* out) {
  FKD_ASSIGN_OR_RETURN(int half, HalveEven(x));
  FKD_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  *out = quarter;
  FKD_RETURN_NOT_OK(quarter == 0 ? Status::OutOfRange("zero") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(UseMacros(6, &out).code(), StatusCode::kInvalidArgument);  // 3 odd
  EXPECT_EQ(UseMacros(0, &out).code(), StatusCode::kOutOfRange);
}

// ---- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const uint64_t v = rng.UniformInt(5u);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values hit.
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(4);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.08);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(6);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, PowerLawWithinBoundsAndHeavyHead) {
  Rng rng(7);
  int ones = 0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.PowerLaw(2.1, 100);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
    if (v == 1) ++ones;
  }
  EXPECT_GT(ones, 2000);  // Majority mass at k = 1 for alpha ~ 2.
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(10);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, DumpRestoreStateResumesExactStream) {
  Rng rng(42);
  // Consume an odd number of Normal() draws so the Box-Muller cache is hot
  // when the state is captured — the dump must carry it.
  for (int i = 0; i < 7; ++i) rng.Normal();
  for (int i = 0; i < 5; ++i) rng.Next();
  const auto state = rng.DumpState();

  std::vector<double> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(rng.Normal());

  Rng other(999);  // deliberately different seed and stream position
  other.Next();
  ASSERT_TRUE(other.RestoreState(state));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(other.Normal(), expected[i]) << "stream diverged at draw " << i;
  }
}

TEST(RngTest, RestoreStateRejectsInvalidDumps) {
  Rng rng(1);
  const uint64_t before = rng.Next();
  Rng probe(1);
  probe.Next();
  EXPECT_FALSE(probe.RestoreState({}));
  EXPECT_FALSE(probe.RestoreState({1, 2, 3}));
  EXPECT_FALSE(probe.RestoreState({1, 2, 3, 4, 7 /* bad flag */, 0}));
  // A rejected restore leaves the stream untouched.
  Rng fresh(1);
  fresh.Next();
  EXPECT_EQ(probe.Next(), fresh.Next());
  (void)before;
}

// ---- string_util -------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  const auto fields = Split("a\tb\t\tc", '\t');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "c");
}

TEST(StringUtilTest, SplitEmptyInput) {
  const auto fields = Split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(StringUtilTest, SplitWhitespaceSkipsRuns) {
  const auto tokens = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "foo");
  EXPECT_EQ(tokens[2], "baz");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, ToLowerStartsEndsWith) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("bar", "foobar"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("123", &v));
  EXPECT_EQ(v, 123u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));  // UINT64_MAX
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // Overflow.
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("-2.5e2", &v));
  EXPECT_DOUBLE_EQ(v, -250.0);
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

// ---- FlagParser ---------------------------------------------------------------

TEST(FlagsTest, DefaultsAndOverrides) {
  FlagParser flags;
  flags.AddInt("n", 5, "count");
  flags.AddDouble("rate", 0.5, "rate");
  flags.AddBool("fast", false, "speed");
  flags.AddString("name", "x", "name");

  const char* argv[] = {"prog", "--n=10", "--fast", "--rate=0.25"};
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("n"), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags.GetBool("fast"));
  EXPECT_EQ(flags.GetString("name"), "x");
}

TEST(FlagsTest, NegativeInt) {
  FlagParser flags;
  flags.AddInt("delta", 0, "");
  const char* argv[] = {"prog", "--delta=-42"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("delta"), -42);
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagParser flags;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_EQ(flags.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadValuesRejected) {
  FlagParser flags;
  flags.AddInt("n", 0, "");
  flags.AddBool("b", false, "");
  const char* argv1[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv1)).ok());
  const char* argv2[] = {"prog", "--b=maybe"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv2)).ok());
}

TEST(FlagsTest, PositionalRejected) {
  FlagParser flags;
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, HelpReturnsFailedPrecondition) {
  FlagParser flags;
  flags.AddInt("n", 3, "count");
  const char* argv[] = {"prog", "--help"};
  EXPECT_EQ(flags.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_NE(flags.Usage("prog").find("count"), std::string::npos);
}

// ---- Logging ----------------------------------------------------------------

TEST(LoggingTest, ParseLogLevelNames) {
  LogLevel level;
  EXPECT_TRUE(internal::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(internal::ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(internal::ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(internal::ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(internal::ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(internal::ParseLogLevel("fatal", &level));
  EXPECT_EQ(level, LogLevel::kFatal);
}

TEST(LoggingTest, ParseLogLevelDigits) {
  LogLevel level;
  EXPECT_TRUE(internal::ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(internal::ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(LoggingTest, ParseLogLevelRejectsGarbage) {
  LogLevel level;
  EXPECT_FALSE(internal::ParseLogLevel("", &level));
  EXPECT_FALSE(internal::ParseLogLevel("verbose", &level));
  EXPECT_FALSE(internal::ParseLogLevel("7", &level));
  EXPECT_FALSE(internal::ParseLogLevel(nullptr, &level));
}

TEST(LoggingTest, LinesCarryTimestampAndSeverityPrefix) {
  const LogLevel saved = internal::GetMinLogLevel();
  internal::SetMinLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  FKD_LOG(Info) << "timestamp probe";
  const std::string output = ::testing::internal::GetCapturedStderr();
  internal::SetMinLogLevel(saved);

  // Expect "[2026-08-06T12:34:56.789Z INFO file:line] timestamp probe".
  ASSERT_FALSE(output.empty());
  EXPECT_EQ(output[0], '[');
  ASSERT_GE(output.size(), 25u);
  const std::string stamp = output.substr(1, 24);
  EXPECT_EQ(stamp[4], '-');
  EXPECT_EQ(stamp[7], '-');
  EXPECT_EQ(stamp[10], 'T');
  EXPECT_EQ(stamp[13], ':');
  EXPECT_EQ(stamp[16], ':');
  EXPECT_EQ(stamp[19], '.');
  EXPECT_EQ(stamp[23], 'Z');
  EXPECT_NE(output.find(" INFO "), std::string::npos);
  EXPECT_NE(output.find("common_test.cc:"), std::string::npos);
  EXPECT_NE(output.find("] timestamp probe"), std::string::npos);
}

TEST(LoggingTest, MessagesBelowMinLevelAreSuppressed) {
  const LogLevel saved = internal::GetMinLogLevel();
  internal::SetMinLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  FKD_LOG(Info) << "should not appear";
  const std::string output = ::testing::internal::GetCapturedStderr();
  internal::SetMinLogLevel(saved);
  EXPECT_EQ(output.find("should not appear"), std::string::npos);
}

// ---- Clock / FakeClock ------------------------------------------------------

TEST(ClockTest, RealClockIsMonotonicAndWallIsPlausible) {
  Clock* clock = Clock::Real();
  const int64_t a = clock->NowUs();
  const int64_t b = clock->NowUs();
  EXPECT_GE(b, a);
  // Wall time is microseconds since the Unix epoch: anything after
  // 2020-01-01 (1577836800s) is "the clock is set at all".
  EXPECT_GT(clock->WallUs(), 1577836800LL * 1000000LL);
  EXPECT_EQ(clock, Clock::Real()) << "Real() must be a stable singleton";
}

TEST(ClockTest, FakeClockOnlyMovesWhenDriven) {
  FakeClock clock(1000, 500000);
  EXPECT_EQ(clock.NowUs(), 1000);
  EXPECT_EQ(clock.WallUs(), 500000);
  clock.Advance(250);
  EXPECT_EQ(clock.NowUs(), 1250);
  EXPECT_EQ(clock.WallUs(), 500250);
  // Time never passes on its own.
  EXPECT_EQ(clock.NowUs(), 1250);
}

TEST(ClockTest, FakeSleepAdvancesInstantlyAndIsRecorded) {
  FakeClock clock;
  const auto start = std::chrono::steady_clock::now();
  clock.SleepUs(30'000'000);  // would be 30 real seconds
  clock.SleepUs(10'000'000);
  clock.SleepUs(0);   // no-ops are not recorded
  clock.SleepUs(-5);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000)
      << "fake sleeps must not block";
  EXPECT_EQ(clock.NowUs(), 40'000'000);
  EXPECT_EQ(clock.WallUs(), 40'000'000);
  EXPECT_EQ(clock.total_slept_us(), 40'000'000);
  EXPECT_EQ(clock.sleep_calls(), 2);
}

}  // namespace
}  // namespace fkd
