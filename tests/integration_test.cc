// End-to-end integration tests: the full paper pipeline (generate ->
// split -> train every method -> evaluate) at a miniature scale, exercising
// the exact code paths the figure benches use.

#include <filesystem>

#include <gtest/gtest.h>

#include "baselines/deepwalk.h"
#include "baselines/label_propagation.h"
#include "baselines/line.h"
#include "baselines/rnn_classifier.h"
#include "baselines/svm.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/io.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace fkd {
namespace {

core::FakeDetectorConfig FastDetectorConfig() {
  core::FakeDetectorConfig config;
  config.epochs = 20;
  config.explicit_words = 60;
  config.latent_vocabulary = 200;
  config.hflu.max_sequence_length = 10;
  config.hflu.gru_hidden = 12;
  config.hflu.latent_dim = 10;
  config.hflu.embed_dim = 10;
  config.gdu_hidden = 16;
  return config;
}

baselines::DeepWalkClassifier::Options FastDeepWalkOptions() {
  baselines::DeepWalkClassifier::Options options;
  options.walks.walks_per_node = 3;
  options.walks.walk_length = 10;
  options.skipgram.dim = 16;
  options.skipgram.epochs = 1;
  return options;
}

baselines::RnnClassifier::Options FastRnnOptions() {
  baselines::RnnClassifier::Options options;
  options.epochs = 15;
  options.vocabulary = 150;
  options.max_sequence_length = 10;
  options.hidden_dim = 12;
  options.embed_dim = 10;
  return options;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result =
        data::GeneratePolitiFact(data::GeneratorOptions::Scaled(260, 2024));
    FKD_CHECK_OK(result.status());
    dataset_ = new data::Dataset(std::move(result).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static data::Dataset* dataset_;
};

data::Dataset* IntegrationTest::dataset_ = nullptr;

TEST_F(IntegrationTest, AllSixMethodsRunThroughTheHarness) {
  eval::ExperimentOptions options;
  options.k_folds = 4;
  options.folds_to_run = 1;
  options.sample_ratios = {0.6};
  eval::ExperimentRunner runner(*dataset_, options);
  runner.RegisterMethod([] {
    return std::make_unique<core::FakeDetector>(FastDetectorConfig());
  });
  runner.RegisterMethod(
      [] { return std::make_unique<baselines::LabelPropagation>(); });
  runner.RegisterMethod([] {
    return std::make_unique<baselines::DeepWalkClassifier>(FastDeepWalkOptions());
  });
  runner.RegisterMethod([] {
    baselines::LineClassifier::Options line_options;
    line_options.line.dim = 16;
    line_options.line.samples_per_edge = 6;
    return std::make_unique<baselines::LineClassifier>(line_options);
  });
  runner.RegisterMethod(
      [] { return std::make_unique<baselines::SvmClassifier>(); });
  runner.RegisterMethod([] {
    return std::make_unique<baselines::RnnClassifier>(FastRnnOptions());
  });

  auto results = runner.Run();
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results.value().size(), 6u);

  std::set<std::string> methods;
  for (const auto& result : results.value()) {
    methods.insert(result.method);
    // Every metric in [0, 1].
    for (const eval::MetricsRow* row :
         {&result.articles, &result.creators, &result.subjects}) {
      EXPECT_GE(row->accuracy, 0.0);
      EXPECT_LE(row->accuracy, 1.0);
      EXPECT_GE(row->f1, 0.0);
      EXPECT_LE(row->f1, 1.0);
    }
  }
  EXPECT_EQ(methods.size(), 6u);

  // The report layer renders without touching invalid memory.
  const std::string series = eval::FormatFigureSeries(
      results.value(), eval::EntityKind::kArticle,
      eval::LabelGranularity::kBinary);
  EXPECT_NE(series.find("FakeDetector"), std::string::npos);
}

TEST_F(IntegrationTest, FakeDetectorBeatsStructureOnlyAndTextOnlyOnArticles) {
  // The paper's headline claim at one theta on a small corpus. Seeds are
  // fixed; thresholds are loose to avoid flakiness while still encoding
  // "hybrid beats single-modality".
  eval::ExperimentOptions options;
  options.k_folds = 4;
  options.folds_to_run = 2;
  options.sample_ratios = {0.8};
  eval::ExperimentRunner runner(*dataset_, options);
  runner.RegisterMethod([] {
    auto config = FastDetectorConfig();
    config.epochs = 40;
    return std::make_unique<core::FakeDetector>(config);
  });
  runner.RegisterMethod(
      [] { return std::make_unique<baselines::LabelPropagation>(); });

  auto results = runner.Run();
  ASSERT_TRUE(results.ok());
  const double detector_accuracy = results.value()[0].articles.accuracy;
  const double lp_accuracy = results.value()[1].articles.accuracy;
  EXPECT_GT(detector_accuracy, 0.55);
  EXPECT_GT(detector_accuracy + 0.10, lp_accuracy);  // Not far below LP...
  EXPECT_GT(detector_accuracy, lp_accuracy - 0.10);  // ...on any seed.
}

TEST_F(IntegrationTest, DatasetRoundTripPreservesExperimentResults) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "fkd_integration").string();
  ASSERT_TRUE(data::SaveDataset(*dataset_, prefix).ok());
  auto reloaded = data::LoadDataset(prefix);
  ASSERT_TRUE(reloaded.ok());

  auto run_lp = [](const data::Dataset& dataset) {
    eval::ExperimentOptions options;
    options.k_folds = 4;
    options.folds_to_run = 1;
    options.sample_ratios = {0.5};
    eval::ExperimentRunner runner(dataset, options);
    runner.RegisterMethod(
        [] { return std::make_unique<baselines::LabelPropagation>(); });
    auto results = runner.Run();
    FKD_CHECK_OK(results.status());
    return results.value()[0].articles.accuracy;
  };
  EXPECT_DOUBLE_EQ(run_lp(*dataset_), run_lp(reloaded.value()));
  for (const char* suffix : {".articles.tsv", ".creators.tsv", ".subjects.tsv"}) {
    std::filesystem::remove(prefix + suffix);
  }
}

TEST_F(IntegrationTest, MultiClassSweepRuns) {
  eval::ExperimentOptions options;
  options.k_folds = 4;
  options.folds_to_run = 1;
  options.sample_ratios = {0.5};
  options.granularity = eval::LabelGranularity::kMulti;
  eval::ExperimentRunner runner(*dataset_, options);
  runner.RegisterMethod(
      [] { return std::make_unique<baselines::SvmClassifier>(); });
  runner.RegisterMethod(
      [] { return std::make_unique<baselines::LabelPropagation>(); });
  auto results = runner.Run();
  ASSERT_TRUE(results.ok());
  // Multi-class is harder: accuracy well below bi-class ceilings but above
  // the 1/6 chance floor for at least one method.
  const double best = std::max(results.value()[0].articles.accuracy,
                               results.value()[1].articles.accuracy);
  EXPECT_GT(best, 1.0 / 6.0);
}

TEST_F(IntegrationTest, GduAblationsRunEndToEnd) {
  eval::ExperimentOptions options;
  options.k_folds = 4;
  options.folds_to_run = 1;
  options.sample_ratios = {0.8};
  eval::ExperimentRunner runner(*dataset_, options);
  for (const bool plain : {false, true}) {
    runner.RegisterMethod([plain] {
      auto config = FastDetectorConfig();
      config.epochs = 10;
      config.gdu.plain_unit = plain;
      return std::make_unique<core::FakeDetector>(config);
    });
  }
  auto results = runner.Run();
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 2u);
}

}  // namespace
}  // namespace fkd
