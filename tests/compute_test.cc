// Parallel compute core tests: ThreadPool scheduling/coverage, bitwise
// parity of every parallelised kernel across pool widths (the determinism
// contract the checkpoint-resume suites depend on), blocked-GEMM
// correctness against a straightforward reference, end-to-end training
// determinism under FKD_NUM_THREADS, and a train-while-serve race case for
// the TSan job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "tensor/autograd.h"
#include "tensor/compute.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace fkd {
namespace {

namespace fs = std::filesystem;
namespace ag = autograd;

/// Restores the env-derived global pool when a test that resizes it exits.
class ScopedPool {
 public:
  explicit ScopedPool(size_t threads) { ThreadPool::ResetGlobal(threads); }
  ~ScopedPool() { ThreadPool::ResetGlobal(0); }
};

// ---- ThreadPool scheduling ---------------------------------------------------

TEST(ThreadPoolTest, NumChunksDependsOnlyOnRangeAndGrain) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 8), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(1, 8), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(8, 8), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(9, 8), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(100, 0), 100u);  // grain clamps to 1
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    constexpr size_t kRange = 1337;
    std::vector<std::atomic<int>> hits(kRange);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(0, kRange, 16, [&](size_t begin, size_t end) {
      ASSERT_LT(begin, end);
      ASSERT_LE(end, kRange);
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < kRange; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, ChunkBoundariesFollowGrainAtAnyWidth) {
  // Chunk boundaries must be begin + c*grain regardless of thread count.
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    pool.ParallelFor(10, 100, 24, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    if (threads == 1) {
      // Serial fallback: one covering call.
      ASSERT_EQ(chunks.size(), 1u);
      EXPECT_EQ(chunks[0], (std::pair<size_t, size_t>{10, 100}));
    } else {
      ASSERT_EQ(chunks.size(), 4u);
      EXPECT_EQ(chunks[0], (std::pair<size_t, size_t>{10, 34}));
      EXPECT_EQ(chunks[1], (std::pair<size_t, size_t>{34, 58}));
      EXPECT_EQ(chunks[2], (std::pair<size_t, size_t>{58, 82}));
      EXPECT_EQ(chunks[3], (std::pair<size_t, size_t>{82, 100}));
    }
  }
}

TEST(ThreadPoolTest, CostAwareGrainScalesInverselyWithElementCost) {
  // One chunk should touch ~kTargetChunkBytes of work: expensive elements
  // mean fine grains, cheap elements coarse grains.
  EXPECT_EQ(ThreadPool::CostAwareGrain(1), ThreadPool::kTargetChunkBytes);
  EXPECT_EQ(ThreadPool::CostAwareGrain(64),
            ThreadPool::kTargetChunkBytes / 64);
  EXPECT_EQ(ThreadPool::CostAwareGrain(ThreadPool::kTargetChunkBytes), 1u);
  // Costs past the target still yield a 1-element grain, never 0.
  EXPECT_EQ(ThreadPool::CostAwareGrain(ThreadPool::kTargetChunkBytes * 8), 1u);
  // A zero hint clamps to 1 byte rather than dividing by zero.
  EXPECT_EQ(ThreadPool::CostAwareGrain(0), ThreadPool::kTargetChunkBytes);
  // The min_grain floor wins when the cost-derived grain is finer.
  EXPECT_EQ(ThreadPool::CostAwareGrain(ThreadPool::kTargetChunkBytes, 16),
            16u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> outer_hits{0};
  std::atomic<int> inner_hits{0};
  pool.ParallelFor(0, 8, 1, [&](size_t, size_t) {
    outer_hits.fetch_add(1);
    // Nested region: must complete (inline, no deadlock) and cover fully.
    pool.ParallelFor(0, 4, 1, [&](size_t begin, size_t end) {
      inner_hits.fetch_add(static_cast<int>(end - begin));
    });
  });
  EXPECT_EQ(outer_hits.load(), 8);
  EXPECT_EQ(inner_hits.load(), 8 * 4);
}

TEST(ThreadPoolTest, EnvOverrideSizesGlobalPool) {
  ASSERT_EQ(setenv("FKD_NUM_THREADS", "3", 1), 0);
  ThreadPool::ResetGlobal(0);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3u);
  ASSERT_EQ(unsetenv("FKD_NUM_THREADS"), 0);
  ThreadPool::ResetGlobal(0);
}

TEST(ThreadPoolTest, InvalidEnvFallsBackToHardwareConcurrency) {
  const size_t fallback =
      std::max(1u, std::thread::hardware_concurrency());
  // None of these are positive integers: garbage, trailing junk (a bare
  // strtol would silently accept "4x" as 4), negatives, zero, and values
  // that overflow long (strtol reports ERANGE but still returns a positive
  // number — the silent-accept hole this parser closes).
  for (const char* bad :
       {"not-a-number", "4x", "-2", "-0", "0", "",
        "99999999999999999999999999"}) {
    ASSERT_EQ(setenv("FKD_NUM_THREADS", bad, 1), 0);
    ThreadPool::ResetGlobal(0);
    EXPECT_EQ(ThreadPool::Global().num_threads(), fallback)
        << "FKD_NUM_THREADS=\"" << bad << "\"";
  }
  // In-range but above the pool's clamp: accepted, clamped, not ignored.
  ASSERT_EQ(setenv("FKD_NUM_THREADS", "10000", 1), 0);
  ThreadPool::ResetGlobal(0);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 256u);
  ASSERT_EQ(unsetenv("FKD_NUM_THREADS"), 0);
  ThreadPool::ResetGlobal(0);
}

TEST(ThreadPoolTest, RegionAndTaskCountersAdvance) {
  ScopedPool scoped(4);
  ThreadPool& pool = ThreadPool::Global();
  const uint64_t regions_before = pool.regions();
  const uint64_t tasks_before = pool.tasks();
  // Big enough that Gemm's flop-based grain yields multiple chunks (the
  // serial fast path below the threshold bypasses pool and instruments).
  Rng rng(3);
  const Tensor a = Tensor::Randn(256, 256, &rng);
  const Tensor b = Tensor::Randn(256, 256, &rng);
  (void)MatMul(a, b);
  EXPECT_GT(pool.regions(), regions_before);
  EXPECT_GT(pool.tasks(), tasks_before);
  // The instrumented wrapper mirrors pool shape/work into the registry.
  EXPECT_EQ(obs::MetricsRegistry::Default()
                .GetGauge("fkd.compute.pool_threads")
                ->Value(),
            4.0);
  EXPECT_GT(obs::MetricsRegistry::Default()
                .GetCounter("fkd.compute.tasks")
                ->Value(),
            0.0);
}

// ---- bitwise parity across pool widths --------------------------------------

/// Runs `compute` under 1-, 2- and 8-thread global pools and expects exactly
/// identical bits (Tensor::operator== compares raw floats).
template <typename Fn>
void ExpectBitwiseAcrossThreads(Fn compute, const char* what) {
  ThreadPool::ResetGlobal(1);
  const Tensor serial = compute();
  for (size_t threads : {2u, 8u}) {
    ThreadPool::ResetGlobal(threads);
    const Tensor parallel = compute();
    EXPECT_TRUE(serial == parallel)
        << what << " not bitwise reproducible at " << threads << " threads";
  }
  ThreadPool::ResetGlobal(0);
}

TEST(ComputeParityTest, GemmAllLayoutsAlphaBeta) {
  Rng rng(41);
  // Odd sizes on purpose: exercise every micro-kernel edge-tile path.
  const Tensor a = Tensor::Randn(45, 33, &rng);
  const Tensor b = Tensor::Randn(33, 29, &rng);
  const Tensor at = a.Transposed();
  const Tensor bt = b.Transposed();
  const Tensor c0 = Tensor::Randn(45, 29, &rng);
  struct Layout {
    bool trans_a;
    bool trans_b;
    const Tensor* a;
    const Tensor* b;
    const char* name;
  };
  const Layout layouts[] = {{false, false, &a, &b, "NN"},
                            {true, false, &at, &b, "TN"},
                            {false, true, &a, &bt, "NT"},
                            {true, true, &at, &bt, "TT"}};
  for (const Layout& layout : layouts) {
    ExpectBitwiseAcrossThreads(
        [&] {
          Tensor c = c0;
          Gemm(layout.trans_a, layout.trans_b, 0.75f, *layout.a, *layout.b,
               0.5f, &c);
          return c;
        },
        layout.name);
  }
}

TEST(ComputeParityTest, LargeGemmParity) {
  Rng rng(43);
  const Tensor a = Tensor::Randn(150, 70, &rng);
  const Tensor b = Tensor::Randn(70, 110, &rng);
  ExpectBitwiseAcrossThreads([&] { return MatMul(a, b); }, "150x70x110");
}

TEST(ComputeParityTest, ElementwiseKernels) {
  Rng rng(47);
  const Tensor a = Tensor::Randn(300, 240, &rng);
  const Tensor b = Tensor::Randn(300, 240, &rng);
  ExpectBitwiseAcrossThreads([&] { return Add(a, b); }, "Add");
  ExpectBitwiseAcrossThreads([&] { return Sub(a, b); }, "Sub");
  ExpectBitwiseAcrossThreads([&] { return Mul(a, b); }, "Mul");
  ExpectBitwiseAcrossThreads([&] { return Sigmoid(a); }, "Sigmoid");
  ExpectBitwiseAcrossThreads([&] { return TanhT(a); }, "Tanh");
  ExpectBitwiseAcrossThreads([&] { return Relu(a); }, "Relu");
  ExpectBitwiseAcrossThreads(
      [&] { return Map(a, [](float x) { return x * 0.5f + 1.0f; }); }, "Map");
  ExpectBitwiseAcrossThreads(
      [&] {
        return ZipMap(a, b, [](float x, float y) { return x * y - x; });
      },
      "ZipMap");
  ExpectBitwiseAcrossThreads(
      [&] {
        Tensor y = a;
        AxpyInPlace(0.25f, b, &y);
        return y;
      },
      "Axpy");
  ExpectBitwiseAcrossThreads(
      [&] {
        Tensor y = a;
        ScaleInPlace(1.5f, &y);
        return y;
      },
      "Scale");
}

TEST(ComputeParityTest, RowAndReductionKernels) {
  Rng rng(53);
  const Tensor m = Tensor::Randn(400, 70, &rng);
  const Tensor row = Tensor::Randn(1, 70, &rng);
  const Tensor x = Tensor::FromVector(std::vector<float>(70, 0.3f));
  ExpectBitwiseAcrossThreads([&] { return SoftmaxRows(m); }, "SoftmaxRows");
  ExpectBitwiseAcrossThreads([&] { return SumRowsTo(m); }, "SumRowsTo");
  ExpectBitwiseAcrossThreads([&] { return AddRowBroadcast(m, row); },
                             "AddRowBroadcast");
  ExpectBitwiseAcrossThreads([&] { return ConcatCols({m, m}); }, "ConcatCols");
  ExpectBitwiseAcrossThreads(
      [&] {
        Tensor y(std::vector<size_t>{400});
        Gemv(false, 1.0f, m, x, 0.0f, &y);
        return y;
      },
      "Gemv");
}

TEST(ComputeParityTest, FusedGemmBiasActMatchesUnfusedBitwise) {
  // The fused epilogue must reproduce the unfused
  // Gemm -> AddRowBroadcast -> activation chain float for float, at every
  // pool width, across micro-kernel edge cases (sub-tile rows, ragged
  // panel widths) and with the packed-B reuse path.
  Rng rng(67);
  const struct {
    size_t m, k, n;
  } sizes[] = {{1, 7, 5}, {3, 16, 16}, {33, 48, 64}, {120, 200, 29}};
  for (const auto& s : sizes) {
    const Tensor a = Tensor::Randn(s.m, s.k, &rng);
    const Tensor w = Tensor::Randn(s.k, s.n, &rng);
    const Tensor bias = Tensor::Randn(1, s.n, &rng);
    const PackedBPanels packed = PackGemmB(w);
    ASSERT_EQ(packed.k(), s.k);
    ASSERT_EQ(packed.n(), s.n);

    struct ActCase {
      EpilogueAct act;
      Tensor (*apply)(const Tensor&);
      const char* name;
    };
    const ActCase cases[] = {
        {EpilogueAct::kNone, nullptr, "none"},
        {EpilogueAct::kSigmoid, &Sigmoid, "sigmoid"},
        {EpilogueAct::kTanh, &TanhT, "tanh"},
        {EpilogueAct::kRelu, &Relu, "relu"},
    };
    for (const ActCase& c : cases) {
      Tensor unfused = AddRowBroadcast(MatMul(a, w), bias);
      if (c.apply != nullptr) unfused = c.apply(unfused);
      for (size_t threads : {1u, 2u, 8u}) {
        ThreadPool::ResetGlobal(threads);
        Tensor fused(s.m, s.n);
        GemmBiasAct(a, packed, &bias, c.act, &fused);
        EXPECT_TRUE(fused == unfused)
            << c.name << " " << s.m << "x" << s.k << "x" << s.n << " at "
            << threads << " threads";
        // The pack-on-the-fly overload must agree with the cached pack.
        Tensor fused_adhoc(s.m, s.n);
        GemmBiasAct(a, w, &bias, c.act, &fused_adhoc);
        EXPECT_TRUE(fused_adhoc == unfused) << c.name << " (ad-hoc pack)";
      }
    }
    // Null bias skips the bias add entirely: plain act(A*B).
    ThreadPool::ResetGlobal(2);
    Tensor no_bias(s.m, s.n);
    GemmBiasAct(a, packed, nullptr, EpilogueAct::kNone, &no_bias);
    EXPECT_TRUE(no_bias == MatMul(a, w)) << "null-bias identity";
  }
  ThreadPool::ResetGlobal(0);
}

TEST(ComputeParityTest, SparseDense) {
  Rng rng(59);
  std::vector<CsrMatrix::Triplet> triplets;
  for (size_t i = 0; i < 3000; ++i) {
    triplets.push_back({static_cast<int32_t>(rng.UniformInt(uint64_t{500})),
                        static_cast<int32_t>(rng.UniformInt(uint64_t{300})),
                        static_cast<float>(rng.Normal())});
  }
  const CsrMatrix sparse = CsrMatrix::FromTriplets(500, 300, triplets);
  const Tensor dense = Tensor::Randn(300, 40, &rng);
  ExpectBitwiseAcrossThreads([&] { return sparse.MatMul(dense); },
                             "CsrMatrix::MatMul");
}

TEST(ComputeParityTest, AutogradGatherAndGroupMean) {
  Rng rng(61);
  const Tensor source = Tensor::Randn(200, 30, &rng);
  std::vector<int32_t> indices;
  for (size_t i = 0; i < 300; ++i) {
    indices.push_back(static_cast<int32_t>(rng.UniformInt(uint64_t{200})));
  }
  std::vector<std::vector<int32_t>> groups(120);
  for (size_t g = 0; g < groups.size(); ++g) {
    const size_t members = rng.UniformInt(uint64_t{6});
    for (size_t j = 0; j < members; ++j) {
      groups[g].push_back(static_cast<int32_t>(rng.UniformInt(uint64_t{200})));
    }
  }
  ExpectBitwiseAcrossThreads(
      [&] {
        return ag::GatherRows(ag::Variable(source), indices).value();
      },
      "GatherRows");
  ExpectBitwiseAcrossThreads(
      [&] {
        return ag::GroupMeanRows(ag::Variable(source), groups).value();
      },
      "GroupMeanRows");
}

TEST(ComputeParityTest, BackwardGradientsBitwise) {
  Rng rng(67);
  const Tensor wv = Tensor::Randn(40, 5, &rng);
  const Tensor xv = Tensor::Randn(90, 40, &rng);
  std::vector<int32_t> labels;
  for (size_t i = 0; i < 90; ++i) {
    labels.push_back(static_cast<int32_t>(rng.UniformInt(uint64_t{5})));
  }
  ExpectBitwiseAcrossThreads(
      [&] {
        ag::Variable w(wv, /*requires_grad=*/true, "w");
        ag::Variable x(xv);
        const ag::Variable loss =
            ag::SoftmaxCrossEntropy(ag::MatMul(x, w), labels);
        ag::Backward(loss);
        return w.grad();
      },
      "MatMul backward");
}

// ---- blocked GEMM correctness -----------------------------------------------

TEST(ComputeCorrectnessTest, GemmMatchesReferenceAllLayouts) {
  ScopedPool scoped(4);
  Rng rng(71);
  const size_t m = 37, k = 23, n = 31;
  const Tensor a = Tensor::Randn(m, k, &rng);
  const Tensor b = Tensor::Randn(k, n, &rng);
  const Tensor at = a.Transposed();
  const Tensor bt = b.Transposed();
  const Tensor c0 = Tensor::Randn(m, n, &rng);
  const float alpha = 1.25f, beta = 0.5f;

  // Double-accumulated reference: C = beta*C0 + alpha*A*B.
  Tensor want = c0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double total = 0.0;
      for (size_t p = 0; p < k; ++p) total += a.At(i, p) * b.At(p, j);
      want.At(i, j) = beta * c0.At(i, j) + alpha * static_cast<float>(total);
    }
  }
  const bool layouts[4][2] = {{false, false}, {true, false}, {false, true},
                              {true, true}};
  for (const auto& layout : layouts) {
    Tensor c = c0;
    Gemm(layout[0], layout[1], alpha, layout[0] ? at : a, layout[1] ? bt : b,
         beta, &c);
    EXPECT_TRUE(c.AllClose(want, 1e-3f))
        << "layout trans_a=" << layout[0] << " trans_b=" << layout[1];
  }
}

TEST(ComputeCorrectnessTest, GemmZeroSizedEdges) {
  ScopedPool scoped(4);
  // k == 0: C must collapse to beta * C.
  const Tensor a(3, 0);
  const Tensor b(0, 4);
  Tensor c = Tensor::Full(3, 4, 2.0f);
  Gemm(false, false, 1.0f, a, b, 0.5f, &c);
  EXPECT_TRUE(c.AllClose(Tensor::Full(3, 4, 1.0f)));
}

// ---- end-to-end training determinism ----------------------------------------

core::FakeDetectorConfig TinyConfig() {
  core::FakeDetectorConfig config;
  config.epochs = 4;
  config.explicit_words = 20;
  config.latent_vocabulary = 60;
  config.hflu.max_sequence_length = 8;
  config.hflu.gru_hidden = 6;
  config.hflu.latent_dim = 6;
  config.hflu.embed_dim = 6;
  config.gdu_hidden = 8;
  return config;
}

struct TrainFixture {
  data::Dataset dataset;
  graph::HeterogeneousGraph graph;
  eval::TrainContext context;
  std::vector<int32_t> train_articles, train_creators, train_subjects;
};

const TrainFixture& Fixture() {
  static TrainFixture* fixture = [] {
    auto dataset =
        data::GeneratePolitiFact(data::GeneratorOptions::Scaled(40, 36));
    FKD_CHECK_OK(dataset.status());
    auto graph = dataset.value().BuildGraph();
    FKD_CHECK_OK(graph.status());
    auto* f = new TrainFixture{std::move(dataset).value(),
                               std::move(graph).value(),
                               {},
                               {},
                               {},
                               {}};
    Rng rng(123);
    auto splits = data::KFoldTriSplits(f->dataset.articles.size(),
                                       f->dataset.creators.size(),
                                       f->dataset.subjects.size(), 4, &rng);
    FKD_CHECK_OK(splits.status());
    f->train_articles = splits.value()[0].articles.train;
    f->train_creators = splits.value()[0].creators.train;
    f->train_subjects = splits.value()[0].subjects.train;
    f->context.dataset = &f->dataset;
    f->context.graph = &f->graph;
    f->context.train_articles = f->train_articles;
    f->context.train_creators = f->train_creators;
    f->context.train_subjects = f->train_subjects;
    f->context.granularity = eval::LabelGranularity::kBinary;
    f->context.seed = 11;
    return f;
  }();
  return *fixture;
}

std::unique_ptr<core::FakeDetector> TrainDetector(
    const core::FakeDetectorConfig& config) {
  auto detector = std::make_unique<core::FakeDetector>(config);
  FKD_CHECK_OK(detector->Train(Fixture().context));
  return detector;
}

void ExpectSameWeights(const core::FakeDetector& a,
                       const core::FakeDetector& b) {
  std::vector<nn::NamedParameter> pa, pb;
  a.model()->CollectParameters("", &pa);
  b.model()->CollectParameters("", &pb);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].name, pb[i].name);
    const Tensor& ta = pa[i].variable.value();
    const Tensor& tb = pb[i].variable.value();
    ASSERT_EQ(ta.shape(), tb.shape()) << pa[i].name;
    EXPECT_EQ(std::memcmp(ta.data(), tb.data(), ta.size() * sizeof(float)), 0)
        << "parameter " << pa[i].name << " drifted";
  }
  const Tensor& sa = a.frozen_creator_states();
  const Tensor& sb = b.frozen_creator_states();
  ASSERT_EQ(sa.shape(), sb.shape());
  EXPECT_EQ(std::memcmp(sa.data(), sb.data(), sa.size() * sizeof(float)), 0);
}

TEST(ComputeDeterminismTest, TrainingBitwiseAcrossThreadCounts) {
  ThreadPool::ResetGlobal(1);
  auto serial = TrainDetector(TinyConfig());
  ThreadPool::ResetGlobal(4);
  auto parallel = TrainDetector(TinyConfig());
  ThreadPool::ResetGlobal(0);
  ExpectSameWeights(*serial, *parallel);
}

TEST(ComputeDeterminismTest, CheckpointResumeUnderFkdNumThreads) {
  // Reference: uninterrupted single-threaded run.
  ThreadPool::ResetGlobal(1);
  auto reference = TrainDetector(TinyConfig());

  // Interrupted + resumed run under FKD_NUM_THREADS=4 (env-sized pool, the
  // path a production restart takes) must land on the same bits.
  ASSERT_EQ(setenv("FKD_NUM_THREADS", "4", 1), 0);
  ThreadPool::ResetGlobal(0);
  ASSERT_EQ(ThreadPool::Global().num_threads(), 4u);
  const std::string ckpt_dir =
      (fs::temp_directory_path() /
       ("fkd_compute_resume_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(ckpt_dir);
  core::FakeDetectorConfig config = TinyConfig();
  config.checkpoint_dir = ckpt_dir;
  core::FakeDetectorConfig first_leg = config;
  first_leg.epochs = 2;
  auto interrupted = TrainDetector(first_leg);
  ASSERT_TRUE(fs::exists(ckpt_dir + "/ckpt-2"));
  auto resumed = TrainDetector(config);

  ASSERT_EQ(unsetenv("FKD_NUM_THREADS"), 0);
  ThreadPool::ResetGlobal(0);
  ExpectSameWeights(*reference, *resumed);
  fs::remove_all(ckpt_dir);
}

// ---- pool/engine interaction (raced under TSan) -----------------------------

TEST(ComputeConcurrencyTest, TrainWhileServe) {
  ScopedPool scoped(4);
  auto trained = TrainDetector(TinyConfig());
  const std::string dir =
      (fs::temp_directory_path() /
       ("fkd_compute_serve_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  ASSERT_TRUE(serve::ExportSnapshot(*trained, dir).ok());
  auto loaded = serve::LoadSnapshot(dir);
  ASSERT_TRUE(loaded.ok());
  auto snapshot =
      std::make_shared<const serve::Snapshot>(std::move(loaded).value());

  serve::EngineOptions options;
  options.num_workers = 2;
  options.max_batch_size = 8;
  options.max_batch_delay_us = 200;
  serve::InferenceEngine engine(snapshot, options);
  ASSERT_TRUE(engine.Start().ok());

  // Serving workers and this thread's trainer now submit kernel chunks to
  // the same global pool concurrently.
  std::vector<serve::ClassificationFuture> futures;
  for (size_t i = 0; i < 48; ++i) {
    serve::ArticleRequest request;
    request.text = Fixture().dataset.articles[i % 40].text;
    auto submitted = engine.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  auto concurrent = TrainDetector(TinyConfig());
  size_t served = 0;
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().class_id, 0);
    ++served;
  }
  engine.Stop();
  EXPECT_EQ(served, futures.size());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace fkd
