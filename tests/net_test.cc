// Network front-end suites. NetFrame*: FKDN/1 codec + decoder hardening
// (truncated frames, oversized length prefixes, corrupt CRCs, poisoning).
// NetServer*: the epoll server over real sockets — classify round trips,
// control frames, admission-control shedding, slow-loris and idle sweeps,
// mid-request disconnects, protocol-error isolation. NetShutdown*: the
// graceful-drain accounting invariant (no accepted request silently
// dropped). LoadGen*: the closed/open-loop load generator driving a live
// server, including the hot-swap-under-load zero-error gate. Net*/LoadGen*
// also run under TSan and ASan (tools/{tsan,asan}_smoke.sh).

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "net/client.h"
#include "core/fake_detector.h"
#include "data/generator.h"
#include "data/split.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/model_store.h"
#include "serve/router.h"

namespace fkd {
namespace net {
namespace {

// ---- shared trained fixture -------------------------------------------------

struct TrainedFixture {
  data::Dataset dataset;
  graph::HeterogeneousGraph graph;
  core::FakeDetector detector;
  std::string snapshot_dir;
};

core::FakeDetectorConfig TinyConfig() {
  core::FakeDetectorConfig config;
  config.epochs = 5;
  config.explicit_words = 40;
  config.latent_vocabulary = 120;
  config.hflu.max_sequence_length = 10;
  config.hflu.gru_hidden = 10;
  config.hflu.latent_dim = 8;
  config.hflu.embed_dim = 8;
  config.gdu_hidden = 12;
  config.verbose = false;
  return config;
}

const TrainedFixture& SharedFixture() {
  static TrainedFixture* fixture = [] {
    auto dataset =
        data::GeneratePolitiFact(data::GeneratorOptions::Scaled(55, 91));
    FKD_CHECK_OK(dataset.status());
    auto graph = dataset.value().BuildGraph();
    FKD_CHECK_OK(graph.status());
    auto* f = new TrainedFixture{std::move(dataset).value(),
                                 std::move(graph).value(),
                                 core::FakeDetector(TinyConfig()),
                                 {}};
    Rng rng(17);
    auto splits = data::KFoldTriSplits(f->dataset.articles.size(),
                                       f->dataset.creators.size(),
                                       f->dataset.subjects.size(), 5, &rng);
    FKD_CHECK_OK(splits.status());
    eval::TrainContext context;
    context.dataset = &f->dataset;
    context.graph = &f->graph;
    context.train_articles = splits.value()[0].articles.train;
    context.train_creators = splits.value()[0].creators.train;
    context.train_subjects = splits.value()[0].subjects.train;
    context.granularity = eval::LabelGranularity::kBinary;
    context.seed = 7;
    FKD_CHECK_OK(f->detector.Train(context));
    f->snapshot_dir = (std::filesystem::temp_directory_path() /
                       ("fkd_net_snapshot_" + std::to_string(::getpid())))
                          .string();
    std::filesystem::remove_all(f->snapshot_dir);
    FKD_CHECK_OK(serve::ExportSnapshot(f->detector, f->snapshot_dir));
    return f;
  }();
  return *fixture;
}

std::string SampleText(size_t i) {
  const auto& fixture = SharedFixture();
  return fixture.dataset.articles[i % fixture.dataset.articles.size()].text;
}

// ---- harness: router + server over a real socket ----------------------------

serve::RouterOptions FastRouterOptions() {
  serve::RouterOptions options;
  options.num_replicas = 1;
  options.engine.num_workers = 1;
  options.engine.max_batch_size = 8;
  options.engine.max_batch_delay_us = 200;
  options.engine.max_queue_depth = 4096;
  options.canary_permille = 0;
  return options;
}

struct Harness {
  std::unique_ptr<serve::VersionedModelStore> store;
  std::unique_ptr<serve::Router> router;
  std::unique_ptr<Server> server;
  std::string snapshot_dir;

  ~Harness() {
    if (server != nullptr) server->Shutdown();
    if (router != nullptr) router->Stop();
  }
};

std::unique_ptr<Harness> StartHarness(
    ServerOptions server_options = {},
    serve::RouterOptions router_options = FastRouterOptions()) {
  auto harness = std::make_unique<Harness>();
  harness->snapshot_dir = SharedFixture().snapshot_dir;
  harness->store = std::make_unique<serve::VersionedModelStore>();
  auto model = harness->store->Load(harness->snapshot_dir);
  FKD_CHECK_OK(model.status());
  harness->router = std::make_unique<serve::Router>(router_options);
  FKD_CHECK_OK(harness->router->Start(model.value()));

  serve::Router* router = harness->router.get();
  serve::VersionedModelStore* store = harness->store.get();
  const std::string dir = harness->snapshot_dir;
  if (!server_options.swap_handler) {
    server_options.swap_handler = [router, store, dir]() -> Result<uint64_t> {
      auto next = store->Load(dir);
      FKD_RETURN_NOT_OK(next.status());
      FKD_RETURN_NOT_OK(router->Publish(next.value()));
      return next.value()->version;
    };
  }
  if (!server_options.canary_handler) {
    server_options.canary_handler =
        [router, store, dir](uint32_t permille) -> Result<uint64_t> {
      if (permille == 0) {
        // Idempotent: "canary share 0" with no canary running is a no-op.
        const Status stopped = router->StopCanary();
        if (!stopped.ok() &&
            stopped.code() != StatusCode::kFailedPrecondition) {
          return stopped;
        }
        return static_cast<uint64_t>(0);
      }
      auto next = store->Load(dir);
      FKD_RETURN_NOT_OK(next.status());
      FKD_RETURN_NOT_OK(
          router->StartCanary(next.value(), static_cast<int>(permille)));
      return next.value()->version;
    };
  }
  server_options.port = 0;  // always ephemeral in tests
  harness->server = std::make_unique<Server>(router, server_options);
  FKD_CHECK_OK(harness->server->Start());
  return harness;
}

/// Minimal blocking test client with its own decoder.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    FKD_CHECK_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    FKD_CHECK_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void SendRaw(const std::string& bytes) {
    size_t offset = 0;
    while (offset < bytes.size()) {
      const ssize_t n =
          ::write(fd_, bytes.data() + offset, bytes.size() - offset);
      ASSERT_GT(n, 0) << "client write failed: " << std::strerror(errno);
      offset += static_cast<size_t>(n);
    }
  }

  void Send(MessageType type, uint64_t request_id,
            const std::string& payload) {
    SendRaw(EncodeFrame(type, request_id, payload));
  }

  /// Reads until one frame decodes; fails the test on timeout/EOF.
  Frame ReadFrame(int timeout_ms = 10000) {
    Frame frame;
    bool ready = false;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const Status status = decoder_.Next(&frame, &ready);
      FKD_CHECK_OK(status);
      if (ready) return frame;
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      FKD_CHECK_GT(remaining.count(), 0) << "timed out waiting for a frame";
      pollfd pfd{fd_, POLLIN, 0};
      const int rv = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      FKD_CHECK_GT(rv, 0) << "poll timeout/error waiting for a frame";
      char chunk[16 * 1024];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      FKD_CHECK_GT(n, 0) << "connection closed while expecting a frame";
      decoder_.Append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads frames until the server closes; returns them.
  std::vector<Frame> ReadUntilClose(int timeout_ms = 10000) {
    std::vector<Frame> frames;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      Frame frame;
      bool ready = false;
      if (decoder_.Next(&frame, &ready).ok() && ready) {
        frames.push_back(std::move(frame));
        continue;
      }
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        ADD_FAILURE() << "server never closed the connection";
        return frames;
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(remaining.count())) <= 0) continue;
      char chunk[16 * 1024];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return frames;  // closed
      decoder_.Append(chunk, static_cast<size_t>(n));
    }
  }

  struct Classification {
    ClassifyResponseMsg msg;
  };

  Result<Classification> Classify(const std::string& text,
                                  uint64_t request_id) {
    ClassifyRequestMsg msg;
    msg.text = text;
    Send(MessageType::kClassifyRequest, request_id,
         EncodeClassifyRequest(msg));
    Frame frame = ReadFrame();
    FKD_CHECK_EQ(static_cast<int>(frame.type),
                 static_cast<int>(MessageType::kClassifyResponse));
    FKD_CHECK_EQ(frame.request_id, request_id);
    auto decoded = DecodeClassifyResponse(frame.payload);
    FKD_CHECK_OK(decoded.status());
    if (!decoded.value().ok) {
      return Status(static_cast<StatusCode>(decoded.value().status_code),
                    decoded.value().message);
    }
    Classification out;
    out.msg = decoded.value();
    return out;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

// ---- helpers for crafting corrupt frames ------------------------------------

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Hand-builds a frame so tests can forge arbitrary header fields; the
/// header CRC is recomputed unless `break_header_crc`.
std::string ForgeFrame(uint32_t magic, uint8_t version, uint8_t type,
                       uint16_t flags, uint32_t payload_len,
                       const std::string& payload,
                       bool break_header_crc = false,
                       bool break_payload_crc = false) {
  std::string out;
  PutU32(&out, magic);
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(type));
  PutU16(&out, flags);
  PutU64(&out, 77);
  PutU32(&out, payload_len);
  uint32_t payload_crc = Crc32c(payload.data(), payload.size());
  if (break_payload_crc) payload_crc ^= 0xdeadbeef;
  PutU32(&out, payload_crc);
  uint32_t header_crc = Crc32c(out.data(), out.size());
  if (break_header_crc) header_crc ^= 1;
  PutU32(&out, header_crc);
  out += payload;
  return out;
}

// ==== NetFrameTest: codec + decoder hardening ================================

TEST(NetFrameTest, FrameRoundTripsThroughDecoder) {
  const std::string payload = "hello fkdn";
  const std::string bytes =
      EncodeFrame(MessageType::kClassifyRequest, 42, payload);
  EXPECT_EQ(bytes.size(), kHeaderSize + payload.size());

  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool ready = false;
  ASSERT_TRUE(decoder.Next(&frame, &ready).ok());
  ASSERT_TRUE(ready);
  EXPECT_EQ(frame.type, MessageType::kClassifyRequest);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(NetFrameTest, DecoderReassemblesByteAtATime) {
  std::string stream;
  for (uint64_t i = 0; i < 5; ++i) {
    stream += EncodeFrame(MessageType::kPing, i, "payload-" + std::to_string(i));
  }
  FrameDecoder decoder;
  size_t decoded = 0;
  for (char byte : stream) {
    decoder.Append(&byte, 1);
    Frame frame;
    bool ready = true;
    while (ready) {
      ASSERT_TRUE(decoder.Next(&frame, &ready).ok());
      if (ready) {
        EXPECT_EQ(frame.request_id, decoded);
        ++decoded;
      }
    }
  }
  EXPECT_EQ(decoded, 5u);
}

TEST(NetFrameTest, TruncatedFrameWaitsForMoreBytes) {
  const std::string bytes = EncodeFrame(MessageType::kPing, 1, "abcdef");
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size() - 3);
  Frame frame;
  bool ready = true;
  ASSERT_TRUE(decoder.Next(&frame, &ready).ok());
  EXPECT_FALSE(ready);
  EXPECT_FALSE(decoder.poisoned());
  decoder.Append(bytes.data() + bytes.size() - 3, 3);
  ASSERT_TRUE(decoder.Next(&frame, &ready).ok());
  EXPECT_TRUE(ready);
  EXPECT_EQ(frame.payload, "abcdef");
}

TEST(NetFrameTest, BadMagicPoisonsTheDecoder) {
  const std::string bytes = ForgeFrame(0x12345678u, kProtocolVersion, 1, 0, 0, "");
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool ready = false;
  const Status status = decoder.Next(&frame, &ready);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(decoder.poisoned());
  // Poisoned decoders stay poisoned, even fed a pristine frame.
  const std::string good = EncodeFrame(MessageType::kPing, 1, "");
  decoder.Append(good.data(), good.size());
  EXPECT_FALSE(decoder.Next(&frame, &ready).ok());
}

TEST(NetFrameTest, HeaderCrcMismatchDetectedBeforeLengthIsTrusted) {
  // An absurd payload_len rides behind a broken header CRC: the decoder
  // must fail on the CRC, never interpret the length.
  const std::string bytes =
      ForgeFrame(kMagic, kProtocolVersion, 1, 0, 0xffffffffu, "",
                 /*break_header_crc=*/true);
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool ready = false;
  const Status status = decoder.Next(&frame, &ready);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("header CRC"), std::string::npos)
      << status.message();
}

TEST(NetFrameTest, OversizedLengthPrefixRejected) {
  // Valid CRCs, hostile length: must error out, not allocate 4 GiB.
  const std::string bytes =
      ForgeFrame(kMagic, kProtocolVersion, 1, 0, 0xfffffff0u, "");
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool ready = false;
  const Status status = decoder.Next(&frame, &ready);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("exceeds"), std::string::npos)
      << status.message();
}

TEST(NetFrameTest, PayloadCrcMismatchRejected) {
  const std::string payload = "payload bytes";
  const std::string bytes = ForgeFrame(
      kMagic, kProtocolVersion, 1, 0, static_cast<uint32_t>(payload.size()),
      payload, /*break_header_crc=*/false, /*break_payload_crc=*/true);
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool ready = false;
  const Status status = decoder.Next(&frame, &ready);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("payload CRC"), std::string::npos)
      << status.message();
}

TEST(NetFrameTest, WrongVersionAndReservedFlagsRejected) {
  {
    const std::string bytes = ForgeFrame(kMagic, 9, 1, 0, 0, "");
    FrameDecoder decoder;
    decoder.Append(bytes.data(), bytes.size());
    Frame frame;
    bool ready = false;
    EXPECT_FALSE(decoder.Next(&frame, &ready).ok());
  }
  {
    const std::string bytes = ForgeFrame(kMagic, kProtocolVersion, 1, 7, 0, "");
    FrameDecoder decoder;
    decoder.Append(bytes.data(), bytes.size());
    Frame frame;
    bool ready = false;
    EXPECT_FALSE(decoder.Next(&frame, &ready).ok());
  }
}

TEST(NetFrameTest, DecoderHonoursCustomPayloadCeiling) {
  FrameDecoder decoder(/*max_payload=*/16);
  const std::string bytes =
      EncodeFrame(MessageType::kPing, 1, std::string(17, 'x'));
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  bool ready = false;
  EXPECT_FALSE(decoder.Next(&frame, &ready).ok());
}

TEST(NetFrameTest, ClassifyRequestCodecRoundTrips) {
  ClassifyRequestMsg msg;
  msg.text = "suspicious claim text";
  msg.creator_id = 12;
  msg.subject_ids = {3, 1, 4};
  msg.deadline_us = 250000;
  auto decoded = DecodeClassifyRequest(EncodeClassifyRequest(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().text, msg.text);
  EXPECT_EQ(decoded.value().creator_id, 12);
  EXPECT_EQ(decoded.value().subject_ids, msg.subject_ids);
  EXPECT_EQ(decoded.value().deadline_us, 250000);
}

TEST(NetFrameTest, ClassifyResponseCodecRoundTripsBothHalves) {
  {
    ClassifyResponseMsg msg;
    msg.ok = true;
    msg.class_id = 1;
    msg.class_name = "fake";
    msg.probabilities = {0.25f, 0.75f};
    msg.model_version = 7;
    msg.batch_size = 4;
    msg.from_cache = true;
    msg.queue_us = 10.5;
    msg.total_us = 99.25;
    auto decoded = DecodeClassifyResponse(EncodeClassifyResponse(msg));
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().ok);
    EXPECT_EQ(decoded.value().class_name, "fake");
    EXPECT_EQ(decoded.value().probabilities, msg.probabilities);
    EXPECT_EQ(decoded.value().model_version, 7u);
    EXPECT_TRUE(decoded.value().from_cache);
    EXPECT_DOUBLE_EQ(decoded.value().total_us, 99.25);
  }
  {
    ClassifyResponseMsg msg;
    msg.ok = false;
    msg.status_code = static_cast<uint8_t>(StatusCode::kUnavailable);
    msg.message = "shed";
    auto decoded = DecodeClassifyResponse(EncodeClassifyResponse(msg));
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(decoded.value().ok);
    EXPECT_EQ(decoded.value().status_code,
              static_cast<uint8_t>(StatusCode::kUnavailable));
    EXPECT_EQ(decoded.value().message, "shed");
  }
}

TEST(NetFrameTest, ControlAndCanaryCodecsRoundTrip) {
  ControlResponseMsg msg;
  msg.ok = true;
  msg.value = 31337;
  auto decoded = DecodeControlResponse(EncodeControlResponse(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().ok);
  EXPECT_EQ(decoded.value().value, 31337u);

  auto permille = DecodeCanaryRequest(EncodeCanaryRequest(250));
  ASSERT_TRUE(permille.ok());
  EXPECT_EQ(permille.value(), 250u);
}

TEST(NetFrameTest, TruncatedPayloadsFailCleanly) {
  ClassifyRequestMsg msg;
  msg.text = "some text";
  msg.subject_ids = {1, 2};
  const std::string payload = EncodeClassifyRequest(msg);
  for (size_t cut = 0; cut < payload.size(); cut += 3) {
    auto decoded = DecodeClassifyRequest(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

// ==== NetServerTest: live socket behaviour ===================================

TEST(NetServerTest, ClassifyRoundTripServesRealModel) {
  auto harness = StartHarness();
  TestClient client(harness->server->bound_port());
  auto result = client.Classify(SampleText(0), 1001);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ClassifyResponseMsg& msg = result.value().msg;
  EXPECT_GE(msg.class_id, 0);
  EXPECT_FALSE(msg.class_name.empty());
  EXPECT_EQ(msg.probabilities.size(), 2u);
  EXPECT_EQ(msg.model_version, 1u);
  EXPECT_GT(msg.total_us, 0.0);

  const ServerStats stats = harness->server->Stats();
  EXPECT_EQ(stats.classify_frames, 1u);
  EXPECT_EQ(stats.responses_ok, 1u);
}

TEST(NetServerTest, PingEchoesPayload) {
  auto harness = StartHarness();
  TestClient client(harness->server->bound_port());
  client.Send(MessageType::kPing, 5, "echo me");
  Frame frame = client.ReadFrame();
  EXPECT_EQ(frame.type, MessageType::kPong);
  EXPECT_EQ(frame.request_id, 5u);
  EXPECT_EQ(frame.payload, "echo me");
}

TEST(NetServerTest, RepeatRequestServedFromScoreCache) {
  auto harness = StartHarness();
  TestClient client(harness->server->bound_port());
  auto first = client.Classify(SampleText(1), 1);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().msg.from_cache);
  auto second = client.Classify(SampleText(1), 2);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().msg.from_cache);
  EXPECT_EQ(second.value().msg.class_id, first.value().msg.class_id);
}

TEST(NetServerTest, MalformedPayloadAnswersErrorWithoutKillingStream) {
  auto harness = StartHarness();
  TestClient client(harness->server->bound_port());
  // The frame is wire-clean (CRCs pass) but the body is garbage: the
  // stream stays in sync, so the server answers instead of disconnecting.
  client.Send(MessageType::kClassifyRequest, 9, "not a classify payload");
  Frame frame = client.ReadFrame();
  EXPECT_EQ(frame.type, MessageType::kClassifyResponse);
  auto decoded = DecodeClassifyResponse(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().ok);
  // Same connection still serves a good request.
  auto result = client.Classify(SampleText(2), 10);
  EXPECT_TRUE(result.ok());
}

TEST(NetServerTest, GarbageBytesGetErrorFrameThenClose) {
  auto harness = StartHarness();
  TestClient client(harness->server->bound_port());
  client.SendRaw("this is not an FKDN stream at all, not even close");
  std::vector<Frame> frames = client.ReadUntilClose();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kError);
  const ServerStats stats = harness->server->Stats();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.classify_frames, 0u);

  // The neighbour connection is unaffected.
  TestClient neighbour(harness->server->bound_port());
  EXPECT_TRUE(neighbour.Classify(SampleText(3), 11).ok());
}

TEST(NetServerTest, UnexpectedFrameTypeClosesConnection) {
  auto harness = StartHarness();
  TestClient client(harness->server->bound_port());
  ClassifyResponseMsg bogus;
  bogus.ok = false;
  client.Send(MessageType::kClassifyResponse, 3,
              EncodeClassifyResponse(bogus));
  std::vector<Frame> frames = client.ReadUntilClose();
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(harness->server->Stats().protocol_errors, 1u);
}

TEST(NetServerTest, CorruptHeaderOnTheWireIsCaught) {
  auto harness = StartHarness();
  TestClient client(harness->server->bound_port());
  std::string bytes = EncodeFrame(MessageType::kPing, 1, "payload");
  bytes[17] ^= 0x40;  // flip a payload_len bit; header CRC now mismatches
  client.SendRaw(bytes);
  std::vector<Frame> frames = client.ReadUntilClose();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kError);
  EXPECT_EQ(harness->server->Stats().protocol_errors, 1u);
}

TEST(NetServerTest, AdmissionControlShedsWhenEngineQueueSaturated) {
  ServerOptions server_options;
  server_options.shed_queue_depth = 4;
  serve::RouterOptions router_options = FastRouterOptions();
  // One slow-forming batch pipeline: the worker waits 200 ms for
  // stragglers, so pipelined unique requests pile up in the queue.
  router_options.engine.max_batch_size = 4;
  router_options.engine.max_batch_delay_us = 200000;
  router_options.cache_capacity = 0;  // every request must hit the engine
  auto harness = StartHarness(server_options, router_options);

  TestClient client(harness->server->bound_port());
  constexpr size_t kRequests = 40;
  std::string burst;
  for (size_t i = 0; i < kRequests; ++i) {
    ClassifyRequestMsg msg;
    msg.text = SampleText(i) + " #" + std::to_string(i);
    burst += EncodeFrame(MessageType::kClassifyRequest, 100 + i,
                         EncodeClassifyRequest(msg));
  }
  client.SendRaw(burst);

  size_t ok = 0;
  size_t shed = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    Frame frame = client.ReadFrame(30000);
    ASSERT_EQ(frame.type, MessageType::kClassifyResponse);
    auto decoded = DecodeClassifyResponse(frame.payload);
    ASSERT_TRUE(decoded.ok());
    if (decoded.value().ok) {
      ++ok;
    } else {
      EXPECT_EQ(decoded.value().status_code,
                static_cast<uint8_t>(StatusCode::kUnavailable));
      ++shed;
    }
  }
  // Every request answered, some explicitly shed — never a hang or drop.
  EXPECT_EQ(ok + shed, kRequests);
  EXPECT_GT(shed, 0u) << "expected queue-depth shedding under the burst";
  EXPECT_GT(ok, 0u);
  const ServerStats stats = harness->server->Stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.classify_frames, kRequests);
}

TEST(NetServerTest, SlowLorisConnectionIsClosed) {
  ServerOptions server_options;
  server_options.idle_timeout_ms = 300;
  auto harness = StartHarness(server_options);
  TestClient client(harness->server->bound_port());

  // Dribble a valid frame one byte every 100 ms: activity never stops, but
  // the frame never completes — the loris sweep must kill it anyway.
  const std::string bytes = EncodeFrame(MessageType::kPing, 1, "loris");
  bool closed = false;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < bytes.size() && !closed; ++i) {
    if (::write(client.fd(), &bytes[i], 1) < 0) {
      closed = true;
      break;
    }
    pollfd pfd{client.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 100) > 0) {
      char sink[64];
      if (::read(client.fd(), sink, sizeof(sink)) == 0) closed = true;
    }
    if (std::chrono::steady_clock::now() - start >
        std::chrono::seconds(10)) {
      break;
    }
  }
  if (!closed) {
    // Out of bytes before the sweep fired; wait for the close.
    std::vector<Frame> frames = client.ReadUntilClose();
    EXPECT_TRUE(frames.empty());
  }
  // The sweep, not the peer, closed it.
  for (int i = 0; i < 100; ++i) {
    if (harness->server->Stats().idle_closed > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(harness->server->Stats().idle_closed, 1u);
}

TEST(NetServerTest, IdleConnectionIsClosed) {
  ServerOptions server_options;
  server_options.idle_timeout_ms = 200;
  auto harness = StartHarness(server_options);
  TestClient client(harness->server->bound_port());
  std::vector<Frame> frames = client.ReadUntilClose(5000);
  EXPECT_TRUE(frames.empty());
  // The client can see the EOF a beat before the sweep bumps the counter.
  for (int i = 0; i < 100; ++i) {
    if (harness->server->Stats().idle_closed > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(harness->server->Stats().idle_closed, 1u);
}

TEST(NetServerTest, MidRequestDisconnectNeverLeaksTheSlot) {
  serve::RouterOptions router_options = FastRouterOptions();
  router_options.engine.max_batch_delay_us = 100000;  // keep it in flight
  router_options.cache_capacity = 0;
  auto harness = StartHarness({}, router_options);
  {
    TestClient client(harness->server->bound_port());
    ClassifyRequestMsg msg;
    msg.text = SampleText(4) + " #disconnect";
    client.Send(MessageType::kClassifyRequest, 55,
                EncodeClassifyRequest(msg));
    // Give the loop a moment to decode + submit, then vanish.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }  // client destructor closes the socket with the request in flight
  ServerStats stats;
  for (int i = 0; i < 200; ++i) {
    stats = harness->server->Stats();
    if (stats.responses_dropped + stats.responses_error +
            stats.responses_ok ==
        stats.classify_frames) {
      if (stats.inflight == 0 && stats.classify_frames == 1) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(stats.classify_frames, 1u);
  EXPECT_EQ(stats.responses_dropped, 1u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(NetServerTest, ConnectionCapRefusesExtraClients) {
  ServerOptions server_options;
  server_options.max_connections = 1;
  auto harness = StartHarness(server_options);
  TestClient keeper(harness->server->bound_port());
  ASSERT_TRUE(keeper.Classify(SampleText(5), 1).ok());
  TestClient refused(harness->server->bound_port());
  std::vector<Frame> frames = refused.ReadUntilClose(5000);
  EXPECT_TRUE(frames.empty());
  EXPECT_GE(harness->server->Stats().over_capacity, 1u);
  // The admitted connection still works.
  EXPECT_TRUE(keeper.Classify(SampleText(6), 2).ok());
}

TEST(NetServerTest, SwapAndCanaryControlFramesDriveTheRouter) {
  auto harness = StartHarness();
  const int port = harness->server->bound_port();
  TestClient client(port);
  auto before = client.Classify(SampleText(7), 1);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().msg.model_version, 1u);

  auto swapped = RequestSwap("127.0.0.1", port);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value(), 2u);
  EXPECT_EQ(harness->router->active_version(), 2u);
  // Uncached request after the swap carries the new version.
  ClassifyRequestMsg msg;
  msg.text = SampleText(7) + " #post-swap";
  client.Send(MessageType::kClassifyRequest, 2, EncodeClassifyRequest(msg));
  Frame frame = client.ReadFrame();
  auto decoded = DecodeClassifyResponse(frame.payload);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded.value().ok);
  EXPECT_EQ(decoded.value().model_version, 2u);

  // Stopping a canary that never started is an idempotent no-op (the
  // loadgen's canary sweep starts from permille 0).
  auto noop = RequestCanary("127.0.0.1", port, 0);
  ASSERT_TRUE(noop.ok()) << noop.status().ToString();

  auto canary = RequestCanary("127.0.0.1", port, 250);
  ASSERT_TRUE(canary.ok()) << canary.status().ToString();
  EXPECT_EQ(canary.value(), 3u);
  auto stopped = RequestCanary("127.0.0.1", port, 0);
  ASSERT_TRUE(stopped.ok());
  EXPECT_EQ(harness->server->Stats().swaps, 1u);
}

TEST(NetServerTest, QueueDepthSignalIsZeroAtRest) {
  auto harness = StartHarness();
  TestClient client(harness->server->bound_port());
  ASSERT_TRUE(client.Classify(SampleText(8), 1).ok());
  EXPECT_EQ(harness->router->QueueDepth(), 0u);
}

// ==== NetShutdownTest: graceful drain ========================================

TEST(NetShutdownTest, DrainFlushesEveryAcceptedRequest) {
  serve::RouterOptions router_options = FastRouterOptions();
  router_options.cache_capacity = 0;
  auto harness = StartHarness({}, router_options);
  TestClient client(harness->server->bound_port());

  constexpr size_t kRequests = 24;
  std::string burst;
  for (size_t i = 0; i < kRequests; ++i) {
    ClassifyRequestMsg msg;
    msg.text = SampleText(i) + " #drain-" + std::to_string(i);
    burst += EncodeFrame(MessageType::kClassifyRequest, i + 1,
                         EncodeClassifyRequest(msg));
  }
  client.SendRaw(burst);
  // Let the loop accept some in-flight work, then shut down mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread shutdown([&] { harness->server->Shutdown(); });

  // Every frame the server accepted must produce a response before the
  // close: some classified, some shed with Unavailable — none dropped.
  std::vector<Frame> frames = client.ReadUntilClose(30000);
  shutdown.join();

  const ServerStats stats = harness->server->Stats();
  EXPECT_EQ(stats.classify_frames,
            stats.responses_ok + stats.responses_error +
                stats.responses_dropped)
      << "accounting invariant violated";
  EXPECT_EQ(stats.responses_dropped, 0u)
      << "client stayed connected; nothing may be dropped";
  EXPECT_EQ(frames.size(), stats.classify_frames)
      << "every accepted classify got a response frame before the close";
  for (const Frame& frame : frames) {
    EXPECT_EQ(frame.type, MessageType::kClassifyResponse);
  }
}

TEST(NetShutdownTest, ShutdownIsIdempotentAndRefusesNewWork) {
  auto harness = StartHarness();
  const int port = harness->server->bound_port();
  harness->server->Shutdown();
  harness->server->Shutdown();  // second call is a no-op
  // The listen socket is gone: connects are refused. (One loophole: with
  // the listener closed the port is free, so the kernel may pick it as the
  // client's own ephemeral source port and complete a TCP self-connection.
  // That still proves no server listens — a real listener would have given
  // the client a different source port.)
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    sockaddr_in local{};
    socklen_t len = sizeof(local);
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&local), &len), 0);
    EXPECT_EQ(local.sin_port, addr.sin_port)
        << "a non-self connect succeeded: something still listens";
  }
  ::close(fd);
}

// ==== LoadGenTest: the harness measuring the harness =========================

std::vector<ClassifyRequestMsg> SmallCorpus(size_t n) {
  std::vector<ClassifyRequestMsg> corpus;
  for (size_t i = 0; i < n; ++i) {
    ClassifyRequestMsg msg;
    msg.text = SampleText(i);
    corpus.push_back(std::move(msg));
  }
  return corpus;
}

TEST(LoadGenTest, ClosedLoopRoundTripAgainstLiveServer) {
  auto harness = StartHarness();
  LoadGenOptions options;
  options.port = harness->server->bound_port();
  options.connections = 2;
  options.window = 2;
  options.duration_ms = 1000;
  options.warmup_ms = 200;
  options.corpus = SmallCorpus(10);
  auto report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().mode, "closed");
  EXPECT_GT(report.value().ok, 0u);
  EXPECT_EQ(report.value().errors, 0u);
  EXPECT_EQ(report.value().connect_failures, 0u);
  EXPECT_EQ(report.value().io_errors, 0u);
  EXPECT_GT(report.value().achieved_qps, 0.0);
  EXPECT_GT(report.value().p50_us, 0.0);
  EXPECT_GE(report.value().p99_us, report.value().p50_us);
  EXPECT_GT(report.value().from_cache, 0u) << "10 texts must repeat";
  const std::string json = report.value().ToJson();
  EXPECT_NE(json.find("\"achieved_qps\""), std::string::npos);
  EXPECT_NE(json.find("\"p999_us\""), std::string::npos);
}

TEST(LoadGenTest, OpenLoopHoldsItsSchedule) {
  auto harness = StartHarness();
  LoadGenOptions options;
  options.port = harness->server->bound_port();
  options.connections = 2;
  options.open_loop_qps = 200.0;
  options.duration_ms = 1000;
  options.warmup_ms = 200;
  options.corpus = SmallCorpus(10);
  auto report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().mode, "open");
  // The schedule sends ~200 requests over the measured second; allow wide
  // slack for CI jitter but catch a broken pacer (0 or unbounded).
  EXPECT_GT(report.value().sent, 100u);
  EXPECT_LT(report.value().sent, 400u);
  EXPECT_EQ(report.value().errors, 0u);
}

TEST(LoadGenTest, UniqueRequestsDefeatTheScoreCache) {
  auto harness = StartHarness();
  LoadGenOptions options;
  options.port = harness->server->bound_port();
  options.connections = 1;
  options.window = 2;
  options.duration_ms = 500;
  options.warmup_ms = 100;
  options.corpus = SmallCorpus(4);
  options.unique_requests = true;
  auto report = RunLoadGen(options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().ok, 0u);
  EXPECT_EQ(report.value().from_cache, 0u);
}

TEST(LoadGenTest, DeadServerReportsConnectFailure) {
  LoadGenOptions options;
  options.port = 1;  // nothing listens on port 1
  options.connections = 2;
  options.duration_ms = 100;
  options.warmup_ms = 0;
  options.corpus = SmallCorpus(1);
  auto report = RunLoadGen(options);
  EXPECT_FALSE(report.ok());
}

TEST(LoadGenTest, HotSwapUnderLoadCompletesWithZeroFailures) {
  serve::RouterOptions router_options = FastRouterOptions();
  router_options.cache_capacity = 0;  // every request rides an engine
  auto harness = StartHarness({}, router_options);
  const int port = harness->server->bound_port();

  LoadGenOptions options;
  options.port = port;
  options.connections = 2;
  options.window = 3;
  options.duration_ms = 1500;
  options.warmup_ms = 100;
  options.corpus = SmallCorpus(12);
  options.unique_requests = true;

  std::atomic<bool> done{false};
  uint64_t last_version = 0;
  std::thread swapper([&] {
    // Two live hot-swaps while the closed loop hammers the server.
    for (int i = 0; i < 2 && !done.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
      auto version = RequestSwap("127.0.0.1", port);
      ASSERT_TRUE(version.ok()) << version.status().ToString();
      last_version = version.value();
    }
  });
  auto report = RunLoadGen(options);
  done.store(true);
  swapper.join();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().ok, 0u);
  // The acceptance gate: a hot swap under sustained load is invisible to
  // clients — zero errors, zero lost connections, zero shed.
  EXPECT_EQ(report.value().errors, 0u);
  EXPECT_EQ(report.value().io_errors, 0u);
  EXPECT_EQ(report.value().connect_failures, 0u);
  EXPECT_EQ(last_version, 3u);
  EXPECT_EQ(harness->router->active_version(), 3u);
  EXPECT_EQ(harness->server->Stats().swaps, 2u);

  const ServerStats stats = harness->server->Stats();
  EXPECT_EQ(stats.classify_frames,
            stats.responses_ok + stats.responses_error +
                stats.responses_dropped);
}

// ==== RetryPolicyTest: backoff/jitter/deadline math, no real sleeps =========

TEST(RetryPolicyTest, BackoffDoublesAndCaps) {
  RetryOptions options;
  options.backoff_base_us = 1000;
  options.backoff_max_us = 250000;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.BackoffUs(0), 0);
  EXPECT_EQ(policy.BackoffUs(1), 1000);
  EXPECT_EQ(policy.BackoffUs(2), 2000);
  EXPECT_EQ(policy.BackoffUs(3), 4000);
  EXPECT_EQ(policy.BackoffUs(8), 128000);
  EXPECT_EQ(policy.BackoffUs(9), 250000);   // capped
  EXPECT_EQ(policy.BackoffUs(60), 250000);  // shift-overflow guarded
}

TEST(RetryPolicyTest, SameSeedSameScheduleDifferentSeedDiverges) {
  RetryOptions options;
  options.max_attempts = 10;
  options.seed = 42;
  RetryPolicy a(options);
  RetryPolicy b(options);
  options.seed = 43;
  RetryPolicy c(options);
  bool diverged = false;
  for (int attempt = 1; attempt < 8; ++attempt) {
    const int64_t da = a.NextDelayUs(attempt, 0, 0);
    const int64_t db = b.NextDelayUs(attempt, 0, 0);
    const int64_t dc = c.NextDelayUs(attempt, 0, 0);
    EXPECT_EQ(da, db) << "same seed must produce the same jittered delay";
    if (da != dc) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds should produce different jitter";
}

TEST(RetryPolicyTest, JitterStaysInsideTheDeterministicEnvelope) {
  RetryOptions options;
  options.max_attempts = 100;
  options.jitter = 0.5;
  RetryPolicy policy(options);
  for (int i = 0; i < 50; ++i) {
    const int attempt = 1 + (i % 6);
    const int64_t raw = policy.BackoffUs(attempt);
    const int64_t jittered = policy.NextDelayUs(attempt, 0, 0);
    ASSERT_GE(jittered, raw / 2) << "below the [delay*(1-j), delay] floor";
    ASSERT_LE(jittered, raw) << "jitter must never exceed the raw backoff";
  }
}

TEST(RetryPolicyTest, ZeroJitterIsExactBackoff) {
  RetryOptions options;
  options.jitter = 0.0;
  options.max_attempts = 8;
  RetryPolicy policy(options);
  for (int attempt = 1; attempt < 5; ++attempt) {
    EXPECT_EQ(policy.NextDelayUs(attempt, 0, 0), policy.BackoffUs(attempt));
  }
}

TEST(RetryPolicyTest, ExhaustedAttemptsRefuse) {
  RetryOptions options;
  options.max_attempts = 3;  // one send + two retries
  RetryPolicy policy(options);
  EXPECT_GE(policy.NextDelayUs(1, 0, 0), 0);
  EXPECT_GE(policy.NextDelayUs(2, 0, 0), 0);
  EXPECT_EQ(policy.NextDelayUs(3, 0, 0), -1);
  EXPECT_EQ(policy.NextDelayUs(4, 0, 0), -1);

  RetryOptions one;
  one.max_attempts = 1;  // no retries at all
  RetryPolicy no_retries(one);
  EXPECT_EQ(no_retries.NextDelayUs(1, 0, 0), -1);
}

TEST(RetryPolicyTest, DeadlineTruncatesUselessRetries) {
  RetryOptions options;
  options.jitter = 0.0;
  options.backoff_base_us = 10000;
  RetryPolicy policy(options);
  const int64_t now = 1000000;
  // Plenty of budget: 10 ms backoff fits a 100 ms deadline.
  EXPECT_EQ(policy.NextDelayUs(1, now, now + 100000), 10000);
  // The retry would wake exactly at the deadline: pointless, refuse.
  EXPECT_EQ(policy.NextDelayUs(1, now, now + 10000), -1);
  // Wakes with less than the minimum useful budget: also refuse.
  EXPECT_EQ(policy.NextDelayUs(
                1, now, now + 10000 + RetryPolicy::kMinUsefulBudgetUs),
            -1);
  // Just over the line: allowed again.
  EXPECT_EQ(policy.NextDelayUs(
                1, now, now + 10000 + RetryPolicy::kMinUsefulBudgetUs + 1),
            10000);
  // Deadline already passed.
  EXPECT_EQ(policy.NextDelayUs(1, now, now - 1), -1);
  // No deadline (0) never truncates.
  EXPECT_EQ(policy.NextDelayUs(1, now, 0), 10000);
}

// ==== HedgeTrackerTest ======================================================

TEST(HedgeTrackerTest, DisabledByDefault) {
  HedgeTracker tracker;
  EXPECT_FALSE(tracker.enabled());
  EXPECT_EQ(tracker.HedgeDelayUs(), -1);
  tracker.RecordLatencyUs(1000);
  EXPECT_EQ(tracker.HedgeDelayUs(), -1);
}

TEST(HedgeTrackerTest, FixedModeNeedsNoWarmup) {
  HedgeOptions options;
  options.hedge_fixed_us = 7500;
  HedgeTracker tracker(options);
  EXPECT_TRUE(tracker.enabled());
  EXPECT_EQ(tracker.HedgeDelayUs(), 7500);
}

TEST(HedgeTrackerTest, PercentileModeWarmsUpThenTracksTheTail) {
  HedgeOptions options;
  options.hedge_percentile = 0.90;
  options.min_samples = 10;
  HedgeTracker tracker(options);
  EXPECT_TRUE(tracker.enabled());
  // Cold: no threshold until min_samples completions have been seen.
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(tracker.HedgeDelayUs(), -1) << "hedged during warmup at " << i;
    tracker.RecordLatencyUs(1000 + i);
  }
  for (int i = 9; i < 19; ++i) tracker.RecordLatencyUs(1000 + i);
  tracker.RecordLatencyUs(1000000);  // one slow outlier
  EXPECT_EQ(tracker.samples(), 20u);
  const int64_t delay = tracker.HedgeDelayUs();
  ASSERT_GE(delay, 0);
  // p90 of {1000..1018, 1000000} sits at the top of the fast cluster —
  // far below the outlier, at or above the typical latency.
  EXPECT_GE(delay, 1000);
  EXPECT_LT(delay, 1000000);
}

// ==== NetClientTest: the resilient client over real sockets =================

/// Scripted FKDN/1 server for exercising client retry paths: accepts one
/// connection at a time and hands every decoded frame (with its connection
/// fd) to the test's handler, which answers or closes as the script needs.
class ScriptedServer {
 public:
  /// Return false to close the current connection after the frame.
  using Handler = std::function<bool(int fd, const Frame& frame)>;

  explicit ScriptedServer(Handler handler) : handler_(std::move(handler)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    FKD_CHECK_GE(listen_fd_, 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    FKD_CHECK_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
                 0);
    FKD_CHECK_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    FKD_CHECK_EQ(::getsockname(listen_fd_,
                               reinterpret_cast<sockaddr*>(&addr), &len),
                 0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Serve(); });
  }

  ~ScriptedServer() {
    stop_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
    for (std::thread& conn : conn_threads_) conn.join();
  }

  int port() const { return port_; }

  static void Respond(int fd, uint64_t request_id,
                      const ClassifyResponseMsg& msg) {
    const std::string bytes = EncodeFrame(MessageType::kClassifyResponse,
                                          request_id,
                                          EncodeClassifyResponse(msg));
    size_t offset = 0;
    while (offset < bytes.size()) {
      const ssize_t n =
          ::write(fd, bytes.data() + offset, bytes.size() - offset);
      if (n <= 0) return;  // client went away; the test will notice
      offset += static_cast<size_t>(n);
    }
  }

 private:
  void Serve() {
    // One thread per connection so a deliberately stalled connection (the
    // hedge tests) cannot block the accept loop.
    while (!stop_.load()) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // listener shut down
      conn_threads_.emplace_back([this, fd] {
        FrameDecoder decoder;
        bool keep = true;
        while (keep) {
          char chunk[16 * 1024];
          const ssize_t n = ::read(fd, chunk, sizeof(chunk));
          if (n <= 0) break;
          decoder.Append(chunk, static_cast<size_t>(n));
          Frame frame;
          bool ready = false;
          while (keep && decoder.Next(&frame, &ready).ok() && ready) {
            keep = handler_(fd, frame);
          }
        }
        ::close(fd);
      });
    }
  }

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::vector<std::thread> conn_threads_;  // only touched by thread_ + dtor
};

/// Client options tuned for tests: fast, deterministic backoff.
NetClientOptions FastClientOptions(int port) {
  NetClientOptions options;
  options.port = port;
  options.retry.backoff_base_us = 2000;
  options.retry.jitter = 0.0;
  return options;
}

TEST(NetClientTest, BlockingClassifyAgainstLiveServer) {
  auto harness = StartHarness();
  NetClient client(FastClientOptions(harness->server->bound_port()));
  ASSERT_TRUE(client.Start().ok());
  ClassifyRequestMsg msg;
  msg.text = SampleText(0);
  auto result = client.Classify(msg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok);
  EXPECT_FALSE(result.value().class_name.empty());
  client.Stop();
  const NetClientStats stats = client.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(NetClientTest, LostResponseTimesOutInsteadOfHangingForever) {
  // A listener that accepts the TCP connection (via the backlog) but never
  // reads or responds: the request vanishes. The client's per-request
  // budget must fire and classify the loss as DeadlineExceeded — the
  // closed-loop slot comes back instead of leaking forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(fd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  NetClientOptions options = FastClientOptions(ntohs(addr.sin_port));
  options.default_timeout_us = 200000;  // 200 ms budget
  options.retry.max_attempts = 1;       // loss, not flakiness: no retries
  NetClient client(options);
  ASSERT_TRUE(client.Start().ok());
  ClassifyRequestMsg msg;
  msg.text = "into the void";
  auto result = client.Classify(msg);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  client.Stop();
  const NetClientStats stats = client.Stats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.submitted, stats.ok + stats.shed + stats.deadline_exceeded +
                                 stats.transport_errors + stats.other_errors);
  ::close(fd);
}

TEST(NetClientTest, RetriesUnavailableWithTheSameRequestId) {
  // The server sheds the first two attempts; the client must retry with
  // the SAME request id (idempotent resubmission) and win on the third.
  std::mutex mutex;
  std::vector<uint64_t> seen_ids;
  ScriptedServer server([&](int fd, const Frame& frame) {
    if (frame.type != MessageType::kClassifyRequest) return true;
    size_t nth = 0;
    {
      std::lock_guard<std::mutex> lock(mutex);
      seen_ids.push_back(frame.request_id);
      nth = seen_ids.size();
    }
    ClassifyResponseMsg msg;
    if (nth <= 2) {
      msg.ok = false;
      msg.status_code = static_cast<uint8_t>(StatusCode::kUnavailable);
      msg.message = "shed";
    } else {
      msg.ok = true;
      msg.class_id = 1;
      msg.class_name = "fake";
    }
    ScriptedServer::Respond(fd, frame.request_id, msg);
    return true;
  });

  NetClient client(FastClientOptions(server.port()));
  ASSERT_TRUE(client.Start().ok());
  ClassifyRequestMsg msg;
  msg.text = "retry me";
  auto result = client.Classify(msg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok);
  client.Stop();

  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(seen_ids.size(), 3u);
  EXPECT_EQ(seen_ids[0], seen_ids[1]);
  EXPECT_EQ(seen_ids[1], seen_ids[2]);
  const NetClientStats stats = client.Stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.ok, 1u);
}

TEST(NetClientTest, ExhaustedRetriesSurfaceTheFinalUnavailable) {
  ScriptedServer server([&](int fd, const Frame& frame) {
    if (frame.type != MessageType::kClassifyRequest) return true;
    ClassifyResponseMsg msg;
    msg.ok = false;
    msg.status_code = static_cast<uint8_t>(StatusCode::kUnavailable);
    msg.message = "always shedding";
    ScriptedServer::Respond(fd, frame.request_id, msg);
    return true;
  });

  NetClientOptions options = FastClientOptions(server.port());
  options.retry.max_attempts = 3;
  NetClient client(options);
  ASSERT_TRUE(client.Start().ok());
  ClassifyRequestMsg msg;
  msg.text = "doomed";
  auto result = client.Classify(msg);
  // Once the policy refuses another attempt, the last shed becomes the
  // request's terminal status.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  client.Stop();
  const NetClientStats stats = client.Stats();
  EXPECT_EQ(stats.retries, 2u);  // attempts 2 and 3
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.submitted, stats.ok + stats.shed + stats.deadline_exceeded +
                                 stats.transport_errors + stats.other_errors);
}

TEST(NetClientTest, ReconnectResendsPendingRequestWithTheSameId) {
  // Connection 1 reads the request and slams the door without answering.
  // The client must reconnect and resend the SAME id; connection 2 serves
  // it. This is the mid-stream-disconnect path of the resilience story.
  std::mutex mutex;
  std::vector<uint64_t> seen_ids;
  std::atomic<int> classify_frames{0};
  ScriptedServer server([&](int fd, const Frame& frame) {
    if (frame.type != MessageType::kClassifyRequest) return true;
    {
      std::lock_guard<std::mutex> lock(mutex);
      seen_ids.push_back(frame.request_id);
    }
    if (classify_frames.fetch_add(1) == 0) return false;  // drop conn 1
    ClassifyResponseMsg msg;
    msg.ok = true;
    msg.class_id = 0;
    msg.class_name = "true";
    ScriptedServer::Respond(fd, frame.request_id, msg);
    return true;
  });

  NetClient client(FastClientOptions(server.port()));
  ASSERT_TRUE(client.Start().ok());
  ClassifyRequestMsg msg;
  msg.text = "survive the disconnect";
  auto result = client.Classify(msg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok);
  client.Stop();

  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(seen_ids.size(), 2u);
  EXPECT_EQ(seen_ids[0], seen_ids[1]);
  const NetClientStats stats = client.Stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_EQ(stats.ok, 1u);
}

TEST(NetClientTest, StopFailsPendingRequestsInsteadOfLeakingThem) {
  // Nothing ever answers; Stop() must complete the outstanding request
  // with Unavailable rather than stranding its callback.
  ScriptedServer server([](int, const Frame&) { return true; });
  NetClientOptions options = FastClientOptions(server.port());
  options.default_timeout_us = 30'000'000;
  NetClient client(options);
  ASSERT_TRUE(client.Start().ok());

  std::mutex mutex;
  std::condition_variable cv;
  std::optional<Status> outcome;
  ClassifyRequestMsg msg;
  msg.text = "stranded";
  client.Submit(std::move(msg), [&](Result<ClassifyResponseMsg> result) {
    std::lock_guard<std::mutex> lock(mutex);
    outcome = result.status();
    cv.notify_all();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.Stop();
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return outcome.has_value(); }));
  EXPECT_EQ(outcome->code(), StatusCode::kUnavailable);
  const NetClientStats stats = client.Stats();
  EXPECT_EQ(stats.submitted, stats.ok + stats.shed + stats.deadline_exceeded +
                                 stats.transport_errors + stats.other_errors);
}

TEST(NetClientTest, FixedDelayHedgeWinsWhenThePrimaryStalls) {
  // The scripted server ignores the first copy of the request and answers
  // only the second (the hedge, arriving on a second connection).
  std::atomic<int> classify_frames{0};
  ScriptedServer server([&](int fd, const Frame& frame) {
    if (frame.type != MessageType::kClassifyRequest) return true;
    if (classify_frames.fetch_add(1) == 0) return true;  // stall, keep conn
    ClassifyResponseMsg msg;
    msg.ok = true;
    msg.class_id = 1;
    msg.class_name = "fake";
    ScriptedServer::Respond(fd, frame.request_id, msg);
    return true;
  });

  NetClientOptions options = FastClientOptions(server.port());
  options.hedge.hedge_fixed_us = 20000;  // hedge after 20 ms
  options.retry.max_attempts = 1;        // isolate hedging from retries
  NetClient client(options);
  ASSERT_TRUE(client.Start().ok());
  ClassifyRequestMsg msg;
  msg.text = "hedge me";
  auto result = client.Classify(msg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok);
  client.Stop();
  const NetClientStats stats = client.Stats();
  EXPECT_EQ(stats.hedges, 1u);
  EXPECT_EQ(stats.hedge_wins, 1u);
  EXPECT_EQ(stats.ok, 1u);
}

// ==== NetChaosTest: fault-injected socket-layer behaviour ====================

/// Clears the global fault injector for the duration of a test, whatever
/// happens — a leaked rule would silently poison every later suite.
struct FaultGuard {
  FaultGuard() { FaultInjector::Global().Clear(); }
  ~FaultGuard() { FaultInjector::Global().Clear(); }
};

TEST(NetChaosTest, AcceptFailurePausesBrieflyThenRecovers) {
  FaultGuard guard;
  auto harness = StartHarness();
  // The first two accepts fail as if the fd table were exhausted (EMFILE).
  // The server must log-and-pause, not hot-spin, and the connection — held
  // in the listen backlog — must still be served once the pause lapses.
  ASSERT_TRUE(
      FaultInjector::Global().Configure("net.accept:fail@1*2").ok());
  TestClient client(harness->server->bound_port());
  auto result = client.Classify(SampleText(0), 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  FaultInjector::Global().Clear();
  const ServerStats stats = harness->server->Stats();
  EXPECT_GE(stats.accept_pauses, 1u);
  EXPECT_EQ(stats.responses_ok, 1u);
}

TEST(NetChaosTest, TornSendClosesTheConnectionWithoutBreakingAccounting) {
  FaultGuard guard;
  auto harness = StartHarness();
  TestClient victim(harness->server->bound_port());
  ASSERT_TRUE(victim.Classify(SampleText(0), 1).ok());  // healthy first

  ASSERT_TRUE(FaultInjector::Global().Configure("net.send:torn@1").ok());
  ClassifyRequestMsg msg;
  msg.text = SampleText(1);
  victim.Send(MessageType::kClassifyRequest, 2, EncodeClassifyRequest(msg));
  // The response is cut mid-frame and the connection closed: the client
  // sees a partial (undecodable) frame, never a clean response.
  std::vector<Frame> frames = victim.ReadUntilClose();
  EXPECT_TRUE(frames.empty());
  FaultInjector::Global().Clear();

  // A fresh connection is untouched, and the books still balance.
  TestClient fresh(harness->server->bound_port());
  EXPECT_TRUE(fresh.Classify(SampleText(2), 3).ok());
  const ServerStats stats = harness->server->Stats();
  EXPECT_EQ(stats.classify_frames,
            stats.responses_ok + stats.responses_error +
                stats.responses_dropped);
}

TEST(NetChaosTest, InjectedRecvResetDropsTheConnection) {
  FaultGuard guard;
  auto harness = StartHarness();
  TestClient client(harness->server->bound_port());
  ASSERT_TRUE(client.Classify(SampleText(0), 1).ok());

  ASSERT_TRUE(FaultInjector::Global().Configure("net.recv:fail@1").ok());
  client.Send(MessageType::kPing, 2, "ping into the storm");
  // The read is treated as a connection reset: closed, no reply.
  std::vector<Frame> frames = client.ReadUntilClose();
  EXPECT_TRUE(frames.empty());
  FaultInjector::Global().Clear();

  TestClient fresh(harness->server->bound_port());
  EXPECT_TRUE(fresh.Classify(SampleText(1), 3).ok());
}

TEST(NetChaosTest, DroppedEventfdWakeupDelaysButNeverLosesACompletion) {
  FaultGuard guard;
  serve::RouterOptions router_options = FastRouterOptions();
  router_options.cache_capacity = 0;  // force the async engine path
  auto harness = StartHarness({}, router_options);
  // Drop the next two completion wakeups: the response must still go out
  // via the event loop's bounded poll timeout (liveness, not luck).
  ASSERT_TRUE(
      FaultInjector::Global().Configure("net.eventfd:fail@1*2").ok());
  TestClient client(harness->server->bound_port());
  auto result = client.Classify(SampleText(0), 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  FaultInjector::Global().Clear();
  EXPECT_EQ(harness->server->Stats().responses_ok, 1u);
}

TEST(NetChaosTest, ExpiredDeadlineIsShedAtAdmissionNeverScored) {
  // The unit-level deadline-propagation proof: a request whose absolute
  // deadline has already passed is answered DeadlineExceeded by admission
  // control and never reaches the router, let alone a scoring engine.
  FaultGuard guard;
  auto harness = StartHarness();
  const uint64_t router_submitted_before = harness->router->Stats().submitted;

  TestClient client(harness->server->bound_port());
  ClassifyRequestMsg msg;
  msg.text = SampleText(0);
  msg.deadline_unix_us = 1000;  // one millisecond past the 1970 epoch
  client.Send(MessageType::kClassifyRequest, 42, EncodeClassifyRequest(msg));
  Frame frame = client.ReadFrame();
  ASSERT_EQ(frame.type, MessageType::kClassifyResponse);
  EXPECT_EQ(frame.request_id, 42u);
  auto decoded = DecodeClassifyResponse(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().ok);
  EXPECT_EQ(decoded.value().status_code,
            static_cast<uint8_t>(StatusCode::kDeadlineExceeded));

  const ServerStats stats = harness->server->Stats();
  EXPECT_EQ(stats.deadline_shed, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.responses_error, 1u);
  // Nothing was submitted to the router: the work was shed, not computed.
  EXPECT_EQ(harness->router->Stats().submitted, router_submitted_before);

  // A live deadline on the same connection is admitted and served.
  ClassifyRequestMsg live;
  live.text = SampleText(1);
  live.deadline_unix_us = Clock::Real()->WallUs() + 5'000'000;
  client.Send(MessageType::kClassifyRequest, 43, EncodeClassifyRequest(live));
  Frame ok_frame = client.ReadFrame();
  auto ok_decoded = DecodeClassifyResponse(ok_frame.payload);
  ASSERT_TRUE(ok_decoded.ok());
  EXPECT_TRUE(ok_decoded.value().ok);
}

}  // namespace
}  // namespace net
}  // namespace fkd
