#include "nn/schedule.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "nn/optimizer.h"

namespace fkd {
namespace nn {
namespace {

TEST(ConstantScheduleTest, AlwaysSameRate) {
  ConstantSchedule schedule(0.01f);
  EXPECT_FLOAT_EQ(schedule.LearningRateAt(0), 0.01f);
  EXPECT_FLOAT_EQ(schedule.LearningRateAt(10000), 0.01f);
}

TEST(LinearDecayScheduleTest, InterpolatesAndClamps) {
  LinearDecaySchedule schedule(1.0f, 0.1f, 10);
  EXPECT_FLOAT_EQ(schedule.LearningRateAt(0), 1.0f);
  EXPECT_NEAR(schedule.LearningRateAt(5), 0.55f, 1e-6f);
  EXPECT_FLOAT_EQ(schedule.LearningRateAt(10), 0.1f);
  EXPECT_FLOAT_EQ(schedule.LearningRateAt(999), 0.1f);
}

TEST(LinearDecayScheduleTest, MonotoneNonIncreasing) {
  LinearDecaySchedule schedule(0.025f, 0.0001f, 100);
  float previous = schedule.LearningRateAt(0);
  for (size_t step = 1; step <= 120; ++step) {
    const float rate = schedule.LearningRateAt(step);
    EXPECT_LE(rate, previous + 1e-9f);
    previous = rate;
  }
}

TEST(StepDecayScheduleTest, Staircase) {
  StepDecaySchedule schedule(1.0f, 0.5f, 10);
  EXPECT_FLOAT_EQ(schedule.LearningRateAt(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule.LearningRateAt(9), 1.0f);
  EXPECT_FLOAT_EQ(schedule.LearningRateAt(10), 0.5f);
  EXPECT_FLOAT_EQ(schedule.LearningRateAt(25), 0.25f);
}

TEST(WarmupLinearScheduleTest, WarmsUpThenDecays) {
  WarmupLinearSchedule schedule(1.0f, 10, 110);
  EXPECT_LT(schedule.LearningRateAt(0), schedule.LearningRateAt(5));
  EXPECT_NEAR(schedule.LearningRateAt(9), 1.0f, 1e-6f);
  EXPECT_GT(schedule.LearningRateAt(10), schedule.LearningRateAt(60));
  // Floor at peak / 100.
  EXPECT_FLOAT_EQ(schedule.LearningRateAt(100000), 0.01f);
}

TEST(ScheduleWithOptimizerTest, DecayedSgdStillConverges) {
  autograd::Variable x(Tensor::Full(1, 2, 10.0f), true);
  autograd::Variable target(Tensor::Full(1, 2, 3.0f), false);
  Sgd sgd({x}, 0.1f);
  LinearDecaySchedule schedule(0.1f, 0.001f, 200);
  for (size_t step = 0; step < 200; ++step) {
    sgd.set_learning_rate(schedule.LearningRateAt(step));
    sgd.ZeroGrad();
    autograd::Backward(autograd::SumSquares(autograd::Sub(x, target)));
    sgd.Step();
  }
  EXPECT_NEAR(x.value()[0], 3.0f, 0.05f);
}

// ---- Gemv -------------------------------------------------------------------

TEST(GemvTest, PlainMatVec) {
  const Tensor a = Tensor::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const Tensor x = Tensor::FromVector({1.0f, -1.0f});
  Tensor y = Tensor::FromVector({0.0f, 0.0f, 0.0f});
  Gemv(false, 1.0f, a, x, 0.0f, &y);
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], -1.0f);
  EXPECT_FLOAT_EQ(y[2], -1.0f);
}

TEST(GemvTest, TransposedMatVec) {
  const Tensor a = Tensor::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const Tensor x = Tensor::FromVector({1.0f, 1.0f, 1.0f});
  Tensor y = Tensor::FromVector({0.0f, 0.0f});
  Gemv(true, 1.0f, a, x, 0.0f, &y);
  EXPECT_FLOAT_EQ(y[0], 9.0f);
  EXPECT_FLOAT_EQ(y[1], 12.0f);
}

TEST(GemvTest, AlphaBetaAccumulate) {
  const Tensor a = Tensor::FromRows({{2}});
  const Tensor x = Tensor::FromVector({3.0f});
  Tensor y = Tensor::FromVector({10.0f});
  Gemv(false, 2.0f, a, x, 0.5f, &y);
  EXPECT_FLOAT_EQ(y[0], 0.5f * 10.0f + 2.0f * 6.0f);
}

TEST(GemvTest, MatchesGemmOnColumnVector) {
  Rng rng(1);
  const Tensor a = Tensor::Randn(7, 5, &rng);
  const Tensor x_column = Tensor::Randn(5, 1, &rng);
  const Tensor x = x_column.Reshape({5});
  Tensor y(std::vector<size_t>{7});
  Gemv(false, 1.0f, a, x, 0.0f, &y);
  const Tensor expected = MatMul(a, x_column);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(y[i], expected.At(i, 0), 1e-4f);
  }
}

}  // namespace
}  // namespace nn
}  // namespace fkd
