#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "eval/classifier.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/report.h"

namespace fkd {
namespace eval {
namespace {

// ---- ConfusionMatrix ----------------------------------------------------------

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix matrix(2);
  matrix.AddAll({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(matrix.total(), 5u);
  EXPECT_EQ(matrix.Count(1, 1), 2);
  EXPECT_EQ(matrix.Count(1, 0), 1);
  EXPECT_EQ(matrix.Count(0, 1), 1);
  EXPECT_EQ(matrix.Count(0, 0), 1);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), 3.0 / 5.0);
}

TEST(ConfusionMatrixTest, PrecisionRecallF1HandChecked) {
  ConfusionMatrix matrix(2);
  // tp=3, fp=1, fn=2, tn=4.
  for (int i = 0; i < 3; ++i) matrix.Add(1, 1);
  matrix.Add(0, 1);
  for (int i = 0; i < 2; ++i) matrix.Add(1, 0);
  for (int i = 0; i < 4; ++i) matrix.Add(0, 0);
  EXPECT_DOUBLE_EQ(matrix.Precision(1), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(matrix.Recall(1), 3.0 / 5.0);
  const double p = 0.75, r = 0.6;
  EXPECT_DOUBLE_EQ(matrix.F1(1), 2 * p * r / (p + r));
}

TEST(ConfusionMatrixTest, ZeroDivisionConventions) {
  ConfusionMatrix matrix(3);
  matrix.Add(0, 0);
  matrix.Add(1, 0);
  // Class 2 never occurs nor is predicted.
  EXPECT_DOUBLE_EQ(matrix.Precision(2), 0.0);
  EXPECT_DOUBLE_EQ(matrix.Recall(2), 0.0);
  EXPECT_DOUBLE_EQ(matrix.F1(2), 0.0);
  // Class 1 occurs but never predicted correctly.
  EXPECT_DOUBLE_EQ(matrix.Recall(1), 0.0);
}

TEST(ConfusionMatrixTest, EmptyMatrixAccuracyZero) {
  ConfusionMatrix matrix(2);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), 0.0);
}

TEST(ConfusionMatrixTest, MacroAverages) {
  ConfusionMatrix matrix(2);
  // Perfect on class 0 (2 instances), total miss on class 1 (2 instances).
  matrix.Add(0, 0);
  matrix.Add(0, 0);
  matrix.Add(1, 0);
  matrix.Add(1, 0);
  EXPECT_DOUBLE_EQ(matrix.MacroRecall(), 0.5);   // (1 + 0) / 2
  EXPECT_DOUBLE_EQ(matrix.MacroPrecision(), 0.25);  // (0.5 + 0) / 2
}

TEST(ConfusionMatrixTest, BinaryAndMultiWrappers) {
  ConfusionMatrix binary(2);
  binary.AddAll({1, 0, 1, 0}, {1, 0, 0, 1});
  const BinaryMetrics bm = ComputeBinaryMetrics(binary);
  EXPECT_DOUBLE_EQ(bm.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(bm.precision, 0.5);
  EXPECT_DOUBLE_EQ(bm.recall, 0.5);

  ConfusionMatrix multi(6);
  for (int c = 0; c < 6; ++c) multi.Add(c, c);
  const MultiClassMetrics mm = ComputeMultiClassMetrics(multi);
  EXPECT_DOUBLE_EQ(mm.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(mm.macro_f1, 1.0);
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  ConfusionMatrix matrix(2);
  matrix.Add(0, 1);
  EXPECT_NE(matrix.ToString().find("1"), std::string::npos);
}

// Property sweep: metrics bounded, F1 is the harmonic mean, permutation
// invariance of Add order.
class MetricsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsProperty, InvariantsOnRandomMatrices) {
  Rng rng(GetParam());
  const size_t k = 2 + rng.UniformInt(5u);
  ConfusionMatrix matrix(k);
  const size_t n = 50 + rng.UniformInt(200u);
  std::vector<int32_t> actual, predicted;
  for (size_t i = 0; i < n; ++i) {
    actual.push_back(static_cast<int32_t>(rng.UniformInt(k)));
    predicted.push_back(static_cast<int32_t>(rng.UniformInt(k)));
  }
  matrix.AddAll(actual, predicted);

  EXPECT_GE(matrix.Accuracy(), 0.0);
  EXPECT_LE(matrix.Accuracy(), 1.0);
  for (size_t c = 0; c < k; ++c) {
    const double p = matrix.Precision(static_cast<int32_t>(c));
    const double r = matrix.Recall(static_cast<int32_t>(c));
    const double f1 = matrix.F1(static_cast<int32_t>(c));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    if (p + r > 0) {
      EXPECT_NEAR(f1, 2 * p * r / (p + r), 1e-12);
    } else {
      EXPECT_DOUBLE_EQ(f1, 0.0);
    }
    // F1 lies between min and max of p and r.
    EXPECT_LE(f1, std::max(p, r) + 1e-12);
  }
  EXPECT_LE(matrix.MacroF1(), 1.0);

  // Order invariance.
  ConfusionMatrix reversed(k);
  for (size_t i = n; i-- > 0;) reversed.Add(actual[i], predicted[i]);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), reversed.Accuracy());
  EXPECT_DOUBLE_EQ(matrix.MacroF1(), reversed.MacroF1());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- TextTable -------------------------------------------------------------------

TEST(TextTableTest, RenderAlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer_name", "2"});
  const std::string rendered = table.Render();
  EXPECT_NE(rendered.find("longer_name"), std::string::npos);
  EXPECT_NE(rendered.find("----"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TextTableTest, CsvOutput) {
  TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

// ---- experiment runner --------------------------------------------------------------

/// Predicts the majority training class everywhere — the canonical dumb
/// baseline to exercise the harness.
class MajorityClassifier : public CredibilityClassifier {
 public:
  std::string Name() const override { return "majority"; }

  Status Train(const TrainContext& context) override {
    context_ = context;
    std::vector<int64_t> votes(NumClasses(context.granularity), 0);
    for (int32_t id : context.train_articles) {
      ++votes[context.ArticleTarget(id)];
    }
    majority_ = static_cast<int32_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
    return Status::OK();
  }

  Result<Predictions> Predict() override {
    Predictions predictions;
    predictions.articles.assign(context_.dataset->articles.size(), majority_);
    predictions.creators.assign(context_.dataset->creators.size(), majority_);
    predictions.subjects.assign(context_.dataset->subjects.size(), majority_);
    return predictions;
  }

 private:
  TrainContext context_;
  int32_t majority_ = 0;
};

/// Cheats by reading ground truth — must score 1.0 on everything.
class OracleClassifier : public CredibilityClassifier {
 public:
  std::string Name() const override { return "oracle"; }
  Status Train(const TrainContext& context) override {
    context_ = context;
    return Status::OK();
  }
  Result<Predictions> Predict() override {
    Predictions predictions;
    for (const auto& a : context_.dataset->articles) {
      predictions.articles.push_back(TargetOf(a.label, context_.granularity));
    }
    for (const auto& c : context_.dataset->creators) {
      predictions.creators.push_back(TargetOf(c.label, context_.granularity));
    }
    for (const auto& s : context_.dataset->subjects) {
      predictions.subjects.push_back(TargetOf(s.label, context_.granularity));
    }
    return predictions;
  }

 private:
  TrainContext context_;
};

class BrokenClassifier : public CredibilityClassifier {
 public:
  std::string Name() const override { return "broken"; }
  Status Train(const TrainContext&) override {
    return Status::Internal("deliberate failure");
  }
  Result<Predictions> Predict() override { return Predictions{}; }
};

data::Dataset TestDataset() {
  auto result =
      data::GeneratePolitiFact(data::GeneratorOptions::Scaled(200, 11));
  FKD_CHECK_OK(result.status());
  return std::move(result).value();
}

TEST(ExperimentRunnerTest, OracleScoresPerfectly) {
  const auto dataset = TestDataset();
  ExperimentOptions options;
  options.k_folds = 4;
  options.folds_to_run = 2;
  options.sample_ratios = {0.5};
  ExperimentRunner runner(dataset, options);
  runner.RegisterMethod([] { return std::make_unique<OracleClassifier>(); });
  auto results = runner.Run();
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 1u);
  const SweepResult& cell = results.value()[0];
  EXPECT_EQ(cell.method, "oracle");
  EXPECT_DOUBLE_EQ(cell.articles.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(cell.creators.f1, 1.0);
  EXPECT_DOUBLE_EQ(cell.subjects.recall, 1.0);
  EXPECT_EQ(cell.folds, 2u);
}

TEST(ExperimentRunnerTest, ProducesMethodMajorThetaOrderedResults) {
  const auto dataset = TestDataset();
  ExperimentOptions options;
  options.k_folds = 4;
  options.folds_to_run = 1;
  options.sample_ratios = {0.2, 0.8};
  ExperimentRunner runner(dataset, options);
  runner.RegisterMethod([] { return std::make_unique<MajorityClassifier>(); });
  runner.RegisterMethod([] { return std::make_unique<OracleClassifier>(); });
  auto results = runner.Run();
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 4u);
  EXPECT_EQ(results.value()[0].method, "majority");
  EXPECT_DOUBLE_EQ(results.value()[0].theta, 0.2);
  EXPECT_EQ(results.value()[1].method, "majority");
  EXPECT_DOUBLE_EQ(results.value()[1].theta, 0.8);
  EXPECT_EQ(results.value()[2].method, "oracle");
}

TEST(ExperimentRunnerTest, MajorityRecallIsDegenerate) {
  const auto dataset = TestDataset();
  ExperimentOptions options;
  options.k_folds = 4;
  options.folds_to_run = 1;
  options.sample_ratios = {1.0};
  ExperimentRunner runner(dataset, options);
  runner.RegisterMethod([] { return std::make_unique<MajorityClassifier>(); });
  auto results = runner.Run();
  ASSERT_TRUE(results.ok());
  const MetricsRow& row = results.value()[0].articles;
  // Majority predicts one class: recall of that class is 1 or 0.
  EXPECT_TRUE(row.recall == 1.0 || row.recall == 0.0);
}

TEST(ExperimentRunnerTest, PropagatesTrainFailures) {
  const auto dataset = TestDataset();
  ExperimentOptions options;
  options.k_folds = 4;
  options.folds_to_run = 1;
  options.sample_ratios = {0.5};
  ExperimentRunner runner(dataset, options);
  runner.RegisterMethod([] { return std::make_unique<BrokenClassifier>(); });
  EXPECT_EQ(runner.Run().status().code(), StatusCode::kInternal);
}

TEST(ExperimentRunnerTest, NoMethodsIsFailedPrecondition) {
  const auto dataset = TestDataset();
  ExperimentRunner runner(dataset, ExperimentOptions{});
  EXPECT_EQ(runner.Run().status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExperimentRunnerTest, MultiGranularityUsesMacroMetrics) {
  const auto dataset = TestDataset();
  ExperimentOptions options;
  options.k_folds = 4;
  options.folds_to_run = 1;
  options.sample_ratios = {1.0};
  options.granularity = LabelGranularity::kMulti;
  ExperimentRunner runner(dataset, options);
  runner.RegisterMethod([] { return std::make_unique<OracleClassifier>(); });
  auto results = runner.Run();
  ASSERT_TRUE(results.ok());
  EXPECT_DOUBLE_EQ(results.value()[0].articles.accuracy, 1.0);
}

// ---- report -----------------------------------------------------------------------

std::vector<SweepResult> FakeResults() {
  SweepResult a;
  a.method = "FakeDetector";
  a.theta = 0.1;
  a.articles = {0.63, 0.6, 0.5, 0.55};
  a.creators = {0.6, 0.5, 0.5, 0.5};
  a.subjects = {0.7, 0.7, 0.7, 0.7};
  SweepResult b = a;
  b.theta = 0.5;
  b.articles.accuracy = 0.66;
  SweepResult c = a;
  c.method = "svm";
  c.articles.accuracy = 0.55;
  return {a, b, c};
}

TEST(ReportTest, FormatFigureSeriesContainsMethodsAndThetas) {
  const std::string text = FormatFigureSeries(
      FakeResults(), EntityKind::kArticle, LabelGranularity::kBinary);
  EXPECT_NE(text.find("FakeDetector"), std::string::npos);
  EXPECT_NE(text.find("svm"), std::string::npos);
  EXPECT_NE(text.find("0.630"), std::string::npos);
  EXPECT_NE(text.find("0.660"), std::string::npos);
  EXPECT_NE(text.find("article Accuracy"), std::string::npos);
  EXPECT_NE(text.find("Precision"), std::string::npos);
}

TEST(ReportTest, MultiGranularityUsesMacroNames) {
  const std::string text = FormatFigureSeries(
      FakeResults(), EntityKind::kCreator, LabelGranularity::kMulti);
  EXPECT_NE(text.find("Macro-F1"), std::string::npos);
  EXPECT_NE(text.find("creator"), std::string::npos);
}

TEST(ReportTest, WriteSweepCsv) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fkd_sweep.csv").string();
  ASSERT_TRUE(WriteSweepCsv(FakeResults(), path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "method,theta,entity,accuracy,precision,recall,f1");
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 9u);  // 3 results x 3 entities.
  std::filesystem::remove(path);
}

TEST(ReportTest, EntityKindNames) {
  EXPECT_STREQ(EntityKindName(EntityKind::kArticle), "article");
  EXPECT_STREQ(EntityKindName(EntityKind::kSubject), "subject");
}

}  // namespace
}  // namespace eval
}  // namespace fkd
