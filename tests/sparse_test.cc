#include "tensor/sparse.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tests/test_util.h"

namespace fkd {
namespace {

namespace ag = ::fkd::autograd;

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix csr;
  EXPECT_EQ(csr.rows(), 0u);
  EXPECT_EQ(csr.nnz(), 0u);
  EXPECT_DOUBLE_EQ(csr.Density(), 0.0);
}

TEST(CsrMatrixTest, FromTripletsBasic) {
  auto csr = CsrMatrix::FromTriplets(
      3, 4, {{0, 1, 2.0f}, {2, 3, -1.0f}, {0, 0, 1.0f}});
  EXPECT_EQ(csr.nnz(), 3u);
  const Tensor dense = csr.ToDense();
  EXPECT_EQ(dense.At(0, 0), 1.0f);
  EXPECT_EQ(dense.At(0, 1), 2.0f);
  EXPECT_EQ(dense.At(2, 3), -1.0f);
  EXPECT_EQ(dense.At(1, 2), 0.0f);
}

TEST(CsrMatrixTest, DuplicateTripletsSum) {
  auto csr = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(csr.nnz(), 1u);
  EXPECT_EQ(csr.ToDense().At(0, 0), 3.5f);
}

TEST(CsrMatrixTest, CancellingDuplicatesDropped) {
  auto csr = CsrMatrix::FromTriplets(2, 2, {{1, 1, 2.0f}, {1, 1, -2.0f}});
  EXPECT_EQ(csr.nnz(), 0u);
}

TEST(CsrMatrixTest, FromDenseRoundTrip) {
  const Tensor dense = Tensor::FromRows({{0, 1, 0}, {2, 0, 3}, {0, 0, 0}});
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_TRUE(csr.ToDense() == dense);
  EXPECT_NEAR(csr.Density(), 3.0 / 9.0, 1e-12);
}

TEST(CsrMatrixTest, FromDenseEpsilonThreshold) {
  const Tensor dense = Tensor::FromRows({{0.001f, 1.0f}});
  EXPECT_EQ(CsrMatrix::FromDense(dense, 0.01f).nnz(), 1u);
}

TEST(CsrMatrixTest, RowAccessors) {
  auto csr = CsrMatrix::FromTriplets(2, 5, {{0, 4, 9.0f}, {0, 1, 7.0f}});
  const auto indices = csr.RowIndices(0);
  ASSERT_EQ(indices.size(), 2u);
  EXPECT_EQ(indices[0], 1);  // Sorted within the row.
  EXPECT_EQ(indices[1], 4);
  EXPECT_EQ(csr.RowValues(0)[0], 7.0f);
  EXPECT_TRUE(csr.RowIndices(1).empty());
}

TEST(CsrMatrixTest, MatMulMatchesDense) {
  Rng rng(1);
  Tensor dense_a = Tensor::Randn(6, 8, &rng);
  // Sparsify ~70%.
  for (size_t i = 0; i < dense_a.size(); ++i) {
    if (rng.Uniform() < 0.7) dense_a[i] = 0.0f;
  }
  const CsrMatrix sparse_a = CsrMatrix::FromDense(dense_a);
  const Tensor b = Tensor::Randn(8, 5, &rng);
  EXPECT_TRUE(sparse_a.MatMul(b).AllClose(MatMul(dense_a, b), 1e-4f));
}

TEST(CsrMatrixTest, TransposedMatMulMatchesDense) {
  Rng rng(2);
  Tensor dense_a = Tensor::Randn(6, 4, &rng);
  for (size_t i = 0; i < dense_a.size(); ++i) {
    if (rng.Uniform() < 0.6) dense_a[i] = 0.0f;
  }
  const CsrMatrix sparse_a = CsrMatrix::FromDense(dense_a);
  const Tensor b = Tensor::Randn(6, 3, &rng);
  Tensor expected(4, 3);
  Gemm(true, false, 1.0f, dense_a, b, 0.0f, &expected);
  EXPECT_TRUE(sparse_a.TransposedMatMul(b).AllClose(expected, 1e-4f));
}

TEST(SparseMatMulOpTest, ForwardMatchesDense) {
  const Tensor dense_s = Tensor::FromRows({{1, 0}, {0, 2}, {3, 0}});
  const CsrMatrix sparse = CsrMatrix::FromDense(dense_s);
  ag::Variable x(Tensor::FromRows({{1, 1}, {2, 2}}), false);
  EXPECT_TRUE(SparseMatMul(sparse, x).value().AllClose(
      MatMul(dense_s, x.value())));
}

TEST(SparseMatMulOpTest, GradCheck) {
  Rng rng(3);
  Tensor dense_s = Tensor::Randn(5, 4, &rng);
  for (size_t i = 0; i < dense_s.size(); ++i) {
    if (rng.Uniform() < 0.5) dense_s[i] = 0.0f;
  }
  const CsrMatrix sparse = CsrMatrix::FromDense(dense_s);
  testing::ExpectGradientsMatch(
      [&sparse](const std::vector<ag::Variable>& leaves) {
        return testing::WeightedSum(ag::Tanh(SparseMatMul(sparse, leaves[0])));
      },
      {testing::RandomTensor(4, 3, 4, 0.5f)});
}

TEST(SparseMatMulOpTest, NoGradLeafStaysGradless) {
  const CsrMatrix sparse =
      CsrMatrix::FromDense(Tensor::FromRows({{1.0f}}));
  ag::Variable x(Tensor::FromRows({{2.0f}}), false);
  ag::Variable y = SparseMatMul(sparse, x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(CustomOpTest, BackwardClosureRuns) {
  // MakeCustomOp is the public extension point; verify a trivial identity
  // op propagates gradient through the custom closure.
  ag::Variable x(Tensor::FromRows({{3.0f}}), true);
  auto xn = x.node();
  ag::Variable y = ag::MakeCustomOp(
      x.value(), {x}, "identity",
      [xn](ag::Node& node) { xn->AccumulateGrad(node.grad()); });
  ag::Backward(ag::SumSquares(y));
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
}

}  // namespace
}  // namespace fkd
