#include "tensor/sparse.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/thread_pool.h"
#include "tensor/ops.h"
#include "tests/test_util.h"

namespace fkd {
namespace {

namespace ag = ::fkd::autograd;

/// Runs `compute` under 1-, 2- and 8-thread global pools and expects
/// bit-identical outputs (the sparse kernels' determinism contract).
template <typename Fn>
void ExpectBitwiseAcrossPoolWidths(Fn compute, const char* what) {
  ThreadPool::ResetGlobal(1);
  const Tensor serial = compute();
  for (size_t threads : {2u, 8u}) {
    ThreadPool::ResetGlobal(threads);
    const Tensor parallel = compute();
    EXPECT_TRUE(serial == parallel)
        << what << " not bitwise reproducible at " << threads << " threads";
  }
  ThreadPool::ResetGlobal(0);
}

/// Asserts the plan tiles the full [rows x dense_cols] output exactly once:
/// per row, the covering chunks' column ranges partition [0, dense_cols).
void ExpectPlanTilesOutput(const CsrMatrix& csr,
                           const std::vector<CsrMatrix::MatMulChunk>& plan,
                           size_t dense_cols) {
  for (size_t r = 0; r < csr.rows(); ++r) {
    std::vector<std::pair<size_t, size_t>> spans;
    for (const auto& chunk : plan) {
      if (r >= chunk.row_begin && r < chunk.row_end) {
        spans.emplace_back(chunk.col_begin, chunk.col_end);
      }
    }
    std::sort(spans.begin(), spans.end());
    ASSERT_FALSE(spans.empty()) << "row " << r << " uncovered";
    ASSERT_EQ(spans.front().first, 0u) << "row " << r;
    for (size_t i = 1; i < spans.size(); ++i) {
      ASSERT_EQ(spans[i].first, spans[i - 1].second)
          << "row " << r << " has a gap or overlap";
    }
    ASSERT_EQ(spans.back().second, dense_cols) << "row " << r;
  }
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix csr;
  EXPECT_EQ(csr.rows(), 0u);
  EXPECT_EQ(csr.nnz(), 0u);
  EXPECT_DOUBLE_EQ(csr.Density(), 0.0);
}

TEST(CsrMatrixTest, FromTripletsBasic) {
  auto csr = CsrMatrix::FromTriplets(
      3, 4, {{0, 1, 2.0f}, {2, 3, -1.0f}, {0, 0, 1.0f}});
  EXPECT_EQ(csr.nnz(), 3u);
  const Tensor dense = csr.ToDense();
  EXPECT_EQ(dense.At(0, 0), 1.0f);
  EXPECT_EQ(dense.At(0, 1), 2.0f);
  EXPECT_EQ(dense.At(2, 3), -1.0f);
  EXPECT_EQ(dense.At(1, 2), 0.0f);
}

TEST(CsrMatrixTest, DuplicateTripletsSum) {
  auto csr = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(csr.nnz(), 1u);
  EXPECT_EQ(csr.ToDense().At(0, 0), 3.5f);
}

TEST(CsrMatrixTest, CancellingDuplicatesDropped) {
  auto csr = CsrMatrix::FromTriplets(2, 2, {{1, 1, 2.0f}, {1, 1, -2.0f}});
  EXPECT_EQ(csr.nnz(), 0u);
}

TEST(CsrMatrixTest, FromDenseRoundTrip) {
  const Tensor dense = Tensor::FromRows({{0, 1, 0}, {2, 0, 3}, {0, 0, 0}});
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_TRUE(csr.ToDense() == dense);
  EXPECT_NEAR(csr.Density(), 3.0 / 9.0, 1e-12);
}

TEST(CsrMatrixTest, FromDenseEpsilonThreshold) {
  const Tensor dense = Tensor::FromRows({{0.001f, 1.0f}});
  EXPECT_EQ(CsrMatrix::FromDense(dense, 0.01f).nnz(), 1u);
}

TEST(CsrMatrixTest, RowAccessors) {
  auto csr = CsrMatrix::FromTriplets(2, 5, {{0, 4, 9.0f}, {0, 1, 7.0f}});
  const auto indices = csr.RowIndices(0);
  ASSERT_EQ(indices.size(), 2u);
  EXPECT_EQ(indices[0], 1);  // Sorted within the row.
  EXPECT_EQ(indices[1], 4);
  EXPECT_EQ(csr.RowValues(0)[0], 7.0f);
  EXPECT_TRUE(csr.RowIndices(1).empty());
}

TEST(CsrMatrixTest, MatMulMatchesDense) {
  Rng rng(1);
  Tensor dense_a = Tensor::Randn(6, 8, &rng);
  // Sparsify ~70%.
  for (size_t i = 0; i < dense_a.size(); ++i) {
    if (rng.Uniform() < 0.7) dense_a[i] = 0.0f;
  }
  const CsrMatrix sparse_a = CsrMatrix::FromDense(dense_a);
  const Tensor b = Tensor::Randn(8, 5, &rng);
  EXPECT_TRUE(sparse_a.MatMul(b).AllClose(MatMul(dense_a, b), 1e-4f));
}

TEST(CsrMatrixTest, TransposedMatMulMatchesDense) {
  Rng rng(2);
  Tensor dense_a = Tensor::Randn(6, 4, &rng);
  for (size_t i = 0; i < dense_a.size(); ++i) {
    if (rng.Uniform() < 0.6) dense_a[i] = 0.0f;
  }
  const CsrMatrix sparse_a = CsrMatrix::FromDense(dense_a);
  const Tensor b = Tensor::Randn(6, 3, &rng);
  Tensor expected(4, 3);
  Gemm(true, false, 1.0f, dense_a, b, 0.0f, &expected);
  EXPECT_TRUE(sparse_a.TransposedMatMul(b).AllClose(expected, 1e-4f));
}

// ---- pathological skew: nnz-balanced partition --------------------------------

TEST(CsrSkewTest, DenseRowAmongEmptyRowsSplitsAcrossColumnSlabs) {
  // One fully dense row among 4095 empty ones: a row-count partition puts
  // 100% of the work in one chunk. The nnz-balanced plan must split the
  // dense row's work along the output columns.
  constexpr size_t kRows = 4096;
  constexpr size_t kDenseRow = 1234;
  constexpr size_t kDenseCols = 256;
  std::vector<CsrMatrix::Triplet> triplets;
  for (size_t c = 0; c < kRows; ++c) {
    triplets.push_back({static_cast<int32_t>(kDenseRow),
                        static_cast<int32_t>(c),
                        0.25f + static_cast<float>(c % 7)});
  }
  const CsrMatrix csr = CsrMatrix::FromTriplets(kRows, kRows, triplets);

  const auto plan = csr.BalancedMatMulPlan(kDenseCols);
  ExpectPlanTilesOutput(csr, plan, kDenseCols);
  size_t dense_row_chunks = 0;
  for (const auto& chunk : plan) {
    if (kDenseRow >= chunk.row_begin && kDenseRow < chunk.row_end) {
      ++dense_row_chunks;
      // Every chunk touching the dense row must be a column slab of that
      // row alone, never a row-range chunk swallowing all its work.
      EXPECT_EQ(chunk.row_begin, kDenseRow);
      EXPECT_EQ(chunk.row_end, kDenseRow + 1);
      EXPECT_LT(chunk.col_end - chunk.col_begin, kDenseCols);
    }
  }
  EXPECT_GE(dense_row_chunks, 4u)
      << "the dense row's work did not split across column slabs";

  Rng rng(101);
  const Tensor dense = Tensor::Randn(kRows, kDenseCols, &rng);
  ExpectBitwiseAcrossPoolWidths([&] { return csr.MatMul(dense); },
                                "skewed CsrMatrix::MatMul (dense row)");
}

TEST(CsrSkewTest, PowerLawRowsBalanceAndStayBitwiseStable) {
  // Power-law nnz per row (row r gets ~4096/(r+1) nonzeros): the head rows
  // dominate, so a row-count partition leaves the tail chunks idle.
  constexpr size_t kRows = 512;
  constexpr size_t kCols = 4096;
  constexpr size_t kDenseCols = 64;
  Rng rng(103);
  std::vector<CsrMatrix::Triplet> triplets;
  for (size_t r = 0; r < kRows; ++r) {
    const size_t row_nnz = std::max<size_t>(1, 4096 / (r + 1));
    for (size_t j = 0; j < row_nnz; ++j) {
      triplets.push_back({static_cast<int32_t>(r),
                          static_cast<int32_t>(rng.UniformInt(uint64_t{kCols})),
                          static_cast<float>(rng.Normal())});
    }
  }
  const CsrMatrix csr = CsrMatrix::FromTriplets(kRows, kCols, triplets);

  const auto plan = csr.BalancedMatMulPlan(kDenseCols);
  ExpectPlanTilesOutput(csr, plan, kDenseCols);
  ASSERT_GT(plan.size(), 4u);
  // Balance: no multi-row chunk may hold more than 1/8 of all nonzeros
  // (the heaviest single rows are allowed to, but they get column-split).
  size_t head_row_chunks = 0;
  for (const auto& chunk : plan) {
    size_t chunk_nnz = 0;
    for (size_t r = chunk.row_begin; r < chunk.row_end; ++r) {
      chunk_nnz += csr.RowIndices(r).size();
    }
    if (chunk.row_end - chunk.row_begin > 1) {
      EXPECT_LE(chunk_nnz, csr.nnz() / 8)
          << "rows [" << chunk.row_begin << ", " << chunk.row_end
          << ") concentrate too much work in one chunk";
    }
    if (chunk.row_begin == 0 && chunk.row_end == 1) ++head_row_chunks;
  }
  // The heaviest row's work is itself split along columns.
  EXPECT_GE(head_row_chunks, 2u);

  const Tensor dense = Tensor::Randn(kCols, kDenseCols, &rng);
  ExpectBitwiseAcrossPoolWidths([&] { return csr.MatMul(dense); },
                                "skewed CsrMatrix::MatMul (power law)");
}

TEST(CsrSkewTest, TransposedMatMulColumnBlockedParity) {
  // Enough nonzeros and a wide enough dense operand that the column-blocked
  // TransposedMatMul actually runs multiple slabs, plus a correctness check
  // against the dense transpose.
  constexpr size_t kRows = 600;
  constexpr size_t kCols = 400;
  constexpr size_t kDenseCols = 64;
  Rng rng(107);
  std::vector<CsrMatrix::Triplet> triplets;
  for (size_t i = 0; i < 40000; ++i) {
    triplets.push_back({static_cast<int32_t>(rng.UniformInt(uint64_t{kRows})),
                        static_cast<int32_t>(rng.UniformInt(uint64_t{kCols})),
                        static_cast<float>(rng.Normal())});
  }
  const CsrMatrix csr = CsrMatrix::FromTriplets(kRows, kCols, triplets);
  const Tensor dense = Tensor::Randn(kRows, kDenseCols, &rng);
  ExpectBitwiseAcrossPoolWidths([&] { return csr.TransposedMatMul(dense); },
                                "column-blocked TransposedMatMul");

  Tensor expected(kCols, kDenseCols);
  Gemm(true, false, 1.0f, csr.ToDense(), dense, 0.0f, &expected);
  EXPECT_TRUE(csr.TransposedMatMul(dense).AllClose(expected, 1e-3f));
}

TEST(SparseMatMulOpTest, ForwardMatchesDense) {
  const Tensor dense_s = Tensor::FromRows({{1, 0}, {0, 2}, {3, 0}});
  const CsrMatrix sparse = CsrMatrix::FromDense(dense_s);
  ag::Variable x(Tensor::FromRows({{1, 1}, {2, 2}}), false);
  EXPECT_TRUE(SparseMatMul(sparse, x).value().AllClose(
      MatMul(dense_s, x.value())));
}

TEST(SparseMatMulOpTest, GradCheck) {
  Rng rng(3);
  Tensor dense_s = Tensor::Randn(5, 4, &rng);
  for (size_t i = 0; i < dense_s.size(); ++i) {
    if (rng.Uniform() < 0.5) dense_s[i] = 0.0f;
  }
  const CsrMatrix sparse = CsrMatrix::FromDense(dense_s);
  testing::ExpectGradientsMatch(
      [&sparse](const std::vector<ag::Variable>& leaves) {
        return testing::WeightedSum(ag::Tanh(SparseMatMul(sparse, leaves[0])));
      },
      {testing::RandomTensor(4, 3, 4, 0.5f)});
}

TEST(SparseMatMulOpTest, NoGradLeafStaysGradless) {
  const CsrMatrix sparse =
      CsrMatrix::FromDense(Tensor::FromRows({{1.0f}}));
  ag::Variable x(Tensor::FromRows({{2.0f}}), false);
  ag::Variable y = SparseMatMul(sparse, x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(CustomOpTest, BackwardClosureRuns) {
  // MakeCustomOp is the public extension point; verify a trivial identity
  // op propagates gradient through the custom closure.
  ag::Variable x(Tensor::FromRows({{3.0f}}), true);
  auto xn = x.node();
  ag::Variable y = ag::MakeCustomOp(
      x.value(), {x}, "identity",
      [xn](ag::Node& node) { xn->AccumulateGrad(node.grad()); });
  ag::Backward(ag::SumSquares(y));
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
}

}  // namespace
}  // namespace fkd
