// Tests for the observability subsystem: metrics registry semantics,
// JSONL export round-trip, trace span nesting, observer plumbing, and
// thread-safety of concurrent instrument updates.

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"

namespace fkd {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_DOUBLE_EQ(counter.Value(), 0.0);
  counter.Increment();
  counter.Increment(2.5);
  EXPECT_DOUBLE_EQ(counter.Value(), 3.5);
  counter.Reset();
  EXPECT_DOUBLE_EQ(counter.Value(), 0.0);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 10.0);
  gauge.Add(-3.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 7.0);
  gauge.Set(-1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), -1.5);
}

TEST(HistogramTest, SummaryStats) {
  Histogram histogram;
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 0.0);

  for (double v : {1.0, 2.0, 4.0, 8.0, 100.0}) histogram.Observe(v);
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 115.0);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 100.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 23.0);

  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.0);
}

TEST(HistogramTest, BucketLayoutAndOverflow) {
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 3;  // bounds 1, 2, 4, then overflow
  Histogram histogram(options);

  const auto bounds = histogram.BucketBounds();
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
  EXPECT_TRUE(std::isinf(bounds[3]));

  histogram.Observe(0.5);   // bucket 0 (<= 1)
  histogram.Observe(1.0);   // bucket 0 (boundary inclusive)
  histogram.Observe(3.0);   // bucket 2
  histogram.Observe(100.0); // overflow
  const auto counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, PercentileIsOrderedAndBounded) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.Observe(static_cast<double>(i));
  const double p50 = histogram.Percentile(0.5);
  const double p95 = histogram.Percentile(0.95);
  EXPECT_LE(p50, p95);
  EXPECT_GE(p50, histogram.Min());
  EXPECT_LE(p95, histogram.Max());
}

TEST(RegistryTest, SameNameAndLabelsYieldSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("fkd.test.hits", {{"method", "gcn"}});
  Counter* b = registry.GetCounter("fkd.test.hits", {{"method", "gcn"}});
  Counter* c = registry.GetCounter("fkd.test.hits", {{"method", "rnn"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.NumInstruments(), 2u);
}

TEST(RegistryTest, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  Gauge* a = registry.GetGauge("g", {{"x", "1"}, {"y", "2"}});
  Gauge* b = registry.GetGauge("g", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.NumInstruments(), 1u);
}

TEST(RegistryTest, ResetZeroesButKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Increment(5.0);
  histogram->Observe(3.0);

  registry.Reset();
  EXPECT_EQ(registry.NumInstruments(), 2u);
  EXPECT_DOUBLE_EQ(counter->Value(), 0.0);
  EXPECT_EQ(histogram->Count(), 0u);
  // The same pointers are still live and writable after Reset.
  counter->Increment();
  EXPECT_DOUBLE_EQ(registry.GetCounter("c")->Value(), 1.0);
  EXPECT_EQ(registry.GetCounter("c"), counter);
}

TEST(RegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves the instrument itself: exercises the
      // registry's fetch-or-create path under contention too.
      Counter* counter =
          registry.GetCounter("fkd.test.concurrent", {{"kind", "counter"}});
      Histogram* histogram =
          registry.GetHistogram("fkd.test.latency", {{"kind", "histogram"}});
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter->Increment();
        histogram->Observe(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_DOUBLE_EQ(
      registry.GetCounter("fkd.test.concurrent", {{"kind", "counter"}})
          ->Value(),
      static_cast<double>(kThreads * kIncrementsPerThread));
  EXPECT_EQ(
      registry.GetHistogram("fkd.test.latency", {{"kind", "histogram"}})
          ->Count(),
      static_cast<uint64_t>(kThreads * kIncrementsPerThread));
}

TEST(RegistryTest, ExportTextMentionsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("alpha")->Increment(2.0);
  registry.GetGauge("beta", {{"m", "x"}})->Set(0.5);
  registry.GetHistogram("gamma")->Observe(7.0);
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("m=x"), std::string::npos);
  EXPECT_NE(text.find("gamma"), std::string::npos);
}

TEST(RegistryTest, JsonlRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("fkd.test.runs", {{"method", "line"}})->Increment(3.0);
  registry.GetGauge("fkd.test.loss", {{"method", "line"}})->Set(0.25);
  Histogram* histogram = registry.GetHistogram("fkd.test.us");
  histogram->Observe(10.0);
  histogram->Observe(30.0);

  const std::string jsonl = registry.ExportJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  size_t parsed = 0;
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto record_result = ParseMetricJsonl(line);
    ASSERT_TRUE(record_result.ok()) << record_result.status().ToString()
                                    << " line: " << line;
    const MetricRecord& record = record_result.value();
    ++parsed;
    if (record.name == "fkd.test.runs") {
      saw_counter = true;
      EXPECT_EQ(record.type, "counter");
      EXPECT_DOUBLE_EQ(record.value, 3.0);
      ASSERT_EQ(record.labels.size(), 1u);
      EXPECT_EQ(record.labels[0].first, "method");
      EXPECT_EQ(record.labels[0].second, "line");
    } else if (record.name == "fkd.test.loss") {
      saw_gauge = true;
      EXPECT_EQ(record.type, "gauge");
      EXPECT_DOUBLE_EQ(record.value, 0.25);
    } else if (record.name == "fkd.test.us") {
      saw_histogram = true;
      EXPECT_EQ(record.type, "histogram");
      EXPECT_EQ(record.count, 2u);
      EXPECT_DOUBLE_EQ(record.sum, 40.0);
    }
  }
  EXPECT_EQ(parsed, 3u);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
}

TEST(RegistryTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseMetricJsonl("not json").ok());
  EXPECT_FALSE(ParseMetricJsonl("{}").ok());
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(false);
  tracer.Clear();
  { ScopedSpan span("test/disabled"); }
  EXPECT_EQ(tracer.NumEvents(), 0u);
}

TEST(TracerTest, SpanNestingDepthsAndContainment) {
  Tracer& tracer = Tracer::Get();
  tracer.Clear();
  tracer.Enable(true);
  {
    ScopedSpan outer("test/outer");
    {
      ScopedSpan inner("test/inner");
    }
  }
  tracer.Enable(false);

  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete innermost-first.
  EXPECT_STREQ(events[0].name, "test/inner");
  EXPECT_STREQ(events[1].name, "test/outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[0].thread_id, events[1].thread_id);
  // The inner span is contained within the outer span.
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].duration_us,
            events[1].start_us + events[1].duration_us);

  const std::string json = tracer.ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test/inner"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  tracer.Clear();
}

TEST(TracerTest, CapacityBoundsBufferAndCountsDrops) {
  Tracer& tracer = Tracer::Get();
  tracer.Clear();
  tracer.SetCapacity(2);
  tracer.Enable(true);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("test/drop");
  }
  tracer.Enable(false);
  EXPECT_EQ(tracer.NumEvents(), 2u);
  EXPECT_EQ(tracer.NumDropped(), 3u);
  tracer.SetCapacity(1 << 16);
  tracer.Clear();
}

TEST(ObserverTest, NotifyHelpersTolerateNull) {
  NotifyTrainBegin(nullptr, "m", 3);
  NotifyEpochEnd(nullptr, "m", EpochStats{});
  NotifyTrainEnd(nullptr, "m", 3, 0.1);
}

TEST(ObserverTest, MetricsObserverWritesInstruments) {
  MetricsRegistry registry;
  MetricsObserver observer(&registry);

  EpochStats stats;
  stats.epoch = 0;
  stats.loss = 0.7f;
  stats.grad_norm = 2.0f;
  stats.seconds = 0.01;
  stats.total_seconds = 0.01;
  observer.OnEpochEnd("gcn", stats);
  stats.epoch = 1;
  stats.loss = 0.5f;
  stats.validation_loss = 0.6f;
  observer.OnEpochEnd("gcn", stats);
  observer.OnTrainEnd("gcn", 2, 0.02);

  const Labels labels = {{"method", "gcn"}};
  EXPECT_DOUBLE_EQ(registry.GetCounter("fkd.train.epochs", labels)->Value(),
                   2.0);
  EXPECT_DOUBLE_EQ(registry.GetCounter("fkd.train.runs", labels)->Value(),
                   1.0);
  EXPECT_NEAR(registry.GetGauge("fkd.train.loss", labels)->Value(), 0.5,
              1e-6);
  EXPECT_NEAR(registry.GetGauge("fkd.train.validation_loss", labels)->Value(),
              0.6, 1e-6);
  EXPECT_EQ(registry.GetHistogram("fkd.train.epoch_us", labels)->Count(), 2u);
  EXPECT_NEAR(registry.GetGauge("fkd.train.wall_s", labels)->Value(), 0.02,
              1e-9);
}

TEST(ObserverTest, TeeFansOutToBoth) {
  struct CountingObserver : TrainObserver {
    int begins = 0, epochs = 0, ends = 0;
    void OnTrainBegin(const std::string&, size_t) override { ++begins; }
    void OnEpochEnd(const std::string&, const EpochStats&) override {
      ++epochs;
    }
    void OnTrainEnd(const std::string&, size_t, double) override { ++ends; }
  };
  CountingObserver first, second;
  TeeObserver tee(&first, &second);
  tee.OnTrainBegin("m", 1);
  tee.OnEpochEnd("m", EpochStats{});
  tee.OnTrainEnd("m", 1, 0.0);
  EXPECT_EQ(first.begins, 1);
  EXPECT_EQ(second.epochs, 1);
  EXPECT_EQ(first.ends, 1);
  EXPECT_EQ(second.ends, 1);
}

TEST(ScopedTimerTest, ReportsIntoHistogramSink) {
  Histogram histogram;
  {
    ScopedTimer<Histogram> timer(&histogram);
    EXPECT_GE(timer.ElapsedMicros(), 0.0);
  }
  EXPECT_EQ(histogram.Count(), 1u);
  EXPECT_GE(histogram.Sum(), 0.0);
  // Null sink: timing is disabled, nothing crashes.
  { ScopedTimer<Histogram> disabled(nullptr); }
  EXPECT_EQ(histogram.Count(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace fkd
