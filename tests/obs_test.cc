// Tests for the observability subsystem: metrics registry semantics,
// HDR histogram accuracy, windowed snapshots, the flight recorder, the
// stats exporter, JSONL export round-trip, trace span nesting, observer
// plumbing, and thread-safety of concurrent instrument updates.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "obs/exporter.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"

namespace fkd {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_DOUBLE_EQ(counter.Value(), 0.0);
  counter.Increment();
  counter.Increment(2.5);
  EXPECT_DOUBLE_EQ(counter.Value(), 3.5);
  counter.Reset();
  EXPECT_DOUBLE_EQ(counter.Value(), 0.0);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 10.0);
  gauge.Add(-3.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 7.0);
  gauge.Set(-1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), -1.5);
}

TEST(HistogramTest, SummaryStats) {
  Histogram histogram;
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 0.0);

  for (double v : {1.0, 2.0, 4.0, 8.0, 100.0}) histogram.Observe(v);
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 115.0);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 100.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 23.0);

  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.0);
}

TEST(HistogramTest, LogLinearBucketLayout) {
  HistogramOptions options;
  options.max_value = 8.0;   // 3 exponents: [1,2), [2,4), [4,8)
  options.sub_buckets = 4;   // 4 linear sub-buckets per exponent
  Histogram histogram(options);

  // underflow + 3*4 log-linear + overflow.
  ASSERT_EQ(histogram.num_buckets(), 1u + 3u * 4u + 1u);
  const auto bounds = histogram.BucketBounds();
  ASSERT_EQ(bounds.size(), histogram.num_buckets());
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);    // underflow: everything < 1
  EXPECT_DOUBLE_EQ(bounds[1], 1.25);   // [1, 2) split in 4
  EXPECT_DOUBLE_EQ(bounds[4], 2.0);
  EXPECT_DOUBLE_EQ(bounds[5], 2.5);    // [2, 4) split in 4
  EXPECT_DOUBLE_EQ(bounds[8], 4.0);
  EXPECT_DOUBLE_EQ(bounds[12], 8.0);
  EXPECT_TRUE(std::isinf(bounds.back()));
  // Bounds are strictly increasing: the cumulative percentile walk relies
  // on it.
  for (size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);

  histogram.Observe(0.5);    // underflow
  histogram.Observe(-3.0);   // underflow (negative values share it)
  histogram.Observe(1.0);    // first log-linear bucket [1, 1.25)
  histogram.Observe(3.9);    // last sub-bucket of [2, 4)
  histogram.Observe(100.0);  // overflow
  const auto counts = histogram.BucketCounts();
  EXPECT_EQ(counts.front(), 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[8], 1u);
  EXPECT_EQ(counts.back(), 1u);
  EXPECT_EQ(histogram.Count(), 5u);
}

TEST(HistogramTest, PercentileIsOrderedAndBounded) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.Observe(static_cast<double>(i));
  const double p50 = histogram.Percentile(0.5);
  const double p95 = histogram.Percentile(0.95);
  EXPECT_LE(p50, p95);
  EXPECT_GE(p50, histogram.Min());
  EXPECT_LE(p95, histogram.Max());
}

// Percentile accuracy against a sorted reference: the log-linear layout
// promises relative error bounded by ~1/sub_buckets regardless of the
// distribution's scale or shape.
TEST(HistogramTest, PercentileAccuracyAgainstSortedReference) {
  std::mt19937_64 rng(42);
  struct Case {
    const char* name;
    std::function<double()> draw;
  };
  std::uniform_real_distribution<double> uniform(1.0, 1e6);
  std::lognormal_distribution<double> lognormal(8.0, 2.0);
  std::exponential_distribution<double> exponential(1.0 / 5000.0);
  const Case cases[] = {
      {"uniform", [&] { return uniform(rng); }},
      {"lognormal", [&] { return lognormal(rng); }},
      {"exponential", [&] { return 1.0 + exponential(rng); }},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    Histogram histogram;
    std::vector<double> values;
    values.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      const double v = c.draw();
      values.push_back(v);
      histogram.Observe(v);
    }
    std::sort(values.begin(), values.end());
    for (double p : {0.5, 0.9, 0.99, 0.999}) {
      SCOPED_TRACE(p);
      const size_t rank = std::min(
          values.size() - 1, static_cast<size_t>(p * values.size()));
      const double exact = values[rank];
      const double approx = histogram.Percentile(p);
      // 64 sub-buckets bound the relative bucketing error at ~1.6%; allow
      // 5% for rank-vs-interpolation differences at the tails.
      EXPECT_NEAR(approx, exact, exact * 0.05);
    }
    // Exact at the extremes.
    EXPECT_DOUBLE_EQ(histogram.Min(), values.front());
    EXPECT_DOUBLE_EQ(histogram.Max(), values.back());
  }
}

TEST(HistogramTest, ConcurrentObserveIsLosslessAndAccurate) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      // Each thread records a disjoint slice of 1..160000, so the merged
      // distribution is uniform and every summary stat has a closed form.
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(static_cast<double>(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  constexpr uint64_t kTotal = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(histogram.Count(), kTotal);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), static_cast<double>(kTotal));
  // Sum of 1..N, accumulated via CAS — no lost updates allowed.
  EXPECT_DOUBLE_EQ(histogram.Sum(),
                   static_cast<double>(kTotal) * (kTotal + 1) / 2.0);
  const double p50 = histogram.Percentile(0.5);
  EXPECT_NEAR(p50, kTotal / 2.0, kTotal * 0.05);
}

TEST(HistogramTest, WindowedSnapshotDeltaIsolatesRecentObservations) {
  Histogram histogram;
  // Epoch 1: slow requests around 100000us.
  for (int i = 0; i < 1000; ++i) histogram.Observe(100000.0 + i);
  const HistogramSnapshot first = histogram.Snapshot();
  EXPECT_EQ(first.count, 1000u);

  // Epoch 2: fast requests around 100us.
  for (int i = 0; i < 1000; ++i) histogram.Observe(100.0 + i % 10);
  const HistogramSnapshot second = histogram.Snapshot();
  EXPECT_EQ(second.count, 2000u);

  // Cumulative view is polluted by epoch 1; the window sees only epoch 2.
  const HistogramSnapshot window = SnapshotDelta(second, first);
  EXPECT_EQ(window.count, 1000u);
  EXPECT_LT(window.Percentile(0.99), 1000.0);
  // Cumulatively, the slow epoch still dominates the upper half.
  EXPECT_GT(second.Percentile(0.9), 1000.0);
  EXPECT_NEAR(window.Mean(), second.Mean() * 2.0 - first.Mean(), 50.0);
  // Delta min/max are approximated from the outermost non-empty buckets.
  EXPECT_LT(window.min, 200.0);
  EXPECT_LT(window.max, 200.0);

  // Empty window: no observations between snapshots.
  const HistogramSnapshot empty = SnapshotDelta(second, second);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.Percentile(0.99), 0.0);
}

TEST(FlightRecorderTest, RecordSnapshotAndClear) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Clear();
  recorder.Record(FlightEventType::kRequestSubmit, 7, 1000);
  recorder.Record(FlightEventType::kEngineEnqueue, 7, 3);
  recorder.Record(FlightEventType::kRequestComplete, 7, 420);

  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by timestamp; same thread so order == record order.
  EXPECT_EQ(events[0].type, FlightEventType::kRequestSubmit);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 1000u);
  EXPECT_EQ(events[2].type, FlightEventType::kRequestComplete);
  EXPECT_LE(events[0].ts_us, events[2].ts_us);

  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(FlightRecorderTest, RingOverwritesOldestAndKeepsCounting) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Clear();
  const size_t n = FlightRecorder::kRingSlots + 100;
  for (size_t i = 0; i < n; ++i) {
    recorder.Record(FlightEventType::kBatchStart, i, 0);
  }
  const auto events = recorder.Snapshot();
  // This thread's ring holds exactly kRingSlots events; the oldest 100
  // were overwritten.
  EXPECT_EQ(events.size(), FlightRecorder::kRingSlots);
  uint64_t min_a = ~0ull;
  for (const auto& event : events) min_a = std::min(min_a, event.a);
  EXPECT_GE(min_a, 100u);
  recorder.Clear();
}

TEST(FlightRecorderTest, DisabledRecorderDropsEvents) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Clear();
  recorder.SetEnabled(false);
  recorder.Record(FlightEventType::kFault, 1, 2);
  EXPECT_TRUE(recorder.Snapshot().empty());
  recorder.SetEnabled(true);
  recorder.Record(FlightEventType::kFault, 1, 2);
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
  recorder.Clear();
}

TEST(FlightRecorderTest, ConcurrentRecordFromManyThreads) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Clear();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;  // < kRingSlots so nothing is overwritten
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(FlightEventType::kEngineEnqueue,
                        static_cast<uint64_t>(t), static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto events = recorder.Snapshot();
  EXPECT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  recorder.Clear();
}

TEST(FlightRecorderTest, DumpToFileIsReadable) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Clear();
  recorder.Record(FlightEventType::kRequestSubmit, 42, 0);
  recorder.Record(FlightEventType::kBreakerOpen, 3, 0);

  const std::string path = "obs_test_flight_dump.txt";
  ASSERT_TRUE(recorder.DumpToFile(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();
  EXPECT_NE(text.find("fkd flight recorder"), std::string::npos);
  EXPECT_NE(text.find("request_submit"), std::string::npos);
  EXPECT_NE(text.find("breaker_open"), std::string::npos);
  EXPECT_NE(text.find("a=42"), std::string::npos);
  EXPECT_NE(text.find("end of dump"), std::string::npos);
  std::remove(path.c_str());
  recorder.Clear();
}

TEST(StatsExporterTest, TickWritesParsableLineWithRatesAndWindows) {
  MetricsRegistry registry;
  registry.GetCounter("fkd.test.requests")->Increment(100.0);
  registry.GetGauge("fkd.test.depth")->Set(4.0);
  Histogram* latency = registry.GetHistogram("fkd.test.latency_us");
  for (int i = 0; i < 100; ++i) latency->Observe(500.0 + i);

  const std::string path = "obs_test_stats.jsonl";
  std::remove(path.c_str());
  StatsExporterOptions options;
  options.path = path;
  options.interval_ms = 60000;  // ticks driven manually
  options.registry = &registry;
  StatsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  exporter.TickOnce();

  // Second tick sees only the delta: 50 more increments, faster requests.
  registry.GetCounter("fkd.test.requests")->Increment(50.0);
  for (int i = 0; i < 100; ++i) latency->Observe(100.0);
  exporter.TickOnce();
  exporter.Stop();
  EXPECT_GE(exporter.NumTicks(), 2u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 2u);
  for (const auto& l : lines) {
    EXPECT_EQ(l.find("{\"type\":\"fkd_stats\""), 0u) << l;
    EXPECT_NE(l.find("\"counters\""), std::string::npos);
    EXPECT_NE(l.find("\"histograms\""), std::string::npos);
  }
  EXPECT_NE(lines[0].find("fkd.test.requests"), std::string::npos);
  EXPECT_NE(lines[0].find("\"total\":100"), std::string::npos);
  EXPECT_NE(lines[0].find("fkd.test.depth"), std::string::npos);
  EXPECT_NE(lines[0].find("\"p999\""), std::string::npos);
  // The second tick's counter total reflects the increment and its window
  // covers only the 100 fast observations.
  EXPECT_NE(lines[1].find("\"total\":150"), std::string::npos);
  EXPECT_NE(lines[1].find("\"window\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"count\":100"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StatsExporterTest, BackgroundThreadTicksOnItsOwn) {
  MetricsRegistry registry;
  registry.GetCounter("fkd.test.bg")->Increment();
  const std::string path = "obs_test_stats_bg.jsonl";
  std::remove(path.c_str());
  StatsExporterOptions options;
  options.path = path;
  options.interval_ms = 10;
  options.registry = &registry;
  StatsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  // Wait for at least two periodic ticks (bounded spin, generous timeout).
  for (int i = 0; i < 500 && exporter.NumTicks() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  exporter.Stop();
  EXPECT_GE(exporter.NumTicks(), 2u);
  std::remove(path.c_str());
}

TEST(RegistryTest, SameNameAndLabelsYieldSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("fkd.test.hits", {{"method", "gcn"}});
  Counter* b = registry.GetCounter("fkd.test.hits", {{"method", "gcn"}});
  Counter* c = registry.GetCounter("fkd.test.hits", {{"method", "rnn"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.NumInstruments(), 2u);
}

TEST(RegistryTest, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  Gauge* a = registry.GetGauge("g", {{"x", "1"}, {"y", "2"}});
  Gauge* b = registry.GetGauge("g", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.NumInstruments(), 1u);
}

TEST(RegistryTest, ResetZeroesButKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Increment(5.0);
  histogram->Observe(3.0);

  registry.Reset();
  EXPECT_EQ(registry.NumInstruments(), 2u);
  EXPECT_DOUBLE_EQ(counter->Value(), 0.0);
  EXPECT_EQ(histogram->Count(), 0u);
  // The same pointers are still live and writable after Reset.
  counter->Increment();
  EXPECT_DOUBLE_EQ(registry.GetCounter("c")->Value(), 1.0);
  EXPECT_EQ(registry.GetCounter("c"), counter);
}

TEST(RegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves the instrument itself: exercises the
      // registry's fetch-or-create path under contention too.
      Counter* counter =
          registry.GetCounter("fkd.test.concurrent", {{"kind", "counter"}});
      Histogram* histogram =
          registry.GetHistogram("fkd.test.latency", {{"kind", "histogram"}});
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter->Increment();
        histogram->Observe(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_DOUBLE_EQ(
      registry.GetCounter("fkd.test.concurrent", {{"kind", "counter"}})
          ->Value(),
      static_cast<double>(kThreads * kIncrementsPerThread));
  EXPECT_EQ(
      registry.GetHistogram("fkd.test.latency", {{"kind", "histogram"}})
          ->Count(),
      static_cast<uint64_t>(kThreads * kIncrementsPerThread));
}

TEST(RegistryTest, ExportTextMentionsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("alpha")->Increment(2.0);
  registry.GetGauge("beta", {{"m", "x"}})->Set(0.5);
  registry.GetHistogram("gamma")->Observe(7.0);
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("m=x"), std::string::npos);
  EXPECT_NE(text.find("gamma"), std::string::npos);
}

TEST(RegistryTest, JsonlRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("fkd.test.runs", {{"method", "line"}})->Increment(3.0);
  registry.GetGauge("fkd.test.loss", {{"method", "line"}})->Set(0.25);
  Histogram* histogram = registry.GetHistogram("fkd.test.us");
  histogram->Observe(10.0);
  histogram->Observe(30.0);

  const std::string jsonl = registry.ExportJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  size_t parsed = 0;
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto record_result = ParseMetricJsonl(line);
    ASSERT_TRUE(record_result.ok()) << record_result.status().ToString()
                                    << " line: " << line;
    const MetricRecord& record = record_result.value();
    ++parsed;
    if (record.name == "fkd.test.runs") {
      saw_counter = true;
      EXPECT_EQ(record.type, "counter");
      EXPECT_DOUBLE_EQ(record.value, 3.0);
      ASSERT_EQ(record.labels.size(), 1u);
      EXPECT_EQ(record.labels[0].first, "method");
      EXPECT_EQ(record.labels[0].second, "line");
    } else if (record.name == "fkd.test.loss") {
      saw_gauge = true;
      EXPECT_EQ(record.type, "gauge");
      EXPECT_DOUBLE_EQ(record.value, 0.25);
    } else if (record.name == "fkd.test.us") {
      saw_histogram = true;
      EXPECT_EQ(record.type, "histogram");
      EXPECT_EQ(record.count, 2u);
      EXPECT_DOUBLE_EQ(record.sum, 40.0);
    }
  }
  EXPECT_EQ(parsed, 3u);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
}

TEST(RegistryTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseMetricJsonl("not json").ok());
  EXPECT_FALSE(ParseMetricJsonl("{}").ok());
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(false);
  tracer.Clear();
  { ScopedSpan span("test/disabled"); }
  EXPECT_EQ(tracer.NumEvents(), 0u);
}

TEST(TracerTest, SpanNestingDepthsAndContainment) {
  Tracer& tracer = Tracer::Get();
  tracer.Clear();
  tracer.Enable(true);
  {
    ScopedSpan outer("test/outer");
    {
      ScopedSpan inner("test/inner");
    }
  }
  tracer.Enable(false);

  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete innermost-first.
  EXPECT_STREQ(events[0].name, "test/inner");
  EXPECT_STREQ(events[1].name, "test/outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[0].thread_id, events[1].thread_id);
  // The inner span is contained within the outer span.
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].duration_us,
            events[1].start_us + events[1].duration_us);

  const std::string json = tracer.ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test/inner"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  tracer.Clear();
}

TEST(TracerTest, CapacityBoundsBufferAndCountsDrops) {
  Tracer& tracer = Tracer::Get();
  tracer.Clear();
  tracer.SetCapacity(2);
  tracer.Enable(true);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("test/drop");
  }
  tracer.Enable(false);
  EXPECT_EQ(tracer.NumEvents(), 2u);
  EXPECT_EQ(tracer.NumDropped(), 3u);
  tracer.SetCapacity(1 << 16);
  tracer.Clear();
}

TEST(ObserverTest, NotifyHelpersTolerateNull) {
  NotifyTrainBegin(nullptr, "m", 3);
  NotifyEpochEnd(nullptr, "m", EpochStats{});
  NotifyTrainEnd(nullptr, "m", 3, 0.1);
}

TEST(ObserverTest, MetricsObserverWritesInstruments) {
  MetricsRegistry registry;
  MetricsObserver observer(&registry);

  EpochStats stats;
  stats.epoch = 0;
  stats.loss = 0.7f;
  stats.grad_norm = 2.0f;
  stats.seconds = 0.01;
  stats.total_seconds = 0.01;
  observer.OnEpochEnd("gcn", stats);
  stats.epoch = 1;
  stats.loss = 0.5f;
  stats.validation_loss = 0.6f;
  observer.OnEpochEnd("gcn", stats);
  observer.OnTrainEnd("gcn", 2, 0.02);

  const Labels labels = {{"method", "gcn"}};
  EXPECT_DOUBLE_EQ(registry.GetCounter("fkd.train.epochs", labels)->Value(),
                   2.0);
  EXPECT_DOUBLE_EQ(registry.GetCounter("fkd.train.runs", labels)->Value(),
                   1.0);
  EXPECT_NEAR(registry.GetGauge("fkd.train.loss", labels)->Value(), 0.5,
              1e-6);
  EXPECT_NEAR(registry.GetGauge("fkd.train.validation_loss", labels)->Value(),
              0.6, 1e-6);
  EXPECT_EQ(registry.GetHistogram("fkd.train.epoch_us", labels)->Count(), 2u);
  EXPECT_NEAR(registry.GetGauge("fkd.train.wall_s", labels)->Value(), 0.02,
              1e-9);
}

TEST(ObserverTest, TeeFansOutToBoth) {
  struct CountingObserver : TrainObserver {
    int begins = 0, epochs = 0, ends = 0;
    void OnTrainBegin(const std::string&, size_t) override { ++begins; }
    void OnEpochEnd(const std::string&, const EpochStats&) override {
      ++epochs;
    }
    void OnTrainEnd(const std::string&, size_t, double) override { ++ends; }
  };
  CountingObserver first, second;
  TeeObserver tee(&first, &second);
  tee.OnTrainBegin("m", 1);
  tee.OnEpochEnd("m", EpochStats{});
  tee.OnTrainEnd("m", 1, 0.0);
  EXPECT_EQ(first.begins, 1);
  EXPECT_EQ(second.epochs, 1);
  EXPECT_EQ(first.ends, 1);
  EXPECT_EQ(second.ends, 1);
}

TEST(ScopedTimerTest, ReportsIntoHistogramSink) {
  Histogram histogram;
  {
    ScopedTimer<Histogram> timer(&histogram);
    EXPECT_GE(timer.ElapsedMicros(), 0.0);
  }
  EXPECT_EQ(histogram.Count(), 1u);
  EXPECT_GE(histogram.Sum(), 0.0);
  // Null sink: timing is disabled, nothing crashes.
  { ScopedTimer<Histogram> disabled(nullptr); }
  EXPECT_EQ(histogram.Count(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace fkd
