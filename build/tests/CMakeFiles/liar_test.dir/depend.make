# Empty dependencies file for liar_test.
# This may be replaced when dependencies are built.
