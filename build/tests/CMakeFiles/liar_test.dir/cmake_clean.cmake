file(REMOVE_RECURSE
  "CMakeFiles/liar_test.dir/liar_test.cc.o"
  "CMakeFiles/liar_test.dir/liar_test.cc.o.d"
  "liar_test"
  "liar_test.pdb"
  "liar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
