file(REMOVE_RECURSE
  "CMakeFiles/checks_test.dir/checks_test.cc.o"
  "CMakeFiles/checks_test.dir/checks_test.cc.o.d"
  "checks_test"
  "checks_test.pdb"
  "checks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
