# Empty dependencies file for checks_test.
# This may be replaced when dependencies are built.
