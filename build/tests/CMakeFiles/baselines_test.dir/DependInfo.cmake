
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fkd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fkd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fkd_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fkd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fkd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/fkd_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fkd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fkd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fkd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
