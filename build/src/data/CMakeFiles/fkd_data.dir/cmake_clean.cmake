file(REMOVE_RECURSE
  "CMakeFiles/fkd_data.dir/dataset.cc.o"
  "CMakeFiles/fkd_data.dir/dataset.cc.o.d"
  "CMakeFiles/fkd_data.dir/generator.cc.o"
  "CMakeFiles/fkd_data.dir/generator.cc.o.d"
  "CMakeFiles/fkd_data.dir/io.cc.o"
  "CMakeFiles/fkd_data.dir/io.cc.o.d"
  "CMakeFiles/fkd_data.dir/labels.cc.o"
  "CMakeFiles/fkd_data.dir/labels.cc.o.d"
  "CMakeFiles/fkd_data.dir/liar.cc.o"
  "CMakeFiles/fkd_data.dir/liar.cc.o.d"
  "CMakeFiles/fkd_data.dir/split.cc.o"
  "CMakeFiles/fkd_data.dir/split.cc.o.d"
  "libfkd_data.a"
  "libfkd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fkd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
