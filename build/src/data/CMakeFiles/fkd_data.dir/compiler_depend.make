# Empty compiler generated dependencies file for fkd_data.
# This may be replaced when dependencies are built.
