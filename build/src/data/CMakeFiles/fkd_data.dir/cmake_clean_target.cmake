file(REMOVE_RECURSE
  "libfkd_data.a"
)
