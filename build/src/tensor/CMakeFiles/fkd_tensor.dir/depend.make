# Empty dependencies file for fkd_tensor.
# This may be replaced when dependencies are built.
