file(REMOVE_RECURSE
  "CMakeFiles/fkd_tensor.dir/autograd.cc.o"
  "CMakeFiles/fkd_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/fkd_tensor.dir/ops.cc.o"
  "CMakeFiles/fkd_tensor.dir/ops.cc.o.d"
  "CMakeFiles/fkd_tensor.dir/sparse.cc.o"
  "CMakeFiles/fkd_tensor.dir/sparse.cc.o.d"
  "CMakeFiles/fkd_tensor.dir/tensor.cc.o"
  "CMakeFiles/fkd_tensor.dir/tensor.cc.o.d"
  "libfkd_tensor.a"
  "libfkd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fkd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
