file(REMOVE_RECURSE
  "libfkd_tensor.a"
)
