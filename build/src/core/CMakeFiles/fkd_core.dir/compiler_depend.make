# Empty compiler generated dependencies file for fkd_core.
# This may be replaced when dependencies are built.
