file(REMOVE_RECURSE
  "CMakeFiles/fkd_core.dir/fake_detector.cc.o"
  "CMakeFiles/fkd_core.dir/fake_detector.cc.o.d"
  "CMakeFiles/fkd_core.dir/gdu.cc.o"
  "CMakeFiles/fkd_core.dir/gdu.cc.o.d"
  "CMakeFiles/fkd_core.dir/hflu.cc.o"
  "CMakeFiles/fkd_core.dir/hflu.cc.o.d"
  "libfkd_core.a"
  "libfkd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fkd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
