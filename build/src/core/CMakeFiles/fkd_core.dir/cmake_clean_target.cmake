file(REMOVE_RECURSE
  "libfkd_core.a"
)
