file(REMOVE_RECURSE
  "CMakeFiles/fkd_nn.dir/init.cc.o"
  "CMakeFiles/fkd_nn.dir/init.cc.o.d"
  "CMakeFiles/fkd_nn.dir/layers.cc.o"
  "CMakeFiles/fkd_nn.dir/layers.cc.o.d"
  "CMakeFiles/fkd_nn.dir/optimizer.cc.o"
  "CMakeFiles/fkd_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/fkd_nn.dir/serialize.cc.o"
  "CMakeFiles/fkd_nn.dir/serialize.cc.o.d"
  "libfkd_nn.a"
  "libfkd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fkd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
