# Empty compiler generated dependencies file for fkd_nn.
# This may be replaced when dependencies are built.
