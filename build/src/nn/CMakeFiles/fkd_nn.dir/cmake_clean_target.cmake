file(REMOVE_RECURSE
  "libfkd_nn.a"
)
