# Empty compiler generated dependencies file for fkd_text.
# This may be replaced when dependencies are built.
