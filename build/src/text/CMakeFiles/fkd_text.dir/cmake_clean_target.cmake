file(REMOVE_RECURSE
  "libfkd_text.a"
)
