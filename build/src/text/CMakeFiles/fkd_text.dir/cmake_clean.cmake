file(REMOVE_RECURSE
  "CMakeFiles/fkd_text.dir/features.cc.o"
  "CMakeFiles/fkd_text.dir/features.cc.o.d"
  "CMakeFiles/fkd_text.dir/tokenizer.cc.o"
  "CMakeFiles/fkd_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/fkd_text.dir/vocabulary.cc.o"
  "CMakeFiles/fkd_text.dir/vocabulary.cc.o.d"
  "libfkd_text.a"
  "libfkd_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fkd_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
