
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/alias_table.cc" "src/graph/CMakeFiles/fkd_graph.dir/alias_table.cc.o" "gcc" "src/graph/CMakeFiles/fkd_graph.dir/alias_table.cc.o.d"
  "/root/repo/src/graph/hetero_graph.cc" "src/graph/CMakeFiles/fkd_graph.dir/hetero_graph.cc.o" "gcc" "src/graph/CMakeFiles/fkd_graph.dir/hetero_graph.cc.o.d"
  "/root/repo/src/graph/random_walk.cc" "src/graph/CMakeFiles/fkd_graph.dir/random_walk.cc.o" "gcc" "src/graph/CMakeFiles/fkd_graph.dir/random_walk.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/fkd_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/fkd_graph.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fkd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
