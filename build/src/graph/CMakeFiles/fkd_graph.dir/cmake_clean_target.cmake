file(REMOVE_RECURSE
  "libfkd_graph.a"
)
