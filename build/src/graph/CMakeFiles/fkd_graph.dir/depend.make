# Empty dependencies file for fkd_graph.
# This may be replaced when dependencies are built.
