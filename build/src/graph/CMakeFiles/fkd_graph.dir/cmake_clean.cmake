file(REMOVE_RECURSE
  "CMakeFiles/fkd_graph.dir/alias_table.cc.o"
  "CMakeFiles/fkd_graph.dir/alias_table.cc.o.d"
  "CMakeFiles/fkd_graph.dir/hetero_graph.cc.o"
  "CMakeFiles/fkd_graph.dir/hetero_graph.cc.o.d"
  "CMakeFiles/fkd_graph.dir/random_walk.cc.o"
  "CMakeFiles/fkd_graph.dir/random_walk.cc.o.d"
  "CMakeFiles/fkd_graph.dir/stats.cc.o"
  "CMakeFiles/fkd_graph.dir/stats.cc.o.d"
  "libfkd_graph.a"
  "libfkd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fkd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
