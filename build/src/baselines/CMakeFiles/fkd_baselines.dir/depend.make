# Empty dependencies file for fkd_baselines.
# This may be replaced when dependencies are built.
