file(REMOVE_RECURSE
  "CMakeFiles/fkd_baselines.dir/deepwalk.cc.o"
  "CMakeFiles/fkd_baselines.dir/deepwalk.cc.o.d"
  "CMakeFiles/fkd_baselines.dir/embedding_util.cc.o"
  "CMakeFiles/fkd_baselines.dir/embedding_util.cc.o.d"
  "CMakeFiles/fkd_baselines.dir/gcn.cc.o"
  "CMakeFiles/fkd_baselines.dir/gcn.cc.o.d"
  "CMakeFiles/fkd_baselines.dir/label_propagation.cc.o"
  "CMakeFiles/fkd_baselines.dir/label_propagation.cc.o.d"
  "CMakeFiles/fkd_baselines.dir/line.cc.o"
  "CMakeFiles/fkd_baselines.dir/line.cc.o.d"
  "CMakeFiles/fkd_baselines.dir/node2vec.cc.o"
  "CMakeFiles/fkd_baselines.dir/node2vec.cc.o.d"
  "CMakeFiles/fkd_baselines.dir/rnn_classifier.cc.o"
  "CMakeFiles/fkd_baselines.dir/rnn_classifier.cc.o.d"
  "CMakeFiles/fkd_baselines.dir/skipgram.cc.o"
  "CMakeFiles/fkd_baselines.dir/skipgram.cc.o.d"
  "CMakeFiles/fkd_baselines.dir/svm.cc.o"
  "CMakeFiles/fkd_baselines.dir/svm.cc.o.d"
  "libfkd_baselines.a"
  "libfkd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fkd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
