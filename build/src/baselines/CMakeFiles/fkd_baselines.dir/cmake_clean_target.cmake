file(REMOVE_RECURSE
  "libfkd_baselines.a"
)
