
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/deepwalk.cc" "src/baselines/CMakeFiles/fkd_baselines.dir/deepwalk.cc.o" "gcc" "src/baselines/CMakeFiles/fkd_baselines.dir/deepwalk.cc.o.d"
  "/root/repo/src/baselines/embedding_util.cc" "src/baselines/CMakeFiles/fkd_baselines.dir/embedding_util.cc.o" "gcc" "src/baselines/CMakeFiles/fkd_baselines.dir/embedding_util.cc.o.d"
  "/root/repo/src/baselines/gcn.cc" "src/baselines/CMakeFiles/fkd_baselines.dir/gcn.cc.o" "gcc" "src/baselines/CMakeFiles/fkd_baselines.dir/gcn.cc.o.d"
  "/root/repo/src/baselines/label_propagation.cc" "src/baselines/CMakeFiles/fkd_baselines.dir/label_propagation.cc.o" "gcc" "src/baselines/CMakeFiles/fkd_baselines.dir/label_propagation.cc.o.d"
  "/root/repo/src/baselines/line.cc" "src/baselines/CMakeFiles/fkd_baselines.dir/line.cc.o" "gcc" "src/baselines/CMakeFiles/fkd_baselines.dir/line.cc.o.d"
  "/root/repo/src/baselines/node2vec.cc" "src/baselines/CMakeFiles/fkd_baselines.dir/node2vec.cc.o" "gcc" "src/baselines/CMakeFiles/fkd_baselines.dir/node2vec.cc.o.d"
  "/root/repo/src/baselines/rnn_classifier.cc" "src/baselines/CMakeFiles/fkd_baselines.dir/rnn_classifier.cc.o" "gcc" "src/baselines/CMakeFiles/fkd_baselines.dir/rnn_classifier.cc.o.d"
  "/root/repo/src/baselines/skipgram.cc" "src/baselines/CMakeFiles/fkd_baselines.dir/skipgram.cc.o" "gcc" "src/baselines/CMakeFiles/fkd_baselines.dir/skipgram.cc.o.d"
  "/root/repo/src/baselines/svm.cc" "src/baselines/CMakeFiles/fkd_baselines.dir/svm.cc.o" "gcc" "src/baselines/CMakeFiles/fkd_baselines.dir/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fkd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/fkd_text.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fkd_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fkd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fkd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fkd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fkd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
