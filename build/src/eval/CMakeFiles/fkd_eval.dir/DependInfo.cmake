
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/fkd_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/fkd_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/fkd_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/fkd_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/eval/CMakeFiles/fkd_eval.dir/report.cc.o" "gcc" "src/eval/CMakeFiles/fkd_eval.dir/report.cc.o.d"
  "/root/repo/src/eval/significance.cc" "src/eval/CMakeFiles/fkd_eval.dir/significance.cc.o" "gcc" "src/eval/CMakeFiles/fkd_eval.dir/significance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/fkd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fkd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fkd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
