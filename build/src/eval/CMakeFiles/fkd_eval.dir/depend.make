# Empty dependencies file for fkd_eval.
# This may be replaced when dependencies are built.
