file(REMOVE_RECURSE
  "libfkd_eval.a"
)
