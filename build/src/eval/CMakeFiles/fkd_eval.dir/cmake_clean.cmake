file(REMOVE_RECURSE
  "CMakeFiles/fkd_eval.dir/experiment.cc.o"
  "CMakeFiles/fkd_eval.dir/experiment.cc.o.d"
  "CMakeFiles/fkd_eval.dir/metrics.cc.o"
  "CMakeFiles/fkd_eval.dir/metrics.cc.o.d"
  "CMakeFiles/fkd_eval.dir/report.cc.o"
  "CMakeFiles/fkd_eval.dir/report.cc.o.d"
  "CMakeFiles/fkd_eval.dir/significance.cc.o"
  "CMakeFiles/fkd_eval.dir/significance.cc.o.d"
  "libfkd_eval.a"
  "libfkd_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fkd_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
