file(REMOVE_RECURSE
  "CMakeFiles/fkd_common.dir/flags.cc.o"
  "CMakeFiles/fkd_common.dir/flags.cc.o.d"
  "CMakeFiles/fkd_common.dir/logging.cc.o"
  "CMakeFiles/fkd_common.dir/logging.cc.o.d"
  "CMakeFiles/fkd_common.dir/rng.cc.o"
  "CMakeFiles/fkd_common.dir/rng.cc.o.d"
  "CMakeFiles/fkd_common.dir/status.cc.o"
  "CMakeFiles/fkd_common.dir/status.cc.o.d"
  "CMakeFiles/fkd_common.dir/string_util.cc.o"
  "CMakeFiles/fkd_common.dir/string_util.cc.o.d"
  "libfkd_common.a"
  "libfkd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fkd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
