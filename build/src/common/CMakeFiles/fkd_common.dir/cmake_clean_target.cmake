file(REMOVE_RECURSE
  "libfkd_common.a"
)
