# Empty dependencies file for fkd_common.
# This may be replaced when dependencies are built.
