file(REMOVE_RECURSE
  "CMakeFiles/custom_network.dir/custom_network.cpp.o"
  "CMakeFiles/custom_network.dir/custom_network.cpp.o.d"
  "custom_network"
  "custom_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
