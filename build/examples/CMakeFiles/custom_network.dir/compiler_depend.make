# Empty compiler generated dependencies file for custom_network.
# This may be replaced when dependencies are built.
