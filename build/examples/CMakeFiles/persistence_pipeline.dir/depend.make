# Empty dependencies file for persistence_pipeline.
# This may be replaced when dependencies are built.
