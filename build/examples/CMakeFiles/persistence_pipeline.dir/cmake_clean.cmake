file(REMOVE_RECURSE
  "CMakeFiles/persistence_pipeline.dir/persistence_pipeline.cpp.o"
  "CMakeFiles/persistence_pipeline.dir/persistence_pipeline.cpp.o.d"
  "persistence_pipeline"
  "persistence_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
