file(REMOVE_RECURSE
  "CMakeFiles/dataset_analysis.dir/dataset_analysis.cpp.o"
  "CMakeFiles/dataset_analysis.dir/dataset_analysis.cpp.o.d"
  "dataset_analysis"
  "dataset_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
