# Empty dependencies file for dataset_analysis.
# This may be replaced when dependencies are built.
