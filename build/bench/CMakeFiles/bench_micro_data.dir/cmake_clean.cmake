file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_data.dir/bench_micro_data.cpp.o"
  "CMakeFiles/bench_micro_data.dir/bench_micro_data.cpp.o.d"
  "bench_micro_data"
  "bench_micro_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
