# Empty dependencies file for bench_micro_data.
# This may be replaced when dependencies are built.
