file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_biclass.dir/bench_fig4_biclass.cpp.o"
  "CMakeFiles/bench_fig4_biclass.dir/bench_fig4_biclass.cpp.o.d"
  "bench_fig4_biclass"
  "bench_fig4_biclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_biclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
