# Empty compiler generated dependencies file for bench_fig1_dataset_analysis.
# This may be replaced when dependencies are built.
