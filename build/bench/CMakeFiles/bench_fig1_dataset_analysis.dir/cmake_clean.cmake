file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_dataset_analysis.dir/bench_fig1_dataset_analysis.cpp.o"
  "CMakeFiles/bench_fig1_dataset_analysis.dir/bench_fig1_dataset_analysis.cpp.o.d"
  "bench_fig1_dataset_analysis"
  "bench_fig1_dataset_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_dataset_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
