file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_model.dir/bench_micro_model.cpp.o"
  "CMakeFiles/bench_micro_model.dir/bench_micro_model.cpp.o.d"
  "bench_micro_model"
  "bench_micro_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
