# Empty dependencies file for bench_micro_model.
# This may be replaced when dependencies are built.
