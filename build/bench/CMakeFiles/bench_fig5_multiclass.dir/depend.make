# Empty dependencies file for bench_fig5_multiclass.
# This may be replaced when dependencies are built.
