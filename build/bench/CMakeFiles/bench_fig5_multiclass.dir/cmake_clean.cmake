file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_multiclass.dir/bench_fig5_multiclass.cpp.o"
  "CMakeFiles/bench_fig5_multiclass.dir/bench_fig5_multiclass.cpp.o.d"
  "bench_fig5_multiclass"
  "bench_fig5_multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
