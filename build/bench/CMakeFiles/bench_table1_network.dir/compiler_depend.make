# Empty compiler generated dependencies file for bench_table1_network.
# This may be replaced when dependencies are built.
