file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_network.dir/bench_table1_network.cpp.o"
  "CMakeFiles/bench_table1_network.dir/bench_table1_network.cpp.o.d"
  "bench_table1_network"
  "bench_table1_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
