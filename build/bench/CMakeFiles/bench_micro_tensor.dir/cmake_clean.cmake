file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tensor.dir/bench_micro_tensor.cpp.o"
  "CMakeFiles/bench_micro_tensor.dir/bench_micro_tensor.cpp.o.d"
  "bench_micro_tensor"
  "bench_micro_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
