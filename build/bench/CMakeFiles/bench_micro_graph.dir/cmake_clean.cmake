file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_graph.dir/bench_micro_graph.cpp.o"
  "CMakeFiles/bench_micro_graph.dir/bench_micro_graph.cpp.o.d"
  "bench_micro_graph"
  "bench_micro_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
